#!/bin/bash
set -x
cd /root/repo
python -m repro.experiments tables --preset paperlite --quiet --out results/paperlite_tables > results/paperlite_tables.log 2>&1
python -m repro.experiments figure8 --preset paperlite --ports 4 --quiet --out results/paperlite_fig8 > results/paperlite_fig8_4p.log 2>&1
python -m repro.experiments figure8 --preset paperlite --ports 8 --quiet --out results/paperlite_fig8 > results/paperlite_fig8_8p.log 2>&1
echo CAMPAIGN2_DONE
