#!/bin/bash
# Experiment campaign for EXPERIMENTS.md.
set -x
cd /root/repo
python -m repro.experiments static-tables --preset paper --quiet --out results/paper_static  > results/paper_static.log 2>&1
python -m repro.experiments tables --preset midscale --quiet --out results/midscale_tables > results/midscale_tables.log 2>&1
python -m repro.experiments figure8 --preset midscale --ports 4 --quiet --out results/midscale_fig8 > results/midscale_fig8_4p.log 2>&1
python -m repro.experiments figure8 --preset midscale --ports 8 --quiet --out results/midscale_fig8 > results/midscale_fig8_8p.log 2>&1
echo CAMPAIGN_DONE
