"""Legacy setup shim.

The offline evaluation environment ships setuptools without ``wheel``,
so PEP-517 editable installs fail with "invalid command 'bdist_wheel'".
This shim lets ``pip install -e . --no-use-pep517`` (and plain
``pip install -e .`` on older pips) work; all metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
