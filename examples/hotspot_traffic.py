#!/usr/bin/env python
"""Extension study: DOWN/UP vs baselines under *hotspot* traffic.

The paper evaluates only uniform traffic, but its whole motivation is
hot-spot formation (Pfister & Norton).  This example stresses the
algorithms with an explicit hotspot pattern — a fraction of all packets
targets the switches nearest the root — and reports throughput, latency
and the hot-spot degree.  The tree-aware DOWN/UP keeps more of the
remaining (background) traffic away from the top of the tree, so its
advantage typically widens relative to the uniform-traffic results.

Run:  python examples/hotspot_traffic.py [fraction]
"""

import sys

from repro import build_down_up_routing, build_l_turn_routing, build_up_down_routing
from repro import random_irregular_topology
from repro.core.coordinated_tree import build_coordinated_tree
from repro.metrics.utilization import utilization_report
from repro.simulator import HotspotTraffic, SimulationConfig, simulate
from repro.util.tables import format_table


def main(fraction: float = 0.25) -> None:
    topo = random_irregular_topology(32, 4, rng=13)
    tree = build_coordinated_tree(topo)
    # hotspots: the root's children (level 1) — the paper's hot zone
    hotspots = tree.level_nodes(1)[:2]
    print(
        f"== {topo}; hotspot switches {hotspots} receive an extra "
        f"{fraction:.0%} of traffic"
    )
    traffic = HotspotTraffic(topo.n, hotspots=hotspots, fraction=fraction)
    cfg = SimulationConfig(
        packet_length=32,
        injection_rate=1.0,  # saturated sources: measures max throughput
        warmup_clocks=2_000,
        measure_clocks=8_000,
        seed=13,
    )
    rows = []
    for build in (
        build_down_up_routing,
        build_l_turn_routing,
        build_up_down_routing,
    ):
        r = build(topo, tree=tree)
        st = simulate(r, cfg, traffic)
        rep = utilization_report(st.channel_utilization(), tree)
        rows.append(
            [
                r.name,
                round(st.accepted_traffic, 4),
                round(st.average_latency, 1),
                round(rep["hot_spot_degree"], 2),
                round(rep["traffic_load"], 4),
            ]
        )
    print(
        format_table(
            ["algorithm", "throughput", "latency", "hot spots %", "traffic load"],
            rows,
        )
    )
    print(
        "\nNote: all algorithms suffer under hotspot traffic (the hotspot\n"
        "switches' consumption ports are the bottleneck), but the ordering\n"
        "of the hot-spot degree column should match the paper's uniform-\n"
        "traffic result: down-up < l-turn <= up-down."
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
