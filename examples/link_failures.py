#!/usr/bin/env python
"""Extension: how gracefully does each algorithm absorb link failures?

Tree-based routing recomputes on whatever graph survives — that is its
selling point for NOW clusters.  This example degrades one irregular
network link by link (never disconnecting it), rebuilds DOWN/UP,
L-turn and up*/down* on every instance, and tracks mean path length,
adaptivity and the static hot-spot degree.  Every rebuilt routing
passes the Theorem-1 verification, so this doubles as a fault-model
stress test.

Run:  python examples/link_failures.py [max_failures]
"""

import sys

from repro import random_irregular_topology
from repro.analysis.resilience import resilience_study
from repro.core.downup import build_down_up_routing
from repro.routing.lturn import build_l_turn_routing
from repro.routing.updown import build_up_down_routing
from repro.util.tables import format_table


def main(max_failures: int = 8) -> None:
    topo = random_irregular_topology(32, 4, rng=21)
    print(
        f"== degrading {topo} up to {max_failures} failed links "
        f"(connectivity preserved)"
    )
    counts = list(range(0, max_failures + 1, 2))
    study = resilience_study(
        topo,
        {
            "down-up": build_down_up_routing,
            "l-turn": build_l_turn_routing,
            "up-down": build_up_down_routing,
        },
        counts,
        rng=3,
    )
    for metric, getter in (
        ("mean path length", lambda p: round(p.mean_path, 3)),
        ("adaptivity", lambda p: round(p.adaptivity, 3)),
        ("hot-spot degree (%)", lambda p: round(p.hot_spot_degree, 2)),
    ):
        rows = []
        for name, points in study.items():
            rows.append([name] + [getter(p) for p in points])
        print()
        print(
            format_table(
                ["algorithm"] + [f"{k} fail" for k in counts],
                rows,
                title=metric,
            )
        )
    print(
        "\nEvery rebuilt routing was machine-verified deadlock-free and\n"
        "connected. Expect paths to stretch and adaptivity to fall as\n"
        "links die, with DOWN/UP retaining the lowest hot-spot share."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
