#!/usr/bin/env python
"""Multi-host campaign execution: leases, crash takeover, identical merge.

Several workers — normally one per host — point at one shared campaign
directory and cooperatively drain a stage's work list with no
coordinator process (`repro.experiments.distributed`). This example
stages the protocol at toy scale, on one machine, with real processes:

1. two workers drain one Figure-8 stage concurrently — units are
   claimed through `O_EXCL` lease files, results stream to one ledger
   shard per worker, and the deterministic merge is bit-identical to a
   single-host run;
2. chaos: a worker rigged to SIGKILL itself mid-unit dies holding a
   lease — a survivor observes the frozen heartbeat counter (no
   wall-clock comparison anywhere), takes the lease over, and still
   produces byte-identical results;
3. a unit whose lease chain says it killed two distinct workers is
   quarantined as poison and reported as a `UnitFailure` instead of
   taking down every host that touches it.

Run:  python examples/distributed_campaign.py
"""

import multiprocessing
import os
import shutil
from pathlib import Path

from repro.experiments import figure8_units, get_preset, run_parallel
from repro.experiments.distributed import (
    LEASE_DIR,
    WorkerConfig,
    canonical_digest,
    read_lease,
    read_poison,
    run_distributed,
    try_claim,
)
from repro.experiments.ledger import unit_digest
from repro.experiments.parallel import TEST_FAULT_ENV

DEMO_DIR = Path("distributed_demo")


def _preset():
    return get_preset("tiny").scaled(
        warmup_clocks=100, measure_clocks=400, rates=(0.05, 0.2)
    )


def _config(stage: str, worker: str) -> WorkerConfig:
    # aggressive timing for the demo: scans every 50 ms, takeover after
    # 3 unchanged observations of a peer's heartbeat counter
    return WorkerConfig(
        campaign_dir=DEMO_DIR / stage, worker=worker,
        poll_interval=0.05, stale_scans=3,
    )


def _worker(stage: str, name: str, fault: str = "") -> None:
    """One worker process (module-level for multiprocessing)."""
    if fault:
        os.environ[TEST_FAULT_ENV] = fault
    preset = _preset()
    units = figure8_units(preset, ports=4, methods=("M1",))
    config = _config(stage, name)
    run_distributed(units, config.stage_dir("demo"), config, progress=print)


def _spawn(stage: str, name: str, fault: str = "") -> multiprocessing.Process:
    proc = multiprocessing.Process(target=_worker, args=(stage, name, fault))
    proc.start()
    return proc


def main() -> None:
    shutil.rmtree(DEMO_DIR, ignore_errors=True)
    preset = _preset()
    units = figure8_units(preset, ports=4, methods=("M1",))
    print(f"== work list: {len(units)} units (tiny preset, 4-port, M1)")
    clean = run_parallel(list(units), max_workers=1)
    reference = canonical_digest(clean)
    print(f"   single-host reference digest: {reference[:16]}...")

    print("\n== act 1: two workers drain one shared stage")
    procs = [_spawn("duo", "alice"), _spawn("duo", "bob")]
    for proc in procs:
        proc.join()
    assert all(p.exitcode == 0 for p in procs)
    stage = _config("duo", "alice").stage_dir("demo")
    for shard in sorted(stage.glob("ledger_*.jsonl")):
        lines = shard.read_text().count("\n")
        print(f"   {shard.name}: {lines} record(s)")
    # re-merge in this process: the fold depends only on the shards
    config = _config("duo", "merge-only")
    merged = run_distributed(units, stage, config)
    assert canonical_digest(merged) == reference
    print("   merged results bit-identical to the single-host run")

    print("\n== act 2: SIGKILL a worker mid-unit; a survivor takes over")
    doomed = _spawn("chaos", "doomed", fault="down-up:kill:99")
    doomed.join()
    stage = _config("chaos", "doomed").stage_dir("demo")
    leases = list((stage / LEASE_DIR).iterdir())
    print(
        f"   doomed worker exit code {doomed.exitcode}, "
        f"{len(leases)} abandoned lease(s)"
    )
    _state, _identity, info = read_lease(leases[0])
    print(f"   lease held by {info['worker']}, counter frozen — stale soon")
    survivor = _spawn("chaos", "survivor")
    survivor.join()
    assert survivor.exitcode == 0
    merged = run_distributed(units, stage, _config("chaos", "merge-only"))
    assert canonical_digest(merged) == reference
    print("   survivor finished the stage; results still bit-identical")

    print("\n== act 3: a unit that kills every host is quarantined")
    stage = _config("poison", "carol").stage_dir("demo")
    (stage / LEASE_DIR).mkdir(parents=True)
    victim = units[0]
    # a lease chain recording two prior deaths on this unit
    try_claim(
        stage / LEASE_DIR / f"{unit_digest(victim)}.json",
        "deadB", ["deadA"], victim.key(),
    )
    failures = []
    config = WorkerConfig(
        campaign_dir=DEMO_DIR / "poison", worker="carol",
        poll_interval=0.05, stale_scans=3, poison_after=2,
    )
    results = run_distributed(
        units, stage, config, progress=print, failures=failures
    )
    assert len(results) == len(units) - 1
    assert len(failures) == 1 and "poisoned" in failures[0].error
    marker = read_poison(stage)[unit_digest(victim)]
    print(
        f"   quarantined {failures[0].key} after deaths of "
        f"{marker['workers']}; the other {len(results)} units completed"
    )

    shutil.rmtree(DEMO_DIR, ignore_errors=True)
    print("\nOK")


if __name__ == "__main__":
    main()
