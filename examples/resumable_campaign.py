#!/usr/bin/env python
"""Resumable campaign execution: crash isolation and the result ledger.

The archival presets run thousands of independent simulations over a
process pool; this example shows, at toy scale, the machinery that
makes those runs survivable (`repro.experiments.ledger` + `parallel`):

1. run a Figure-8 work list with a durable JSONL ledger while one
   algorithm is rigged to crash on every attempt — its siblings'
   results land on disk anyway, the broken units are retried and then
   reported as failed without aborting the run;
2. re-run with the *same* ledger and the fault removed — completed
   units are skipped (their recorded results merge back in input
   order), only the failed ones execute, and the merged results are
   identical to a never-interrupted run;
3. inspect the ledger with `read_records`, then corrupt its tail and
   watch recovery truncate the torn region like a write-ahead log.

Run:  python examples/resumable_campaign.py
"""

import os

from repro.experiments import (
    ResultLedger,
    figure8_units,
    get_preset,
    read_records,
    run_parallel,
    unit_digest,
)
from repro.experiments.parallel import TEST_FAULT_ENV


def main() -> None:
    preset = get_preset("tiny").scaled(
        warmup_clocks=100, measure_clocks=400, rates=(0.05, 0.2)
    )
    units = figure8_units(preset, ports=4, methods=("M1",))
    ledger_path = "resumable_demo_ledger.jsonl"
    if os.path.exists(ledger_path):
        os.remove(ledger_path)

    print(f"== work list: {len(units)} units (tiny preset, 4-port, M1)")

    print("\n== act 1: run with the L-turn units rigged to crash")
    os.environ[TEST_FAULT_ENV] = "l-turn:raise:99"  # every attempt raises
    failures = []  # run_parallel reports exhausted units here
    try:
        with ResultLedger(ledger_path) as ledger:
            partial = run_parallel(
                units, max_workers=1, progress=print, ledger=ledger,
                retries=1, failures=failures,
            )
            tally = ledger.summary()
    finally:
        del os.environ[TEST_FAULT_ENV]
    print(
        f"   survived: {len(partial)}/{len(units)} results, ledger says "
        f"{tally['completed']} completed / {tally['failed']} failed"
    )
    assert len(failures) == tally["failed"], "failures surface to the caller"
    for f in failures:
        print(f"   reported: {f.key} after {f.attempts} attempt(s)")

    print("\n== act 2: resume with the fault gone")
    with ResultLedger(ledger_path) as ledger:
        resumed = run_parallel(
            units, max_workers=1, progress=print, ledger=ledger
        )
    clean = run_parallel(units, max_workers=1)
    assert resumed == clean, "resumed run must match a clean run exactly"
    print(f"   {len(resumed)} results, bit-identical to an uninterrupted run")

    print("\n== act 3: ledger anatomy and torn-tail recovery")
    records = read_records(ledger_path)
    ok = sum(1 for r in records if r["status"] == "ok")
    failed = len(records) - ok
    retried = sum(1 for r in records if r["attempt"] > 1)
    print(
        f"   {len(records)} records ({ok} ok, {failed} failed), "
        f"{retried} written on a retry attempt"
    )
    digests = {unit_digest(u) for u in units}
    assert all(r["digest"] in digests for r in records)

    with open(ledger_path, "ab") as fh:  # a crash mid-append: torn line
        fh.write(b'{"v":1,"digest":"torn')
    with ResultLedger(ledger_path) as ledger:
        print(
            f"   reopened after corruption: {ledger.dropped_lines} torn "
            f"line(s) truncated, {len(ledger.completed)} results recovered"
        )
        assert len(ledger.completed) == len(units)

    os.remove(ledger_path)
    print("\nOK")


if __name__ == "__main__":
    main()
