#!/usr/bin/env python
"""Quickstart: build, verify and simulate the DOWN/UP routing.

Walks the paper's whole pipeline on one random irregular network:

1. sample a 32-switch, 4-port irregular topology;
2. build the coordinated tree (M1) and the DOWN/UP routing (Phases
   1-3) plus the L-turn and up*/down* baselines on the *same* tree;
3. machine-check Theorem 1 (deadlock freedom + connectivity);
4. run the wormhole simulator at a moderate load and at saturation;
5. print the Section-5 metrics for each algorithm.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import (
    build_down_up_routing,
    build_l_turn_routing,
    build_up_down_routing,
    build_coordinated_tree,
    random_irregular_topology,
)
from repro.metrics.saturation import measure_at_saturation
from repro.metrics.utilization import utilization_report
from repro.simulator import SimulationConfig, simulate
from repro.util.tables import format_table


def main(seed: int = 7) -> None:
    print(f"== sampling a 32-switch 4-port irregular network (seed={seed})")
    topo = random_irregular_topology(n=32, ports=4, rng=seed)
    print(f"   {topo}: {topo.num_links} links, {topo.num_channels} channels")

    tree = build_coordinated_tree(topo)  # M1: the paper's Phase-1 method
    print(f"   coordinated tree: depth={tree.depth}, {len(tree.leaves())} leaves")

    print("== building routing functions (each is verified deadlock-free)")
    routings = [
        build_down_up_routing(topo, tree=tree),
        build_l_turn_routing(topo, tree=tree),
        build_up_down_routing(topo, tree=tree),
    ]
    for r in routings:
        print(
            f"   {r.name:12s} avg shortest path = "
            f"{r.average_path_length():.3f} hops"
        )

    print("== simulating at offered load 0.08 flits/clock/node")
    cfg = SimulationConfig(
        packet_length=32,
        injection_rate=0.08,
        warmup_clocks=2_000,
        measure_clocks=6_000,
        seed=seed,
    )
    rows = []
    for r in routings:
        st = simulate(r, cfg)
        rows.append(
            [r.name, round(st.accepted_traffic, 4), round(st.average_latency, 1),
             round(st.average_hops, 2)]
        )
    print(format_table(["algorithm", "accepted", "latency", "hops"], rows))

    print("== measuring at saturation (Tables 1-4 regime)")
    rows = []
    for r in routings:
        st = measure_at_saturation(r, cfg)
        rep = utilization_report(st.channel_utilization(), tree)
        rows.append(
            [
                r.name,
                round(st.accepted_traffic, 4),
                round(rep["node_utilization"], 4),
                round(rep["traffic_load"], 4),
                round(rep["hot_spot_degree"], 2),
                round(rep["leaves_utilization"], 4),
            ]
        )
    print(
        format_table(
            [
                "algorithm",
                "max throughput",
                "node util",
                "traffic load",
                "hot spots %",
                "leaves util",
            ],
            rows,
        )
    )
    print(
        "\nExpected shape (paper Remark 2): down-up beats l-turn on every "
        "column; up-down trails both."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
