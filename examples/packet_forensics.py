#!/usr/bin/env python
"""Packet forensics: where do the slowest packets lose their time?

Aggregate latency curves say *that* L-turn is slower than DOWN/UP near
saturation; per-packet traces say *why*.  This example attaches a
:class:`~repro.simulator.trace.TraceRecorder` to a loaded run of each
algorithm, pulls out the slowest delivered packets, and decomposes
their life into source queueing, per-hop stalls and drain time —
showing that the extra latency concentrates in a few hops near the top
of the coordinated tree.

Run:  python examples/packet_forensics.py [seed]
"""

import sys

from repro import random_irregular_topology
from repro.core.coordinated_tree import build_coordinated_tree
from repro.core.downup import build_down_up_routing
from repro.routing.lturn import build_l_turn_routing
from repro.simulator import SimulationConfig, TraceRecorder, WormholeSimulator
from repro.util.tables import format_table


def worst_packets(tracer, k=5):
    finished = [t for t in tracer if t.network_time() is not None]
    return sorted(finished, key=lambda t: -(t.network_time() or 0))[:k]


def main(seed: int = 11) -> None:
    topo = random_irregular_topology(32, 4, rng=seed)
    tree = build_coordinated_tree(topo)
    cfg = SimulationConfig(
        packet_length=32,
        injection_rate=0.14,  # near saturation for this size
        warmup_clocks=2_000,
        measure_clocks=6_000,
        seed=seed,
    )
    for build in (build_down_up_routing, build_l_turn_routing):
        routing = build(topo, tree=tree)
        sim = WormholeSimulator(routing, cfg)
        sim.tracer = TraceRecorder(max_packets=50_000)
        stats = sim.run()
        summary = sim.tracer.summary()
        print(
            f"\n== {routing.name}: accepted={stats.accepted_traffic:.4f}, "
            f"mean wait={summary['mean_wait']:.1f}, "
            f"mean network time={summary['mean_network_time']:.1f}"
        )
        rows = []
        for t in worst_packets(sim.tracer):
            hops = t.per_hop_delays()
            # switch levels along the path (sinks of traversed channels)
            levels = [tree.y[topo.channel(c).sink] for c in t.path()]
            worst_hop = max(range(len(hops)), key=lambda i: hops[i]) if hops else -1
            rows.append(
                [
                    f"{t.src}->{t.dst}",
                    t.waiting_time(),
                    t.network_time(),
                    len(t.path()),
                    " ".join(str(d) for d in hops),
                    levels[worst_hop] if hops else "-",
                ]
            )
        print(
            format_table(
                ["packet", "queue wait", "net time", "hops",
                 "per-hop delays (clocks)", "worst-hop level"],
                rows,
                title="five slowest delivered packets",
            )
        )
    print(
        "\nReading: an unloaded hop costs 3 clocks; larger entries are\n"
        "contention stalls.  Near saturation L-turn's worst stalls sit at\n"
        "low tree levels (the root hot spot); DOWN/UP spreads them deeper."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 11)
