#!/usr/bin/env python
"""Statistical rigor on top of the paper's tables.

The paper reports plain means over its random samples.  This example
re-runs the Tables-1-4 campaign at a small scale and shows what the
library's statistics layer adds:

* 95% confidence intervals per table cell;
* *paired* comparisons of DOWN/UP vs L-turn per cell — pairing by test
  sample (both algorithms share each sample's topology and coordinated
  tree) cancels the topology-to-topology variance, which is exactly why
  the paper's "same coordinated tree" methodology is the right one.

Run:  python examples/confidence_intervals.py [samples]
"""

import sys

from repro.experiments.configs import get_preset
from repro.experiments.statistics import (
    paired_table_comparison,
    summarize_table_result,
)
from repro.experiments.tables import TABLE_METRICS, run_tables
from repro.util.tables import format_table


def main(samples: int = 4) -> None:
    preset = get_preset("tiny").scaled(
        samples=samples, n_switches=24, ports=(4,),
        warmup_clocks=800, measure_clocks=2_500,
    )
    print(
        f"== saturated table campaign: {preset.n_switches} switches, "
        f"{samples} samples, 4-port"
    )
    result = run_tables(preset, methods=("M1",), progress=None)
    summaries = summarize_table_result(result.raw)

    rows = []
    for metric in sorted(TABLE_METRICS, key=lambda m: TABLE_METRICS[m][0]):
        du = summaries[(metric, "down-up", "M1", 4)]
        lt = summaries[(metric, "l-turn", "M1", 4)]
        cmp = paired_table_comparison(result.raw, metric, "down-up", "l-turn")[
            ("M1", 4)
        ]
        rows.append(
            [
                f"T{TABLE_METRICS[metric][0]} {metric}",
                f"{lt.mean:.4g} ± {lt.half_width:.2g}",
                f"{du.mean:.4g} ± {du.half_width:.2g}",
                f"{cmp.mean_difference:+.4g} ± {cmp.half_width:.2g}",
                "yes" if cmp.significant else "no",
            ]
        )
    print(
        format_table(
            ["metric", "l-turn (95% CI)", "down-up (95% CI)",
             "paired Δ (du - lt)", "significant?"],
            rows,
        )
    )
    print(
        "\nNote how the paired Δ interval is far tighter than the two\n"
        "per-algorithm intervals would suggest: per-sample topology noise\n"
        "is common to both arms and cancels.  For hot spots and traffic\n"
        "load a *negative* Δ favours DOWN/UP; for the utilizations a\n"
        "positive one does."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
