#!/usr/bin/env python
"""Extension: virtual channels on top of DOWN/UP (paper §4, related work [8]).

The paper notes DOWN/UP "can be directly applied to arbitrary topology
with (or without) any virtual channel"; its related work (Silla &
Duato) builds high-performance irregular routing from an adaptive layer
plus a deadlock-free escape layer on dedicated VCs.  This example
measures both on one network:

* ``replicate`` — DOWN/UP on 1, 2 and 4 VCs (same turn restrictions,
  VCs only relieve head-of-line blocking);
* ``duato`` — fully adaptive minimal routing on VCs 1..V-1 with a
  DOWN/UP (or up*/down*) escape on VC 0.

Run:  python examples/virtual_channels.py [seed]
"""

import sys

from repro import random_irregular_topology
from repro.core.downup import build_down_up_routing
from repro.routing.duato import build_duato_routing
from repro.simulator import SimulationConfig, simulate, simulate_vc
from repro.util.tables import format_table


def main(seed: int = 5) -> None:
    topo = random_irregular_topology(32, 4, rng=seed)
    down_up = build_down_up_routing(topo)
    duato_du = build_duato_routing(topo, escape=down_up)
    duato_ud = build_duato_routing(topo, escape="up-down")

    cfg = SimulationConfig(
        packet_length=32,
        injection_rate=1.0,  # saturated: measures max throughput
        warmup_clocks=2_000,
        measure_clocks=6_000,
        seed=seed,
    )

    rows = []
    base = simulate(down_up, cfg)
    rows.append(["down-up (no VCs)", 1, round(base.accepted_traffic, 4),
                 round(base.average_latency, 1)])
    for vcs in (2, 4):
        st = simulate_vc(down_up, cfg, num_vcs=vcs)
        rows.append([f"down-up x{vcs} VCs", vcs,
                     round(st.accepted_traffic, 4),
                     round(st.average_latency, 1)])
    for name, d in (("duato/down-up escape", duato_du),
                    ("duato/up-down escape", duato_ud)):
        st = simulate_vc(d, cfg, num_vcs=2)
        rows.append([name, 2, round(st.accepted_traffic, 4),
                     round(st.average_latency, 1)])

    print(f"== saturated throughput on {topo}")
    print(format_table(["configuration", "VCs", "throughput", "latency"], rows))
    print(
        "\nExpected shape: throughput grows with VC count (head-of-line\n"
        "relief), and the Duato adaptive+escape pairing competes with or\n"
        "beats plain replication at equal VC count."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
