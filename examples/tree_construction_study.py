#!/usr/bin/env python
"""Coordinated-tree construction study (the paper's Remark 1).

The paper's first claim is that *how you build the coordinated tree
matters*: its M1 ordering (preorder visits the smallest node number
first) beats a random order (M2) and the reverse order (M3) for both
DOWN/UP and L-turn.  This example measures that effect without any
simulation, using the exact static path analysis on several random
networks, and prints the per-method means of the four table metrics.

Run:  python examples/tree_construction_study.py [n_samples]
"""

import sys
from collections import defaultdict

from repro import TreeMethod, random_irregular_topology
from repro.analysis.static_load import static_utilization_report
from repro.core.coordinated_tree import build_coordinated_tree
from repro.core.downup import build_down_up_routing
from repro.routing.lturn import build_l_turn_routing
from repro.util.tables import format_table

METRICS = ("node_utilization", "traffic_load", "hot_spot_degree", "leaves_utilization")


def main(samples: int = 5) -> None:
    sums = defaultdict(lambda: defaultdict(float))
    for sample in range(samples):
        topo = random_irregular_topology(48, 4, rng=1000 + sample)
        for method in TreeMethod:
            tree = build_coordinated_tree(topo, method, rng=sample)
            for name, build in (
                ("down-up", build_down_up_routing),
                ("l-turn", build_l_turn_routing),
            ):
                routing = build(topo, tree=tree)
                rep = static_utilization_report(routing, tree)
                for m in METRICS:
                    sums[(name, method.name)][m] += rep[m] / samples

    for metric in METRICS:
        rows = []
        for method in ("M1", "M2", "M3"):
            rows.append(
                [method]
                + [
                    round(sums[(alg, method)][metric], 4)
                    for alg in ("l-turn", "down-up")
                ]
            )
        print(
            format_table(
                ["", "l-turn", "down-up"],
                rows,
                title=f"{metric} (static, {samples} samples, 48 switches)",
            )
        )
        print()

    print(
        "Remark 1 check: M1 should give the lowest hot-spot degree and\n"
        "traffic load of the three methods for both algorithms (averaged\n"
        "over samples; individual networks can deviate)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5)
