#!/usr/bin/env python
"""Routing anatomy: where does each algorithm send the traffic?

Dissects the four algorithms on one network with the library's
diagnostic tools:

* path-length distribution and diameter (the up*/down* long-path
  problem, Section 1);
* adaptivity (minimal admissible candidates per decision);
* the per-level utilization profile at saturation — the spatial picture
  behind the paper's "degree of hot spots": watch the top-level bars
  shrink and the leaf-level bars grow as you go from up*/down* to
  L-turn to DOWN/UP.

Run:  python examples/routing_anatomy.py [seed]
"""

import sys

from repro import (
    build_down_up_routing,
    build_l_turn_routing,
    build_left_right_routing,
    build_up_down_routing,
    random_irregular_topology,
)
from repro.core.coordinated_tree import build_coordinated_tree
from repro.metrics import level_share_profile, render_level_profile
from repro.metrics.saturation import measure_at_saturation
from repro.routing import compare_routings, path_length_stats, turn_usage
from repro.simulator import SimulationConfig
from repro.util.tables import format_table


def main(seed: int = 42) -> None:
    topo = random_irregular_topology(48, 4, rng=seed)
    tree = build_coordinated_tree(topo)
    routings = [
        build_down_up_routing(topo, tree=tree),
        build_l_turn_routing(topo, tree=tree),
        build_up_down_routing(topo, tree=tree),
        build_left_right_routing(topo, tree=tree),
    ]

    print(f"== diagnostics on {topo} (tree depth {tree.depth})")
    print(
        format_table(
            ["algorithm", "mean path", "diameter", "adaptivity", "dependencies"],
            compare_routings(routings),
        )
    )

    print("\n== path-length histograms (ordered pairs per length)")
    for r in routings:
        ps = path_length_stats(r)
        row = ", ".join(f"{k}:{v}" for k, v in ps.histogram.items())
        print(f"   {r.name:12s} {row}")

    print("\n== busiest turn classes (top 4 per algorithm)")
    for r in routings:
        top = sorted(turn_usage(r).items(), key=lambda kv: -kv[1])[:4]
        pretty = ", ".join(f"{a}->{b} x{n}" for (a, b), n in top)
        print(f"   {r.name:12s} {pretty}")

    print("\n== per-level share of node utilization at saturation (%)")
    cfg = SimulationConfig(
        packet_length=32, warmup_clocks=2_000, measure_clocks=6_000, seed=seed
    )
    profiles = {}
    for r in routings[:3]:  # the three the narrative contrasts
        stats = measure_at_saturation(r, cfg)
        profiles[r.name] = level_share_profile(stats.channel_utilization(), tree)
    print(render_level_profile(profiles, unit="%"))
    print(
        "\nReading: levels 0-1 together are the paper's Table-3 hot-spot\n"
        "degree; DOWN/UP should show the flattest top and the tallest\n"
        "deep-level bars."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
