#!/usr/bin/env python
"""Extension: links die *mid-run* and the network reconfigures online.

The static study (``link_failures.py``) degrades the topology before
routing is built.  Here the wormhole simulator is already carrying
traffic when links fail: worms crossing a dying link are dropped (or
truncated, under the ``drain`` policy), the fault runtime waits out a
drain window, then rebuilds the algorithm's routing on the surviving
graph — re-running the Theorem-1 verification — and swaps the tables
atomically.  Dropped packets retry from their source with capped
exponential backoff, so the run reports how much traffic the faults
actually cost.

The same seeded fault schedule hits DOWN/UP, L-turn and up*/down*, the
paper's paired-sample discipline extended to the fault axis.

Run:  python examples/live_faults.py [fault_seed]
"""

import sys

from repro import random_irregular_topology
from repro.experiments.live_resilience import (
    render_live_fault_table,
    run_live_fault_campaign,
)
from repro.faults import FaultSchedule, RetryPolicy
from repro.simulator import SimulationConfig


def main(fault_seed: int = 42) -> None:
    topo = random_irregular_topology(32, 4, rng=21)
    config = SimulationConfig(
        packet_length=32,
        injection_rate=0.05,
        warmup_clocks=1_000,
        measure_clocks=8_000,
        seed=5,
        max_stall_clocks=5_000,
    )
    # two permanent link failures plus one transient flap, all inside
    # the first half of the measurement window so recovery is observable
    schedule = FaultSchedule.random(
        topo,
        permanent_links=2,
        link_flaps=1,
        window=(1_500, 5_000),
        flap_duration=800,
        rng=fault_seed,
    )
    print(f"== live faults on {topo} (schedule seed {fault_seed})")
    print(schedule.describe())
    print()
    results = run_live_fault_campaign(
        topo,
        schedule,
        config,
        algorithms=("down-up", "l-turn", "up-down"),
        drain_clocks=64,
        retry=RetryPolicy(max_retries=8, backoff_base=64),
        seed=11,
        progress=lambda msg: print(msg, flush=True),
    )
    print()
    print(render_live_fault_table(results))
    print(
        "\nEvery swapped routing table was machine-verified deadlock-free\n"
        "and connected before installation; 'delivered' counts retried\n"
        "packets that ultimately arrived.  A delivered fraction of 1.0\n"
        "means the faults cost latency, not data."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 42)
