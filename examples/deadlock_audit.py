#!/usr/bin/env python
"""Deadlock audit: Theorem 1 as an executable, and the Section-4.3 erratum.

This example shows the verification machinery that backs every routing
function in the library:

1. build all four routing algorithms on a random irregular network and
   print their channel-dependency statistics (the acyclicity of that
   graph is the Dally-Seitz condition the paper's Theorem 1 rests on);
2. show what Phase 3 released and re-check acyclicity;
3. go one step further than a yes/no verdict: emit a deadlock-freedom
   *certificate* for the DOWN/UP routing and re-validate it with the
   independent stdlib-only checker (see docs/static_analysis.md);
4. reproduce the paper's Section 4.3 transcription error: the printed
   prohibited-turn list leaves a turn cycle open on a 5-switch network,
   and three flows routed around it deadlock in the wormhole simulator,
   while the narrative-consistent list (used by this library) is safe.

Run:  python examples/deadlock_audit.py
"""

from repro import random_irregular_topology
from repro.core.communication_graph import CommunicationGraph
from repro.core.coordinated_tree import build_coordinated_tree
from repro.core.direction_graph import (
    DOWN_UP_PROHIBITED_TURNS,
    PAPER_SECTION_4_3_PRINTED_PT,
)
from repro.core.downup import build_down_up_routing, down_up_turn_model
from repro.routing.channel_graph import dependency_adjacency, find_turn_cycle
from repro.routing.lturn import build_l_turn_routing, build_left_right_routing
from repro.routing.release import count_prohibited_pairs
from repro.routing.updown import build_up_down_routing
from repro.statics import certify_routing, check_certificate
from repro.topology.graph import Topology
from repro.util.tables import format_table


def audit_algorithms() -> None:
    topo = random_irregular_topology(32, 4, rng=3)
    print(f"== auditing routing functions on {topo}")
    rows = []
    for build in (
        build_down_up_routing,
        build_l_turn_routing,
        build_up_down_routing,
        build_left_right_routing,
    ):
        r = build(topo)
        tm = r.turn_model
        adj = dependency_adjacency(tm)
        prohibited, total = count_prohibited_pairs(tm)
        rows.append(
            [
                r.name,
                sum(len(a) for a in adj),
                f"{prohibited}/{total}",
                len(tm.released_channel_pairs()),
                "acyclic" if find_turn_cycle(tm) is None else "CYCLE!",
            ]
        )
    print(
        format_table(
            ["algorithm", "dependencies", "prohibited turns", "releases", "CDG"],
            rows,
        )
    )


def emit_certificate() -> None:
    print("\n== deadlock-freedom certificate (repro.statics)")
    topo = random_irregular_topology(16, 4, rng=3)
    routing = build_down_up_routing(topo)

    # The builder-side pass packages witnesses for Theorem 1: a
    # topological order of the channel dependency graph, a witness
    # path per switch pair, and distance-decrease witnesses.
    cert = certify_routing(routing)

    # The checker shares no code with the builders: it re-derives the
    # channels from the link list and replays every witness from raw
    # JSON. Round-trip through text to prove nothing in-memory leaks.
    report = check_certificate(cert.to_json())
    assert report.ok, report.summary()
    print(f"   routing          : {routing.name} on {topo}")
    print(f"   dependency edges : {report.dependency_edges}")
    print(f"   witness paths    : {report.witness_pairs}")
    print(f"   progress states  : {report.progress_states}")
    print(f"   independent check: PASS ({report.summary()})")
    print(f"   digest           : {cert.digest}")


def demonstrate_erratum() -> None:
    print("\n== Section 4.3 erratum")
    printed_only = PAPER_SECTION_4_3_PRINTED_PT - DOWN_UP_PROHIBITED_TURNS
    fixed_only = DOWN_UP_PROHIBITED_TURNS - PAPER_SECTION_4_3_PRINTED_PT
    print("   printed PT prohibits  :", sorted(map(str, printed_only)))
    print("   narrative PT prohibits:", sorted(map(str, fixed_only)))

    topo = Topology(5, [(0, 1), (0, 2), (0, 3), (1, 4), (3, 4), (2, 4), (2, 3)])
    cg = CommunicationGraph.from_tree(build_coordinated_tree(topo))
    printed = down_up_turn_model(
        cg, apply_phase3=False, prohibited=PAPER_SECTION_4_3_PRINTED_PT
    )
    fixed = down_up_turn_model(cg, apply_phase3=False)

    cycle = find_turn_cycle(printed)
    assert cycle is not None
    pretty = " -> ".join(
        f"<{topo.channel(c).start},{topo.channel(c).sink}>[{cg.d(c).name}]"
        for c in cycle
    )
    print(f"   witness network: links = {list(topo.links)}")
    print(f"   printed PT leaves this turn cycle open: {pretty}")
    print(f"   narrative PT on the same network: {find_turn_cycle(fixed)}")
    print(
        "   => this library implements the narrative-consistent set, which\n"
        "      is machine-verified acyclic and maximal (see DESIGN.md)."
    )


if __name__ == "__main__":
    audit_algorithms()
    emit_certificate()
    demonstrate_erratum()
