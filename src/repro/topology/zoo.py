"""A zoo of deterministic reference topologies.

The paper evaluates on random irregular networks, but a reproduction
library benefits from structured instances whose properties are known
in closed form: they anchor tests (exact distances, symmetry), make
examples legible, and let users sanity-check the turn-model machinery
on familiar shapes.  All constructors return plain
:class:`~repro.topology.graph.Topology` objects and are deterministic.

Note irregular-network routing algorithms run fine on regular shapes —
a mesh is just a particularly tidy irregular network — which makes
these useful for comparing DOWN/UP against the structure-aware
intuition (e.g. on a mesh, up*/down* hot-spots the row of the root).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.topology.graph import Topology


def line(n: int) -> Topology:
    """A path of *n* switches: ``0 - 1 - ... - n-1``."""
    return Topology(n, [(i, i + 1) for i in range(n - 1)], ports=2)


def ring(n: int) -> Topology:
    """A cycle of *n* switches (n >= 3): the canonical deadlock shape."""
    if n < 3:
        raise ValueError("a ring needs at least 3 switches")
    links = [(i, (i + 1) % n) for i in range(n)]
    return Topology(n, links, ports=2)


def star(n: int) -> Topology:
    """Switch 0 connected to every other switch."""
    if n < 2:
        raise ValueError("a star needs at least 2 switches")
    return Topology(n, [(0, i) for i in range(1, n)], ports=n - 1)


def mesh(rows: int, cols: int) -> Topology:
    """A ``rows x cols`` 2-D mesh; switch ``(r, c)`` has id ``r*cols + c``."""
    if rows < 1 or cols < 1:
        raise ValueError("mesh dimensions must be positive")
    links: List[Tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                links.append((v, v + 1))
            if r + 1 < rows:
                links.append((v, v + cols))
    return Topology(rows * cols, links, ports=4)


def torus(rows: int, cols: int) -> Topology:
    """A 2-D torus (mesh plus wraparound links).

    Requires both dimensions >= 3 so wrap links do not duplicate mesh
    links.
    """
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be >= 3")
    links = set(mesh(rows, cols).links)
    for r in range(rows):
        links.add(tuple(sorted((r * cols, r * cols + cols - 1))))
    for c in range(cols):
        links.add(tuple(sorted((c, (rows - 1) * cols + c))))
    return Topology(rows * cols, sorted(links), ports=4)


def hypercube(dim: int) -> Topology:
    """A *dim*-dimensional binary hypercube (2**dim switches)."""
    if dim < 1:
        raise ValueError("hypercube dimension must be >= 1")
    n = 1 << dim
    links = [
        (v, v ^ (1 << b))
        for v in range(n)
        for b in range(dim)
        if v < (v ^ (1 << b))
    ]
    return Topology(n, links, ports=dim)


def complete(n: int) -> Topology:
    """The complete graph on *n* switches."""
    if n < 2:
        raise ValueError("complete graph needs at least 2 switches")
    links = [(a, b) for a in range(n) for b in range(a + 1, n)]
    return Topology(n, links, ports=n - 1)


def binary_tree(levels: int) -> Topology:
    """A complete binary tree with *levels* levels (2**levels - 1 switches).

    A tree has no cross links at all, so every tree-based algorithm
    degenerates to the same routing on it — a useful differential
    baseline.
    """
    if levels < 1:
        raise ValueError("need at least one level")
    n = (1 << levels) - 1
    links = [((v - 1) // 2, v) for v in range(1, n)]
    return Topology(n, links, ports=3)


# ---------------------------------------------------------------------------
# the named zoo: canonical small instances for audits, docs and CI
# ---------------------------------------------------------------------------

#: name -> zero-argument constructor of a canonical instance.  The
#: turn-optimality auditor (``repro-experiments audit``) iterates this
#: registry, so entries must stay deterministic and small enough for
#: exhaustive per-pair analysis.
ZOO_BUILDERS = {
    "line8": lambda: line(8),
    "ring8": lambda: ring(8),
    "star8": lambda: star(8),
    "mesh3x3": lambda: mesh(3, 3),
    "mesh4x4": lambda: mesh(4, 4),
    "torus3x3": lambda: torus(3, 3),
    "hypercube3": lambda: hypercube(3),
    "complete6": lambda: complete(6),
    "tree3": lambda: binary_tree(3),
}


def zoo_names() -> List[str]:
    """Registry keys, in registration order."""
    return list(ZOO_BUILDERS)


def zoo_topology(name: str) -> Topology:
    """The canonical zoo instance called *name*.

    Raises ``KeyError`` with the available names for typos — the CLI
    surfaces this directly.
    """
    try:
        builder = ZOO_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown zoo topology {name!r}; available: {', '.join(ZOO_BUILDERS)}"
        ) from None
    return builder()
