"""Structural validation of topologies.

Centralises the invariants every experiment assumes: connectivity, port
bounds, channel-id conventions.  ``validate_topology`` raises
:class:`TopologyError` with a precise message on the first violation, so
tests and the harness can assert "this input is usable" in one call.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.topology.graph import Topology


class TopologyError(ValueError):
    """A topology violates a structural invariant."""


def find_bridges(topology: Topology) -> Set[Tuple[int, int]]:
    """All bridge links (links whose removal disconnects a component).

    Single-pass iterative Tarjan low-link computation, ``O(|V| + |E|)``.
    A tree edge ``(parent, v)`` is a bridge iff no back edge from ``v``'s
    subtree reaches ``parent`` or above (``low[v] > disc[parent]``).
    Works per connected component, so isolated switches (e.g. failed
    ones in a survivor graph) are harmless.  Returned links are
    normalised ``(min, max)`` pairs, matching ``Topology.links``.
    """
    n = topology.n
    disc = [-1] * n
    low = [0] * n
    timer = 0
    bridges: Set[Tuple[int, int]] = set()
    for root in range(n):
        if disc[root] != -1:
            continue
        disc[root] = low[root] = timer
        timer += 1
        # stack frames: (vertex, parent, index of next neighbour to scan)
        stack = [(root, -1, 0)]
        while stack:
            v, parent, i = stack.pop()
            nbrs = topology.neighbors(v)
            if i < len(nbrs):
                stack.append((v, parent, i + 1))
                w = nbrs[i]
                if w == parent:
                    continue  # the tree edge; simple graph, so unique
                if disc[w] == -1:
                    disc[w] = low[w] = timer
                    timer += 1
                    stack.append((w, v, 0))
                else:
                    low[v] = min(low[v], disc[w])
            elif parent != -1:
                low[parent] = min(low[parent], low[v])
                if low[v] > disc[parent]:
                    bridges.add((parent, v) if parent < v else (v, parent))
    return bridges


def validate_topology(topology: Topology, require_connected: bool = True) -> None:
    """Raise :class:`TopologyError` unless *topology* is well-formed.

    Checks, in order: channel-id pairing (``reverse == cid ^ 1``),
    channel/adjacency agreement, the declared port bound, and (by
    default) connectivity.
    """
    for ch in topology.channels:
        rev = topology.channel(ch.reverse_cid)
        if rev.start != ch.sink or rev.sink != ch.start:
            raise TopologyError(
                f"channel {ch.cid} reverse pairing broken: {ch} vs {rev}"
            )
    for v in range(topology.n):
        outs = {topology.channel(c).sink for c in topology.output_channels(v)}
        if outs != set(topology.neighbors(v)):
            raise TopologyError(
                f"switch {v}: output channels {sorted(outs)} disagree with "
                f"adjacency {list(topology.neighbors(v))}"
            )
        ins = {topology.channel(c).start for c in topology.input_channels(v)}
        if ins != set(topology.neighbors(v)):
            raise TopologyError(
                f"switch {v}: input channels disagree with adjacency"
            )
        if topology.ports is not None and topology.degree(v) > topology.ports:
            raise TopologyError(
                f"switch {v} has degree {topology.degree(v)} > "
                f"{topology.ports} ports"
            )
    if require_connected and not topology.is_connected():
        raise TopologyError("topology is not connected")
