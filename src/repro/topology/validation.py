"""Structural validation of topologies.

Centralises the invariants every experiment assumes: connectivity, port
bounds, channel-id conventions.  ``validate_topology`` raises
:class:`TopologyError` with a precise message on the first violation, so
tests and the harness can assert "this input is usable" in one call.
"""

from __future__ import annotations

from repro.topology.graph import Topology


class TopologyError(ValueError):
    """A topology violates a structural invariant."""


def validate_topology(topology: Topology, require_connected: bool = True) -> None:
    """Raise :class:`TopologyError` unless *topology* is well-formed.

    Checks, in order: channel-id pairing (``reverse == cid ^ 1``),
    channel/adjacency agreement, the declared port bound, and (by
    default) connectivity.
    """
    for ch in topology.channels:
        rev = topology.channel(ch.reverse_cid)
        if rev.start != ch.sink or rev.sink != ch.start:
            raise TopologyError(
                f"channel {ch.cid} reverse pairing broken: {ch} vs {rev}"
            )
    for v in range(topology.n):
        outs = {topology.channel(c).sink for c in topology.output_channels(v)}
        if outs != set(topology.neighbors(v)):
            raise TopologyError(
                f"switch {v}: output channels {sorted(outs)} disagree with "
                f"adjacency {list(topology.neighbors(v))}"
            )
        ins = {topology.channel(c).start for c in topology.input_channels(v)}
        if ins != set(topology.neighbors(v)):
            raise TopologyError(
                f"switch {v}: input channels disagree with adjacency"
            )
        if topology.ports is not None and topology.degree(v) > topology.ports:
            raise TopologyError(
                f"switch {v} has degree {topology.degree(v)} > "
                f"{topology.ports} ports"
            )
    if require_connected and not topology.is_connected():
        raise TopologyError("topology is not connected")
