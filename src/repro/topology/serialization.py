"""JSON (de)serialization of topologies.

Experiments save every generated sample next to their results so that a
run can be re-audited or re-simulated bit-for-bit later.  The format is
deliberately tiny and stable::

    {"n": 12, "ports": 4, "links": [[0, 1], [0, 2], ...]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.topology.graph import Topology


def topology_to_json(topology: Topology) -> str:
    """Serialize *topology* to a canonical JSON string."""
    return json.dumps(
        {
            "n": topology.n,
            "ports": topology.ports,
            "links": [list(link) for link in topology.links],
        },
        separators=(",", ":"),
        sort_keys=True,
    )


def topology_from_json(text: str) -> Topology:
    """Parse a topology from :func:`topology_to_json` output."""
    data = json.loads(text)
    try:
        return Topology(
            n=int(data["n"]),
            links=[tuple(pair) for pair in data["links"]],
            ports=None if data.get("ports") is None else int(data["ports"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed topology JSON: {exc}") from exc


def save_topology(topology: Topology, path: Union[str, Path]) -> None:
    """Write *topology* to *path* as JSON."""
    Path(path).write_text(topology_to_json(topology) + "\n", encoding="utf-8")


def load_topology(path: Union[str, Path]) -> Topology:
    """Read a topology previously written by :func:`save_topology`."""
    return topology_from_json(Path(path).read_text(encoding="utf-8"))
