"""The switch-graph model (paper Definition 1).

``Topology`` is an immutable undirected multigraph-free graph over switch
ids ``0..n-1``.  Every link contributes two directed *channels*; channels
get dense integer ids so that all downstream machinery (direction
labelling, channel-dependency graphs, the simulator's per-channel state
arrays) can index flat arrays instead of hashing tuples.

Channel id convention: link ``k`` joining ``u < v`` yields channel
``2*k`` = ``<u, v>`` and channel ``2*k + 1`` = ``<v, u>``; the reverse of
channel ``c`` is therefore always ``c ^ 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class Channel:
    """A directed communication channel ``<start, sink>`` (Definition 1).

    ``start`` can send messages to ``sink`` through this channel; the
    channel is an *output* channel of ``start`` and an *input* channel of
    ``sink``.  ``cid`` is the dense channel id, ``link`` the id of the
    underlying bidirectional link.
    """

    cid: int
    start: int
    sink: int
    link: int

    @property
    def reverse_cid(self) -> int:
        """Id of the opposite-direction channel of the same link."""
        return self.cid ^ 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Channel({self.cid}: {self.start}->{self.sink})"


class Topology:
    """An irregular switch-based interconnection network ``G = (V, E)``.

    Parameters
    ----------
    n:
        Number of switches (vertices), numbered ``0..n-1``.
    links:
        Iterable of unordered switch pairs.  Self-loops and duplicate
        links are rejected; each pair is normalised to ``(min, max)``.
    ports:
        Declared per-switch port bound for inter-switch links (4 or 8 in
        the paper).  ``None`` means "unchecked".  The bound constrains the
        *degree*, it does not require every port to be used.

    The instance exposes adjacency both at the switch level
    (:meth:`neighbors`) and at the channel level (:meth:`output_channels`
    / :meth:`input_channels`), which is what routing construction and the
    simulator consume.
    """

    __slots__ = (
        "n",
        "ports",
        "links",
        "channels",
        "_adj",
        "_out_channels",
        "_in_channels",
        "_channel_by_pair",
    )

    def __init__(
        self,
        n: int,
        links: Iterable[Tuple[int, int]],
        ports: int | None = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"need at least one switch, got n={n}")
        norm: List[Tuple[int, int]] = []
        seen = set()
        for a, b in links:
            a, b = int(a), int(b)
            if a == b:
                raise ValueError(f"self-loop on switch {a}")
            if not (0 <= a < n and 0 <= b < n):
                raise ValueError(f"link ({a},{b}) out of range for n={n}")
            pair = (a, b) if a < b else (b, a)
            if pair in seen:
                raise ValueError(f"duplicate link {pair}")
            seen.add(pair)
            norm.append(pair)
        norm.sort()

        self.n = n
        self.ports = ports
        self.links: Tuple[Tuple[int, int], ...] = tuple(norm)

        channels: List[Channel] = []
        adj: List[List[int]] = [[] for _ in range(n)]
        out_ch: List[List[int]] = [[] for _ in range(n)]
        in_ch: List[List[int]] = [[] for _ in range(n)]
        by_pair: Dict[Tuple[int, int], int] = {}
        for k, (u, v) in enumerate(norm):
            fwd = Channel(cid=2 * k, start=u, sink=v, link=k)
            rev = Channel(cid=2 * k + 1, start=v, sink=u, link=k)
            channels.extend((fwd, rev))
            adj[u].append(v)
            adj[v].append(u)
            out_ch[u].append(fwd.cid)
            in_ch[v].append(fwd.cid)
            out_ch[v].append(rev.cid)
            in_ch[u].append(rev.cid)
            by_pair[(u, v)] = fwd.cid
            by_pair[(v, u)] = rev.cid

        self.channels: Tuple[Channel, ...] = tuple(channels)
        self._adj = tuple(tuple(sorted(a)) for a in adj)
        self._out_channels = tuple(tuple(o) for o in out_ch)
        self._in_channels = tuple(tuple(i) for i in in_ch)
        self._channel_by_pair = by_pair

        if ports is not None:
            bad = [v for v in range(n) if len(self._adj[v]) > ports]
            if bad:
                raise ValueError(
                    f"switches {bad} exceed the {ports}-port bound"
                )

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_links(self) -> int:
        """Number of bidirectional links ``|E|``."""
        return len(self.links)

    @property
    def num_channels(self) -> int:
        """Number of directed channels (``2 |E|``)."""
        return 2 * len(self.links)

    def degree(self, v: int) -> int:
        """Number of inter-switch links at switch *v*."""
        return len(self._adj[v])

    def neighbors(self, v: int) -> Tuple[int, ...]:
        """Switches adjacent to *v*, in ascending id order."""
        return self._adj[v]

    def output_channels(self, v: int) -> Tuple[int, ...]:
        """Channel ids whose start node is *v*."""
        return self._out_channels[v]

    def input_channels(self, v: int) -> Tuple[int, ...]:
        """Channel ids whose sink node is *v*."""
        return self._in_channels[v]

    def channel(self, cid: int) -> Channel:
        """The :class:`Channel` with dense id *cid*."""
        return self.channels[cid]

    def channel_id(self, start: int, sink: int) -> int:
        """Dense id of channel ``<start, sink>`` (KeyError if no link)."""
        return self._channel_by_pair[(start, sink)]

    def has_link(self, a: int, b: int) -> bool:
        """True if an (undirected) link joins *a* and *b*."""
        return (a, b) in self._channel_by_pair

    # ------------------------------------------------------------------
    # graph-level queries
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        """True if every switch is reachable from switch 0."""
        if self.n == 1:
            return True
        seen = [False] * self.n
        seen[0] = True
        stack = [0]
        count = 1
        while stack:
            v = stack.pop()
            for w in self._adj[v]:
                if not seen[w]:
                    seen[w] = True
                    count += 1
                    stack.append(w)
        return count == self.n

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self.n == other.n and self.links == other.links

    def __hash__(self) -> int:
        return hash((self.n, self.links))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Topology(n={self.n}, links={self.num_links}, "
            f"ports={self.ports})"
        )


def path_channels(topology: Topology, nodes: Sequence[int]) -> List[int]:
    """Channel ids along the switch path *nodes* (adjacent consecutive).

    Convenience for tests and examples: converts a node path
    ``[v0, v1, ..., vk]`` into the channel path
    ``[<v0,v1>, ..., <v(k-1),vk>]``.
    """
    return [
        topology.channel_id(a, b) for a, b in zip(nodes[:-1], nodes[1:])
    ]
