"""Irregular switch-based network topologies (paper Definition 1).

A topology is an undirected graph of switches; every bidirectional link
``(u, v)`` carries the two directed *channels* ``<u, v>`` and ``<v, u>``.
This package provides the :class:`~repro.topology.graph.Topology` model,
the random irregular generator used by the evaluation (128 switches,
4-port / 8-port bounds), validation, and JSON serialization.
"""

from repro.topology.graph import Channel, Topology
from repro.topology.generator import random_irregular_topology, TopologyGenError
from repro.topology.validation import (
    TopologyError,
    validate_topology,
)
from repro.topology.serialization import topology_from_json, topology_to_json
from repro.topology import zoo

__all__ = [
    "Channel",
    "Topology",
    "random_irregular_topology",
    "TopologyGenError",
    "TopologyError",
    "validate_topology",
    "topology_from_json",
    "topology_to_json",
    "zoo",
]
