"""Random irregular topology generation.

The paper evaluates on "randomly generated" irregular networks of 128
switches with 4-port and 8-port switches (10 samples per configuration).
It does not spell out the sampling procedure, so we follow the standard
methodology of the irregular-network literature (Silla & Duato, Jouraku
et al.): draw a degree-bounded random *connected* graph —

1. build a random spanning tree (guarantees connectivity) whose degrees
   respect the port bound, then
2. add further random links between non-adjacent, non-saturated switch
   pairs until a target link count is reached or no legal pair remains.

The default link count aims at a mean degree of ``fill * ports`` with
``fill = 0.75``, which leaves some port-count irregularity between
switches (the evaluation's *node utilization* metric explicitly divides
by "the number of ports connecting to other switches", implying degrees
below the bound occur).
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.topology.graph import Topology
from repro.util.rng import RngLike, as_generator


class TopologyGenError(RuntimeError):
    """Raised when no legal topology exists for the requested parameters."""


def random_irregular_topology(
    n: int,
    ports: int,
    rng: RngLike = None,
    num_links: Optional[int] = None,
    fill: float = 0.75,
    max_attempts: int = 64,
    style: Optional[str] = None,
) -> Topology:
    """Sample a connected irregular topology with degree bound *ports*.

    Parameters
    ----------
    n:
        Number of switches (the paper uses 128).
    ports:
        Maximum inter-switch links per switch (4 or 8 in the paper).
    rng:
        Seed or generator; the sample is deterministic given it.
    num_links:
        Exact number of links.  Must be in ``[n-1, n*ports//2]``.  If
        ``None``, ``round(fill * n * ports / 2)`` is used (clamped).
    fill:
        Fraction of total port capacity occupied by links when
        *num_links* is not given.
    max_attempts:
        Random link addition can wedge (all remaining capacity sits on
        already-adjacent pairs); the generator retries with a fresh tree
        this many times before giving up.
    style:
        Convenience presets overriding *fill*: ``"sparse"`` (0.55 —
        tree-heavy, deep networks), ``"default"`` (0.75), ``"dense"``
        (0.95 — most switches port-saturated, the Silla & Duato style).
        Ignored when *num_links* is given explicitly.
    """
    if style is not None:
        try:
            fill = {"sparse": 0.55, "default": 0.75, "dense": 0.95}[style]
        except KeyError:
            raise ValueError(
                f"unknown style {style!r}; use sparse, default or dense"
            ) from None
    if ports < 2 and n > 2:
        raise TopologyGenError(
            f"ports={ports} cannot connect {n} switches (tree needs degree 2)"
        )
    if n == 1:
        return Topology(1, [], ports=ports)

    lo, hi = n - 1, min(n * ports // 2, n * (n - 1) // 2)
    if num_links is None:
        num_links = min(max(int(round(fill * n * ports / 2.0)), lo), hi)
    if not (lo <= num_links <= hi):
        raise TopologyGenError(
            f"num_links={num_links} outside feasible range [{lo}, {hi}] "
            f"for n={n}, ports={ports}"
        )

    gen = as_generator(rng)
    last_links = 0
    for _ in range(max_attempts):
        links = _random_bounded_tree(n, ports, gen)
        _add_random_links(links, n, ports, num_links, gen)
        if len(links) == num_links:
            return Topology(n, sorted(links), ports=ports)
        last_links = len(links)
    raise TopologyGenError(
        f"could not reach {num_links} links under the {ports}-port bound "
        f"after {max_attempts} attempts (best: {last_links})"
    )


def _random_bounded_tree(
    n: int, ports: int, gen
) -> Set[Tuple[int, int]]:
    """A uniform-ish random spanning tree with all degrees <= *ports*.

    Random-permutation attachment: visit switches in random order and
    attach each to a uniformly chosen earlier switch that still has port
    capacity.  Every switch keeps at least one free port while the tree
    is growing only if capacity allows; degree saturation is respected
    exactly.
    """
    order = list(gen.permutation(n))
    degree = [0] * n
    links: Set[Tuple[int, int]] = set()
    attached: List[int] = [order[0]]
    for v in order[1:]:
        candidates = [u for u in attached if degree[u] < ports]
        if not candidates:  # pragma: no cover - ports>=2 prevents this
            raise TopologyGenError("spanning tree wedged on port bound")
        u = candidates[int(gen.integers(len(candidates)))]
        links.add((min(u, v), max(u, v)))
        degree[u] += 1
        degree[v] += 1
        attached.append(v)
    return links


def _add_random_links(
    links: Set[Tuple[int, int]],
    n: int,
    ports: int,
    num_links: int,
    gen,
) -> None:
    """Add random extra links to *links* in place, respecting bounds.

    Repeatedly samples a pair of non-saturated switches; stops when the
    target is met or when the set of legal pairs is exhausted.
    """
    degree = [0] * n
    for u, v in links:
        degree[u] += 1
        degree[v] += 1
    while len(links) < num_links:
        open_switches = [v for v in range(n) if degree[v] < ports]
        legal = [
            (a, b)
            for i, a in enumerate(open_switches)
            for b in open_switches[i + 1 :]
            if (a, b) not in links
        ]
        if not legal:
            return
        a, b = legal[int(gen.integers(len(legal)))]
        links.add((a, b))
        degree[a] += 1
        degree[b] += 1
