"""Terminal visualisation of trees and networks.

Everything in the reproduction reports through the terminal; this
package renders the structural objects (coordinated trees, direction
histograms) so examples and debugging sessions can *see* what the
algorithms see.
"""

from repro.viz.tree import render_coordinated_tree, render_direction_histogram

__all__ = ["render_coordinated_tree", "render_direction_histogram"]
