"""ASCII rendering of coordinated trees and direction statistics.

``render_coordinated_tree`` draws the tree with each switch annotated
by its ``(X, Y)`` coordinate (the objects Definitions 2-5 are built
from) and marks cross links separately — a faithful terminal version of
the paper's Figure 1(c)/(d) style drawings.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.communication_graph import CommunicationGraph
from repro.core.coordinated_tree import CoordinatedTree


def render_coordinated_tree(
    tree: CoordinatedTree,
    max_nodes: Optional[int] = 80,
) -> str:
    """Draw *tree* as an indented outline in preorder.

    Each line shows ``switch(X=?, Y=?)``; children are indented under
    their parent in preorder order, so reading top-to-bottom follows
    the X coordinate exactly.  Cross links are listed below the tree.
    Output is truncated after *max_nodes* switches (``None`` = all).
    """
    lines: List[str] = []
    count = 0
    truncated = False

    def visit(v: int, depth: int) -> None:
        nonlocal count, truncated
        if max_nodes is not None and count >= max_nodes:
            truncated = True
            return
        count += 1
        marker = "*" if not tree.children[v] else "+"
        lines.append(
            "  " * depth
            + f"{marker} s{v} (X={tree.x[v]}, Y={tree.y[v]})"
        )
        for c in tree.children[v]:
            visit(c, depth + 1)

    visit(tree.root, 0)
    if truncated:
        lines.append(f"  ... ({tree.n - count} more switches)")
    cross = sorted(tree.cross_links())
    if cross:
        shown = ", ".join(f"s{a}-s{b}" for a, b in cross[:20])
        more = f" (+{len(cross) - 20} more)" if len(cross) > 20 else ""
        lines.append(f"cross links: {shown}{more}")
    else:
        lines.append("cross links: none (pure tree)")
    return "\n".join(lines)


def render_direction_histogram(cg: CommunicationGraph, width: int = 40) -> str:
    """Bar chart of channel counts per direction class (Definition 5)."""
    hist = cg.direction_histogram()
    peak = max(hist.values()) if hist else 1
    lines = ["channels per direction:"]
    for direction, count in hist.items():
        bar = "#" * (int(round(count / peak * width)) if peak else 0)
        lines.append(f"  {direction.name:9s} |{bar:<{width}}| {count}")
    return "\n".join(lines)
