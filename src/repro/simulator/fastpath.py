"""Fast-path scheduling infrastructure for the wormhole engines.

Both engines' seed step functions rescan every source queue and
re-evaluate the routing tables' candidate sets on every clock.  Two
observations make most of that work redundant without changing a single
committed flit:

* **Routing decisions are static between reconfiguration epochs.**
  Sun et al.'s DOWN/UP function (like every turn-model routing here) is
  a pure function of ``(input channel, destination)`` once the
  prohibited-turn releases are fixed, so the candidate sets can be
  memoized in a flat per-epoch table (:class:`DecisionCache`) — the same
  observation behind precomputed-table engines in InfiniBand-style
  deployments.  A live fault or an online table swap starts a new epoch:
  the cache is dropped *atomically with* the event that changed the
  tables, so no lookup can ever mix pre- and post-swap entries.

* **Idle sources need no per-clock attention.**  A source switch only
  matters to the injection arbitration while it has a queued packet, a
  free injection port and a routing-ready header.  The
  :class:`InjectionWheel` tracks exactly that set: queue mutations wake
  a source (:class:`NotifyingDeque` signals appends/pops), a busy
  injection port parks it until the credit comes back (the engine wakes
  it when the port frees), and a header still inside its routing delay
  parks it on a timer keyed by the **engine clock** — the wheel never
  keeps a private time counter, so retry re-injections scheduled by
  :class:`repro.faults.FaultRuntime` (also engine-clocked) and wheel
  wakeups can never drift apart.

Everything in this module is bookkeeping only: the engines' fast paths
consume these structures but commit flits with the exact same rules as
the seed implementations, which is what the differential golden suite
(``tests/test_engine_equivalence.py``) locks down byte-for-byte.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, List, Optional, Tuple

__all__ = [
    "DecisionCache",
    "InjectionWheel",
    "NotifyingDeque",
    "ObservedSet",
]


class DecisionCache:
    """Flat per-epoch routing-decision table.

    Rows are materialised lazily per destination from a
    :class:`~repro.routing.base.RoutingFunction`'s ``next_hops`` /
    ``first_hops`` with the engine's dead channels filtered out, so the
    hot loop performs a single list lookup instead of nested tuple
    indexing plus a per-candidate dead-set membership test.

    ``epoch`` increments on every :meth:`invalidate` — a table swap or a
    dead-channel change — and every cached row is dropped in the same
    call, which is what makes the swap atomic from the engine's point of
    view: there is no window in which new tables coexist with old cached
    decisions.
    """

    __slots__ = ("epoch", "routing", "_dead", "_next_rows", "_first_rows")

    def __init__(self, routing, dead_channels) -> None:
        self.epoch = 0
        self._dead = dead_channels
        self.routing = routing
        self._next_rows: List[Optional[List[Tuple[int, ...]]]] = []
        self._first_rows: List[Optional[List[Tuple[int, ...]]]] = []
        self.attach(routing)

    def attach(self, routing) -> None:
        """Point the cache at (possibly new) tables and start a new epoch."""
        self.routing = routing
        self.invalidate()

    def invalidate(self) -> None:
        """Drop every cached row and bump the epoch (atomic swap point)."""
        self.epoch += 1
        self._next_rows = [None] * len(self.routing.next_hops)
        self._first_rows = [None] * len(self.routing.first_hops)

    # Engines read ``_next_rows`` / ``_first_rows`` directly and only
    # call these on a miss, keeping the steady-state cost to one list
    # index per decision.
    def next_row(self, dest: int) -> List[Tuple[int, ...]]:
        """Candidate outputs per input channel toward *dest* (dead-free)."""
        dead = self._dead
        src_row = self.routing.next_hops[dest]
        if dead:
            row = [
                tuple(c for c in cands if c not in dead) if cands else cands
                for cands in src_row
            ]
        else:
            row = list(src_row)
        self._next_rows[dest] = row
        return row

    def first_row(self, dest: int) -> List[Tuple[int, ...]]:
        """Candidate first channels per source toward *dest* (dead-free)."""
        dead = self._dead
        src_row = self.routing.first_hops[dest]
        if dead:
            row = [
                tuple(c for c in cands if c not in dead) if cands else cands
                for cands in src_row
            ]
        else:
            row = list(src_row)
        self._first_rows[dest] = row
        return row

    def lookup_next(self, dest: int, cid: int) -> Tuple[int, ...]:
        """Convenience accessor (tests / diagnostics, not the hot loop)."""
        row = self._next_rows[dest]
        if row is None:
            row = self.next_row(dest)
        return row[cid]

    def lookup_first(self, dest: int, source: int) -> Tuple[int, ...]:
        """Convenience accessor (tests / diagnostics, not the hot loop)."""
        row = self._first_rows[dest]
        if row is None:
            row = self.first_row(dest)
        return row[source]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        filled = sum(r is not None for r in self._next_rows)
        return (
            f"DecisionCache(epoch={self.epoch}, "
            f"rows={filled}/{len(self._next_rows)})"
        )


class InjectionWheel:
    """Event wheel over source switches with pending injections.

    ``pending`` holds the sources the injection arbitration must look at
    this clock.  Sources leave the set in two ways: *parked on time*
    (the queue front's ``head_ready_at`` lies in the future — a timer
    keyed by the engine clock re-adds them exactly when due) or *parked
    on credit* (the injection port is held by a worm still feeding — the
    engine wakes them when the port frees).  Queue mutations from any
    layer (traffic generation, fault-retry re-injection, tests pushing
    worms directly) wake a source through :class:`NotifyingDeque`.

    The wheel deliberately has **no clock of its own**: every timer
    carries an absolute engine-clock deadline and :meth:`advance` is
    handed ``engine.clock``, so wheel wakeups and the engine-clocked
    retry backoff of :class:`repro.faults.FaultRuntime` can never
    disagree about "now".
    """

    __slots__ = ("pending", "_timers")

    def __init__(self) -> None:
        self.pending: set = set()
        self._timers: List[Tuple[int, int]] = []  # (due engine clock, src)

    def wake(self, src: int) -> None:
        """Make *src* visible to the next injection arbitration."""
        self.pending.add(src)

    def sleep(self, src: int) -> None:
        """Remove *src* until something wakes it (queue empty / no credit)."""
        self.pending.discard(src)

    def park_until(self, src: int, due_clock: int) -> None:
        """Park *src* until the engine clock reaches *due_clock*."""
        self.pending.discard(src)
        heapq.heappush(self._timers, (due_clock, src))

    def advance(self, clock: int) -> None:
        """Wake every source whose timer expired at engine-clock *clock*."""
        timers = self._timers
        while timers and timers[0][0] <= clock:
            self.pending.add(heapq.heappop(timers)[1])

    @property
    def parked(self) -> int:
        """Sources currently waiting on a timer (diagnostics)."""
        return len(self._timers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InjectionWheel(pending={sorted(self.pending)}, "
            f"timers={len(self._timers)})"
        )


class NotifyingDeque(deque):
    """A source queue that keeps the :class:`InjectionWheel` in sync.

    Every mutation that can change the queue's emptiness (or its front
    packet) signals the wheel, so external writers — tests scripting a
    worm with ``sim.queues[s].append(w)``, the fault layer re-enqueueing
    retries — need no knowledge of the scheduler.
    """

    def __init__(self, wheel: InjectionWheel, src: int) -> None:
        super().__init__()
        self.wheel = wheel
        self.src = src

    def append(self, item) -> None:
        deque.append(self, item)
        self.wheel.wake(self.src)

    def appendleft(self, item) -> None:
        deque.appendleft(self, item)
        self.wheel.wake(self.src)

    def extend(self, items) -> None:
        deque.extend(self, items)
        if self:
            self.wheel.wake(self.src)

    def extendleft(self, items) -> None:
        deque.extendleft(self, items)
        if self:
            self.wheel.wake(self.src)

    def insert(self, index: int, item) -> None:
        deque.insert(self, index, item)
        self.wheel.wake(self.src)

    def pop(self):
        item = deque.pop(self)
        if self:
            self.wheel.wake(self.src)
        else:
            self.wheel.sleep(self.src)
        return item

    def popleft(self):
        item = deque.popleft(self)
        # the front changed: wake for re-evaluation, or sleep when drained
        if self:
            self.wheel.wake(self.src)
        else:
            self.wheel.sleep(self.src)
        return item

    def remove(self, item) -> None:
        deque.remove(self, item)
        if self:
            self.wheel.wake(self.src)
        else:
            self.wheel.sleep(self.src)

    def clear(self) -> None:
        deque.clear(self)
        self.wheel.sleep(self.src)


class ObservedSet(set):
    """A set that reports membership changes (the dead-channel set).

    The engines expose ``dead_channels`` as a plain mutable set; fault
    hooks and tests add and discard channels directly.  Routing a change
    notification through this subclass lets the engine invalidate its
    :class:`DecisionCache` in the same bytecode region as the mutation —
    the cache can never serve a candidate set filtered against a stale
    dead-channel view.
    """

    def __init__(self, on_change: Callable[[], None], iterable=()) -> None:
        super().__init__(iterable)
        self._on_change = on_change

    def add(self, item) -> None:
        if item not in self:
            set.add(self, item)
            self._on_change()

    def discard(self, item) -> None:
        if item in self:
            set.discard(self, item)
            self._on_change()

    def remove(self, item) -> None:
        set.remove(self, item)
        self._on_change()

    def update(self, *iterables) -> None:
        before = len(self)
        set.update(self, *iterables)
        if len(self) != before:
            self._on_change()

    def difference_update(self, *iterables) -> None:
        before = len(self)
        set.difference_update(self, *iterables)
        if len(self) != before:
            self._on_change()

    def clear(self) -> None:
        if self:
            set.clear(self)
            self._on_change()

    def pop(self):
        item = set.pop(self)
        self._on_change()
        return item
