"""Replica-batched simulation: R seed-replicas in one stacked array sweep.

Everything that consumes the batch engine — the statistical equivalence
gate (seed-paired A/B runs), campaign sweeps, the Figure-8 replication —
runs *many independent replicas of the same scenario*, differing only in
seed.  Run sequentially, each replica pays the per-clock Python/numpy
dispatch overhead (the fixed cost of the fused body sweep, the request
extraction, the clock-loop bookkeeping) all over again; at small-network
scale that fixed cost dominates the actual event work.

:class:`ReplicaBatchCore` stacks R independent ``engine="batch"``
simulators into shared ``(R, K)`` state arrays and drives them with one
fused clock loop:

* **Stacked state, shared views.**  :func:`repro.simulator.vec_state.stack_states`
  re-homes each replica's ``flits``/``dn``/``cap_at``/``cap_dn`` into
  C-contiguous ``(R, K)`` stacks and rebinds the per-replica
  :class:`~repro.simulator.vec_state.ArrayState` attributes to *row
  views*; each core's ``_ready_at`` request array is stacked the same
  way.  All scalar code paths (grant commits, drains, injections) keep
  mutating their own row through the existing methods, while the driver
  sweeps every row at once through the flat ``.reshape(-1)`` aliases.
* **One fused body phase per clock.**  A single global active set holds
  *global* slot ids (``r * K + k``, with a parallel ``r * K`` offset
  array so no per-clock division is needed); one gather/compare/scatter
  advances every replica's flits together, and the zero hits are split
  back per replica in an event-proportional Python loop.
* **One fused request extraction per clock.**  Due requests come from a
  single ``nonzero`` over the flat stacked ``ready_at``, partitioned
  per replica (a Python walk when the set is small, ``searchsorted``
  over the replica boundaries when not); each busy replica's unchanged
  arbitration/commit/drain phase
  (:meth:`~repro.simulator.batch_engine.BatchCore._resolve_phase`)
  consumes its own slice.  The partition preserves ascending slot
  order, so each replica consumes its arbitration RNG stream exactly as
  a sequential run would.
* **One merged traffic schedule.**  The per-replica precomputed arrival
  lists are merged into one global ``(clock, replica, source)`` event
  list walked by a single pointer — per-replica fire order is
  preserved, so each replica's packet-shaping stream is consumed
  identically to its sequential run.
* **Early-drain masking.**  A replica with no due requests, no drains,
  no freed ports and no multi-candidate fallbacks this clock is skipped
  entirely — a drained replica stops costing resolve work (the
  :attr:`ReplicaBatchCore.resolve_calls` counter makes the skipping
  observable).

**Determinism contract (packing invariance).**  Replica *r* of a
replicated run produces a ``statistical_fingerprint`` *identical* to a
sequential ``engine="batch"`` run with the same seed: replicas share no
RNG streams (each core derives its own from its config seed via the
PR-9 counter-hash scheme), the fused sweeps compute the same
per-replica values the sequential phases would, and per-replica event
ordering (arbitration requests, traffic firing, drains) is preserved by
construction.  The test suite asserts this per seed across the traffic
matrix, and the committed benchmark re-asserts it on every run.

**Array backend.**  The fused bulk arithmetic is written against the
:mod:`repro.util.xp` seam.  numpy (the default) is the only *certified*
backend and the only zero-copy one; selecting ``cupy``/``torch`` via
``REPRO_ARRAY_BACKEND`` offloads the fused room-mask computation with
explicit per-clock transfers — a feature-gated experiment, not a
supported fast path (see ``docs/simulator.md``).

**Unsupported in replica mode** (use sequential runs): live fault
schedules, tracers, and mid-run external mutation of worm/occupancy
state (anything that would mark a core dirty).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.simulator.config import SimulationConfig
from repro.simulator.engine import (
    FREE,
    DeadlockDetected,
    LivelockSuspected,
    WormholeSimulator,
)
from repro.simulator.stats import SimulationStats
from repro.simulator.vec_state import stack_states
from repro.util import xp as xp_seam
from repro.util.rng import derive_seed
from repro.util.xp import to_device, to_host

__all__ = [
    "ReplicaBatchCore",
    "replica_seed",
    "replica_seeds",
    "run_replicated",
]

#: stream-derivation key for replica seeds: replica r > 0 of base seed s
#: runs with ``derive_seed(s, _REPLICA_KEY, r)``; replica 0 runs s itself
_REPLICA_KEY = 0x5EED_0F0F

#: request-set size up to which the per-replica partition runs as a
#: plain Python walk instead of a searchsorted over replica boundaries
_SMALL_PART = 48

#: shared empty request list — ``_resolve_phase`` only reads *reqs*, so
#: replicas resolving for drains/multi alone can all share this one
_EMPTY_REQS: List[int] = []


def replica_seed(base: Optional[int], index: int) -> Optional[int]:
    """The seed of replica *index* for a base seed.

    Replica 0 keeps the base seed itself (so a replicated run subsumes
    the plain run); replica ``index > 0`` derives an independent stream
    seed from it.  ``None`` stays ``None`` — every replica of an
    unseeded run draws its own OS entropy, reproducible by nobody.
    """
    if index < 0:
        raise ValueError("replica index must be >= 0")
    if base is None or index == 0:
        return base
    return derive_seed(base, _REPLICA_KEY, index)


def replica_seeds(
    config: SimulationConfig, replicas: Optional[int] = None
) -> List[Optional[int]]:
    """The seed of each replica of *config* (see :func:`replica_seed`)."""
    n = replicas if replicas is not None else (config.replicas or 1)
    if n < 1:
        raise ValueError("need at least one replica")
    return [replica_seed(config.seed, r) for r in range(n)]


class ReplicaBatchCore:
    """Fused clock-loop driver over R stacked ``engine="batch"`` simulators.

    Build the simulators first (same routing, same scenario config,
    per-replica seeds), then hand them over; construction re-homes their
    state into the stacked arrays.  :meth:`run` drives warmup +
    measurement for all replicas and returns the per-replica
    :class:`~repro.simulator.stats.SimulationStats` in replica order.
    """

    def __init__(self, sims: Sequence[WormholeSimulator]) -> None:
        if not sims:
            raise ValueError("need at least one simulator")
        for sim in sims:
            if sim.engine_name != "batch":
                raise ValueError(
                    "replica batching requires engine='batch' simulators "
                    f"(got {sim.engine_name!r})"
                )
            if sim.faults is not None:
                raise ValueError(
                    "live fault schedules are unsupported in replica mode; "
                    "run fault scenarios sequentially"
                )
            if sim.tracer is not None:
                raise ValueError("tracers are unsupported in replica mode")
            if sim.clock != 0:
                raise ValueError("replica packing requires fresh simulators")
        cfg = sims[0].config
        scenario = cfg.with_seed(None)
        for sim in sims[1:]:
            if sim.config.with_seed(None) != scenario:
                raise ValueError(
                    "replicas must share one scenario config (seeds may differ)"
                )
        self.sims: List[WormholeSimulator] = list(sims)
        self.cores = [sim._vec for sim in self.sims]
        R = len(self.cores)
        self.R = R
        st0 = self.cores[0].state
        K = st0.K
        if any(c.state.K != K for c in self.cores):
            raise ValueError("replicas must share the topology geometry")
        self.K = K
        self.SRC0 = st0.SRC0

        # build candidate tables once up front (no faults -> the
        # decision epoch never changes mid-run, so the per-clock
        # epoch/dirty checks of the sequential path are not needed)
        for core in self.cores:
            core._prepare_clock()

        # -- stacked state ------------------------------------------------
        flits, dn, _cap_at, cap_dn = stack_states([c.state for c in self.cores])
        #: flat aliases over the stacks (views: np.stack is C-contiguous)
        self._f_flat = flits.reshape(-1)
        self._dn_flat = dn.reshape(-1)
        self._cd_flat = cap_dn.reshape(-1)
        W = self.cores[0]._ready_at.size  # request width: C + n
        ready = np.stack([c._ready_at for c in self.cores])
        for r, core in enumerate(self.cores):
            core._ready_at = ready[r]
        self._ready_flat = ready.reshape(-1)
        self.W = W
        #: per-replica slice boundaries in flat request space
        self._req_bounds = np.arange(1, R, dtype=np.int64) * W
        self._req_off = [r * W for r in range(R)]

        # -- global body active set: global slot ids r*K + k, plus a
        # parallel array of the r*K offsets (localizing a slot or
        # computing its global downstream then needs no division)
        parts: List[np.ndarray] = []
        off_parts: List[np.ndarray] = []
        for r, core in enumerate(self.cores):
            if core._act_add:
                core._act = np.concatenate(
                    (core._act, np.asarray(core._act_add, dtype=np.int64))
                )
                core._act_add.clear()
            if core._act.size:
                parts.append(core._act + r * K)
                off_parts.append(np.full(core._act.size, r * K, dtype=np.int64))
        empty = np.empty(0, dtype=np.int64)
        self._gact = np.concatenate(parts) if parts else empty
        self._goff = np.concatenate(off_parts) if off_parts else empty
        self._gact_add: List[int] = []
        self._goff_add: List[int] = []
        self._gact_filter = False

        #: prebuilt per-replica hot-loop rows (all stable objects: the
        #: wheel's timer heap and pending set, the core's multi dicts
        #: and the engine's occupancy list are mutated in place, never
        #: reassigned)
        self._wheel_rows = [
            (r, sim._wheel._timers, sim._wheel, sim._wheel.pending,
             self.cores[r]._scan_injections, self.cores[r]._inj_multi)
            for r, sim in enumerate(self.sims)
        ]
        self._multi_rows = [
            (core._mh_info, core._inj_multi, sim.channel_occ)
            for sim, core in zip(self.sims, self.cores)
        ]
        self._pairs = list(zip(self.sims, self.cores))
        self._any_checks = any(sim._check_invariants for sim in self.sims)
        #: replicas whose injection wheel needs attention (non-empty
        #: pending set or timer heap).  Exact by construction: sources
        #: enter a wheel only through queue mutations and wake calls,
        #: all of which happen inside resolve calls, wheel scans or
        #: traffic fires — each of which re-adds the replica here
        self._wheel_attn: set = {
            r
            for r, sim in enumerate(self.sims)
            if sim._wheel.pending or sim._wheel._timers
        }
        #: replicas whose core currently holds multi-candidate requests
        #: (parked heads or injections) — exact by construction: entries
        #: are only added in `_scan_injections` (checked after every
        #: scan) and mutated inside `_resolve_phase` (checked after
        #: every call)
        self._multi_rs: set = {
            r
            for r, core in enumerate(self.cores)
            if core._multi_heads or core._inj_multi
        }

        # -- merged traffic: one (clock, replica, source) event list ------
        self._fires = [core._fire_arrival for core in self.cores]
        self._mg_clks: List[int] = []
        self._mg_reps: List[int] = []
        self._mg_srcs: List[int] = []
        self._mg_ptr = 0
        self._merge_traffic()

        self._clock = 0
        self._recording = False
        self._moved_acc = np.zeros(R, dtype=np.int64)
        #: deferred per-replica move accounting: per-clock replica ids
        #: of the movers are chunked and bincounted in batches
        self._mv_chunks: List[np.ndarray] = []
        #: replica id per active slot (``goff // K``), cached between
        #: active-set changes for the deferred move accounting
        self._offs = np.empty(0, dtype=np.int64)
        self._offs_stale = True
        #: fused body plan cache — ``dn``/``cap_dn`` mutate only inside
        #: ``_resolve_phase``, so the gathered downstream ids and
        #: capacities stay valid until the next grant or set change
        self._plan_dirty = True
        self._dng = np.empty(0, dtype=np.int64)
        self._cdg = np.empty(0, dtype=np.int64)
        #: reused boolean buffer for the fused due-request extraction
        self._due_buf = np.empty(R * W, dtype=bool)
        self._last_progress = [0] * R
        self._need_progress = cfg.max_stall_clocks is not None
        self._deadlock_interval = cfg.deadlock_interval
        #: total `_resolve_phase` invocations across replicas — the
        #: early-drain mask makes quiet replicas skip resolve entirely,
        #: so tests can assert this stays below R * clocks
        self.resolve_calls = 0
        #: offload the fused room mask when a non-numpy backend is
        #: selected through the repro.util.xp seam (experimental)
        self._device = not xp_seam.is_numpy()

    # ------------------------------------------------------------------
    def _merge_traffic(self) -> None:
        """(Re)merge every replica's unfired arrivals into one list.

        Consumes the per-core schedules (they are emptied afterwards, so
        a later horizon extension contributes only newly drawn events)
        and the unfired tail of the previous merge.  Sorting by
        ``(clock, replica, source)`` reproduces each replica's
        sequential fire order exactly.
        """
        ptr = self._mg_ptr
        parts_c = [np.asarray(self._mg_clks[ptr:], dtype=np.int64)]
        parts_r = [np.asarray(self._mg_reps[ptr:], dtype=np.int64)]
        parts_s = [np.asarray(self._mg_srcs[ptr:], dtype=np.int64)]
        for r, core in enumerate(self.cores):
            if core._gen_clks:
                c = np.asarray(core._gen_clks[core._gen_ptr :], dtype=np.int64)
                s = np.asarray(core._gen_srcs[core._gen_ptr :], dtype=np.int64)
                parts_c.append(c)
                parts_r.append(np.full(c.size, r, dtype=np.int64))
                parts_s.append(s)
                core._gen_clks = []
                core._gen_srcs = []
                core._gen_ptr = 0
        clks = np.concatenate(parts_c)
        reps = np.concatenate(parts_r)
        srcs = np.concatenate(parts_s)
        order = np.lexsort((srcs, reps, clks))
        self._mg_clks = clks[order].tolist()
        self._mg_reps = reps[order].tolist()
        self._mg_srcs = srcs[order].tolist()
        self._mg_ptr = 0
        self._mg_horizon = min(core._gen_horizon for core in self.cores)

    def _extend_merged(self, clock: int) -> None:
        """Grow every replica's schedule past *clock* and re-merge."""
        for core in self.cores:
            if clock > core._gen_horizon:
                core._extend_traffic(max(clock + 4096, core._gen_horizon * 2))
        self._merge_traffic()

    def _room_mask(self, gact: np.ndarray, dng: np.ndarray) -> np.ndarray:
        """Fused body plan: which active slots may advance this clock."""
        if not self._device:
            return self._f_flat[dng] < self._cd_flat[gact]
        f = to_device(self._f_flat)  # pragma: no cover - optional backend
        return to_host(  # pragma: no cover - optional backend
            f[to_device(dng)] < to_device(self._cd_flat)[to_device(gact)]
        )

    # ------------------------------------------------------------------
    def _step(self) -> None:
        """One fused clock across all replicas (mirrors ``step()``)."""
        clock = self._clock
        sims = self.sims
        cores = self.cores
        R = self.R
        K = self.K
        SRC0 = self.SRC0
        f_flat = self._f_flat

        # -- phase 1: fused body moves across all replicas --------------
        gact = self._gact
        goff = self._goff
        if self._gact_add or self._gact_filter:
            self._plan_dirty = True
            self._offs_stale = True
            if self._gact_add:
                gact = np.concatenate(
                    (gact, np.asarray(self._gact_add, dtype=np.int64))
                )
                goff = np.concatenate(
                    (goff, np.asarray(self._goff_add, dtype=np.int64))
                )
                self._gact_add.clear()
                self._goff_add.clear()
                self._gact = gact
                self._goff = goff
            if self._gact_filter:
                live = f_flat[gact] > 0
                gact = gact[live]
                goff = goff[live]
                self._gact = gact
                self._goff = goff
                self._gact_filter = False
        drains: Dict[int, List[int]] = {}
        freed: Dict[int, List[int]] = {}
        moved = None
        if gact.size:
            if self._plan_dirty:
                dng = self._dng = self._dn_flat[gact] + goff
                self._cdg = self._cd_flat[gact]
                self._plan_dirty = False
            else:
                dng = self._dng
            if self._device:  # pragma: no cover - optional backend
                room = self._room_mask(gact, dng)
            else:
                room = f_flat[dng] < self._cdg
            movers = gact[room]
            if movers.size:
                fm = f_flat[movers] - 1
                f_flat[movers] = fm
                f_flat[dng[room]] += 1  # targets unique per replica row
                if self._need_progress:
                    moved = np.bincount(goff[room] // K, minlength=R)
                    if self._recording:
                        self._moved_acc += moved
                elif self._recording:
                    # deferred per-replica move accounting: chunk the
                    # movers' replica ids, bincount them in batches
                    if self._offs_stale:
                        self._offs = goff // K
                        self._offs_stale = False
                    self._mv_chunks.append(self._offs[room])
                    if len(self._mv_chunks) >= 256:
                        self._flush_moved()
                # zero detection reads f *after* the incoming adds (as
                # in the sequential body), but adds only ever raise a
                # count — so the pre-add decrements are a superset gate
                # and the exact post-add mask is needed only when a
                # decrement actually reached zero
                if np.count_nonzero(fm == 0):
                    zmask = f_flat[movers] == 0
                    mo = goff[room]
                    for g, o in zip(
                        movers[zmask].tolist(), mo[zmask].tolist()
                    ):
                        k = g - o
                        r = o // K
                        if k >= SRC0:
                            lst = freed.get(r)
                            if lst is None:
                                freed[r] = [k - SRC0]
                            else:
                                lst.append(k - SRC0)
                        else:
                            lst = drains.get(r)
                            if lst is None:
                                drains[r] = [k]
                            else:
                                lst.append(k)

        # -- phase 2: per-replica injection wheels (before extraction) --
        multi_rs = self._multi_rs
        attn = self._wheel_attn
        if attn:
            rows = self._wheel_rows
            for r in tuple(attn):
                _r, timers, wheel, pending, scan, inj_multi = rows[r]
                if timers and timers[0][0] <= clock:
                    wheel.advance(clock)
                if pending:
                    scan(pending, clock)
                    if inj_multi:
                        multi_rs.add(r)
                if not pending and not timers:
                    attn.discard(r)

        # -- one fused request extraction, per-replica partition --------
        np.less_equal(self._ready_flat, clock, out=self._due_buf)
        req_by_r: Dict[int, object] = {}
        if np.count_nonzero(self._due_buf):
            idx = self._due_buf.nonzero()[0]
            if idx.size <= _SMALL_PART:
                W = self.W
                for g in idx.tolist():
                    r, h = divmod(g, W)
                    lst = req_by_r.get(r)
                    if lst is None:
                        req_by_r[r] = [h]
                    else:
                        lst.append(h)
            else:
                cuts = np.searchsorted(idx, self._req_bounds)
                prev = 0
                offs = self._req_off
                for r, cut in enumerate([*cuts.tolist(), idx.size]):
                    if cut > prev:
                        req_by_r[r] = idx[prev:cut] - offs[r]
                    prev = cut

        # -- per-replica arbitration / commits / drains ------------------
        # (early-drain mask: replicas with nothing due, nothing
        # draining and no multi-candidate fallbacks are skipped)
        work = set(req_by_r)
        if drains:
            work.update(drains)
        if freed:
            work.update(freed)
        if multi_rs:
            # a replica whose only pending work is multi-candidate
            # fallbacks resolves only if some candidate is actually
            # free and due — the exact prefilter `_arbitrate_multi`
            # applies, under which it consumes no RNG and mutates
            # nothing, so skipping the call entirely is equivalent
            multi_rows = self._multi_rows
            for r in multi_rs:
                if r in work:
                    continue
                mh_info, inj_multi, occ = multi_rows[r]
                for due, cands in mh_info.values():
                    if due <= clock and any(
                        occ[ch] == FREE for ch in cands
                    ):
                        work.add(r)
                        break
                else:
                    for entry in inj_multi.values():
                        if any(occ[ch] == FREE for ch in entry[1]):
                            work.add(r)
                            break
        if work:
            gact_add = self._gact_add
            goff_add = self._goff_add
            progress = self._last_progress if self._need_progress else None
            self.resolve_calls += len(work)
            for r in work:
                core = cores[r]
                reqs = req_by_r.get(r)
                granted = core._resolve_phase(
                    clock,
                    drains.get(r) or [],
                    freed.get(r) or [],
                    reqs if reqs is not None else _EMPTY_REQS,
                )
                aa = core._act_add
                if aa:
                    base = r * K
                    for k in aa:
                        gact_add.append(base + k)
                        goff_add.append(base)
                    aa.clear()
                if core._act_filter:
                    core._act_filter = False
                    self._gact_filter = True
                if core._multi_heads or core._inj_multi:
                    multi_rs.add(r)
                else:
                    multi_rs.discard(r)
                row = self._wheel_rows[r]
                if row[3] or row[1]:  # pending / timers touched in-call
                    attn.add(r)
                if granted and progress is not None:
                    progress[r] = clock
            # a resolve call may retarget an existing head's downstream
            # channel (``_set_head_target``), so the cached body plan is
            # stale whether or not the active set changed
            self._plan_dirty = True

        # -- watchdogs (same clocks as the sequential step) --------------
        interval = self._deadlock_interval
        if interval and clock % interval == interval - 1:
            for sim in sims:
                sim.clock = clock
                dead = sim.find_deadlocked_worms()
                if dead:
                    raise DeadlockDetected(sim._deadlock_report(dead))
        if self._need_progress:
            progress = self._last_progress
            if moved is not None:
                for r in moved.nonzero()[0].tolist():
                    progress[r] = clock
            stall = sims[0]._max_stall
            for r, sim in enumerate(sims):
                if clock - progress[r] >= stall and (
                    sim.active or any(sim.queues)
                ):
                    sim.clock = clock
                    sim._last_progress = progress[r]
                    raise LivelockSuspected(sim._stall_report(stall))

        # -- merged traffic: fire due arrivals in (replica, src) order ---
        if clock > self._mg_horizon:
            self._extend_merged(clock)
        clks = self._mg_clks
        ptr = self._mg_ptr
        if ptr < len(clks) and clks[ptr] <= clock:
            reps = self._mg_reps
            srcs = self._mg_srcs
            fires = self._fires
            while ptr < len(clks) and clks[ptr] <= clock:
                rep = reps[ptr]
                fires[rep](srcs[ptr], clock, ())
                attn.add(rep)  # the queue append woke the wheel
                ptr += 1
            self._mg_ptr = ptr

        # -- dirty guard / invariants (tests, never the hot path) --------
        if self._any_checks:
            for sim, core in self._pairs:
                if core._dirty:
                    raise RuntimeError(
                        "external worm/occupancy mutation mid-run is "
                        "unsupported in replica mode"
                    )
                if sim._check_invariants:
                    sim.clock = clock
                    core.sync()
                    for w in sim.active:
                        w.check_invariant()

        self._clock = clock + 1

    def _flush_moved(self) -> None:
        """Fold the chunked mover replica-ids into per-replica counts."""
        if self._mv_chunks:
            ids = np.concatenate(self._mv_chunks)
            self._mv_chunks.clear()
            self._moved_acc += np.bincount(ids, minlength=self.R)

    # ------------------------------------------------------------------
    def run(self) -> List[SimulationStats]:
        """Warmup + measurement for all replicas; per-replica stats."""
        cfg = self.sims[0].config
        step = self._step
        for _ in range(cfg.warmup_clocks):
            step()
        for sim in self.sims:
            sim.stats.active = True
        self._recording = True
        sample_timeline = any(
            sim.stats.timeline_interval > 0 for sim in self.sims
        )
        if sample_timeline:
            for _ in range(cfg.measure_clocks):
                step()
                for sim in self.sims:
                    stats = sim.stats
                    stats.window_clocks += 1
                    if stats.timeline_interval > 0:
                        stats.on_tick()
        else:
            for _ in range(cfg.measure_clocks):
                step()
        self._flush_moved()
        results: List[SimulationStats] = []
        for r, sim in enumerate(self.sims):
            sim.clock = self._clock
            stats = sim.stats
            if not sample_timeline:
                stats.window_clocks += cfg.measure_clocks
            stats.vec_moved_flits += int(self._moved_acc[r])
            stats.vec_clocks += cfg.measure_clocks
            backlog = sum(len(q) for q in sim.queues)
            results.append(
                stats.finalize(queue_backlog=backlog, reconfigurations=())
            )
        return results


def run_replicated(
    routing,
    config: SimulationConfig,
    seeds: Optional[Sequence[Optional[int]]] = None,
    traffic=None,
) -> List[SimulationStats]:
    """Run R seed-replicas of one scenario through the fused driver.

    *seeds* defaults to :func:`replica_seeds` of *config* (so
    ``SimulationConfig(replicas=R)`` is the usual entry point); an
    explicit sequence runs exactly those seeds, in order.  Returns one
    :class:`~repro.simulator.stats.SimulationStats` per seed — each
    identical (by ``statistical_fingerprint``) to a sequential
    ``engine="batch"`` run of that seed.

    *traffic*, when given, must be stateless across calls (the built-in
    patterns are): the single instance is shared by every replica.
    """
    if seeds is None:
        seeds = replica_seeds(config)
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one replica seed")
    base = config.with_engine("batch")
    sims = [
        WormholeSimulator(routing, base.with_seed(s), traffic=traffic)
        for s in seeds
    ]
    if len(sims) == 1:
        # nothing to fuse: run the lone replica through the plain loop
        return [sims[0].run()]
    return ReplicaBatchCore(sims).run()
