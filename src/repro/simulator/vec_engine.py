"""The vectorized (struct-of-arrays numpy) step implementation.

Selected with ``SimulationConfig(engine="vectorized")``.  One clock:

1. **Batched body phase** — the unified advance rule over
   :class:`~repro.simulator.vec_state.ArrayState` commits every
   consume/advance/feed in a handful of numpy operations, replacing the
   scalar engines' per-worm chain scans.  Because moves are identified
   by *channel id* (not chain index), the reference's ``shifted``
   index correction is unnecessary: a header grant and a body advance
   into the same channel commute.
2. **Header phase** — reuses the fast path's request machinery
   verbatim (memoized request list with dirty windows, injection event
   wheel, per-epoch decision cache) so the arbitration RNG stream is
   consumed identically: one ``rng.permutation`` iff requests exist,
   ``rng.integers`` only where the reference would draw.  When every
   request carries a single candidate (the overwhelmingly common case)
   grants are resolved vectorially — each free channel goes to the
   requester with the minimum permutation position, provably the same
   outcome as the reference's sequential claim loop; any
   multi-candidate request falls back to that sequential loop, which
   replays the reference byte for byte (including selection-policy RNG
   draws).
3. **Scalar commits** — grants, tail releases and completions touch a
   few worms per clock and stay in Python, maintaining worm identity
   state (chains, timestamps, occupancy maps) exactly as the scalar
   engines do.

Bit-identity with both scalar engines (same ``canonical_digest`` for a
fixed seed, fault schedules included) is enforced by the differential
golden suite in ``tests/test_engine_equivalence.py`` and the property
suite in ``tests/test_routing_properties.py``.

**Epoch contract.**  Between external mutations the arrays are
authoritative for flit counts and worm objects are stale.  Every fault
hook that reads or rewrites worm state is wrapped: the core first
writes array counts back onto the objects (:meth:`ArrayState.sync_worms`),
lets the hook run on coherent objects, then marks the arrays dirty so
the next clock begins with an atomic :meth:`ArrayState.rebuild` — the
same invalidate-then-rebuild shape as the decision cache's epochs, and
what keeps mid-run table swaps plus dead-channel masking bit-identical
across engines.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.simulator.vec_state import FREE, ArrayState

__all__ = ["VectorizedCore"]

#: below this many header requests the sequential claim loop wins over
#: the lexsort-based vectorized resolution (fixed numpy overhead);
#: both resolve identically, so this is purely a perf crossover
_VEC_ARB_MIN = 64

#: engine hooks that read (and may rewrite) per-worm flit state — each
#: gets a sync-objects-first / mark-dirty-after wrapper
_SYNC_MUTATING_HOOKS = (
    "_fault_kill_link",
    "_fault_kill_switch",
    "_fault_eject_stranded",
)
#: diagnostics that read per-worm flit state but mutate nothing
_SYNC_READONLY_HOOKS = ("_stall_report", "_deadlock_report")


class VectorizedCore:
    """Per-simulator vectorized step state; ``move`` is the step impl."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.state = ArrayState(
            sim.topology.num_channels, sim.topology.n, sim.config.buffer_flits
        )
        #: set by the fault-hook wrappers; triggers an atomic rebuild at
        #: the start of the next move
        self._dirty = False
        #: companions of the engine's memoized request list, rebuilt
        #: whenever the list is rebuilt and reused on clean clocks:
        #: the per-request singleton-target list plus has-multi flag,
        #: and its lazily materialized int64 array
        self._req_lists: Tuple[List[int], bool] = ([], False)
        self._req_arrays: Optional[np.ndarray] = None
        #: deferred body-phase stats batches: per-clock ``(tgts, movers)``
        #: pairs, flushed into the flit counters in one ``np.add.at``
        #: sweep (see :meth:`_flush_stats`)
        self._pend_stats: List[Tuple[np.ndarray, np.ndarray]] = []
        self._install_hooks(sim)
        # the batched body phase scatter-adds into the flit counters, so
        # the collector's plain lists become int64 arrays (the scalar
        # grant paths' single-element += works on either)
        st = sim.stats
        st.channel_flits = np.zeros(len(st.channel_flits), dtype=np.int64)
        st.consumed_flits = np.zeros(len(st.consumed_flits), dtype=np.int64)
        st.injected_flits = np.zeros(len(st.injected_flits), dtype=np.int64)
        # any reader of the counters must see the deferred batches first
        orig_finalize = st.finalize
        orig_tick = st.on_tick

        def finalize_flushed(*args, **kwargs):
            self._flush_stats()
            return orig_finalize(*args, **kwargs)

        def tick_flushed():
            # flush exactly when the tick is about to read the counters
            # — the predicate is shared with on_tick itself, so the
            # flush boundary cannot drift from the read boundary even
            # when it lands on a 512-batch or fault-sync clock
            if st.timeline_due():
                self._flush_stats()
            orig_tick()

        st.finalize = finalize_flushed
        st.on_tick = tick_flushed

    # ------------------------------------------------------------------
    # epoch contract plumbing
    # ------------------------------------------------------------------
    def _install_hooks(self, sim) -> None:
        """Shadow the engine's object-reading hooks with sync wrappers."""
        core = self

        def wrap_mutating(orig):
            def hook(*args, **kwargs):
                core.sync()
                out = orig(*args, **kwargs)
                core._dirty = True
                return out

            return hook

        def wrap_readonly(orig):
            def hook(*args, **kwargs):
                core.sync()
                return orig(*args, **kwargs)

            return hook

        for name in _SYNC_MUTATING_HOOKS:
            setattr(sim, name, wrap_mutating(getattr(sim, name)))
        for name in _SYNC_READONLY_HOOKS:
            setattr(sim, name, wrap_readonly(getattr(sim, name)))

    def sync(self) -> None:
        """Write array flit counts back onto the Worm objects."""
        self._flush_stats()
        self.state.sync_worms(self.sim)

    def _flush_stats(self) -> None:
        """Apply the deferred body-phase counter batches in one sweep.

        The per-clock scatter-adds into ``channel_flits`` /
        ``consumed_flits`` / ``injected_flits`` are pure accumulation —
        nothing reads them mid-clock — so ``move`` only records the
        ``(tgts, movers)`` pair and this flush replays every pending
        clock with ``np.add.at`` (targets repeat *across* clocks, so
        unbuffered fancy ``+=`` would drop counts here).

        Idempotent by construction: the pending list is detached in one
        step before anything is applied, so a nested flush (a timeline
        tick, fault sync and 512-batch boundary landing on the same
        clock each call this) applies every batch exactly once — the
        second caller sees an empty list and returns.
        """
        pend = self._pend_stats
        if not pend:
            return
        self._pend_stats = []
        st = self.state
        stats = self.sim.stats
        allt = np.concatenate([t for t, _ in pend])
        allm = np.concatenate([m for _, m in pend])
        np.add.at(stats.channel_flits, allt[allt < st.C], 1)
        sunk = allt[allt >= st.SINK0]
        np.add.at(stats.consumed_flits, sunk - st.SINK0, 1)
        fed = allm[allm >= st.SRC0]
        np.add.at(stats.injected_flits, fed - st.SRC0, 1)

    # ------------------------------------------------------------------
    # one clock
    # ------------------------------------------------------------------
    def move(self) -> bool:
        sim = self.sim
        st = self.state
        if self._dirty:
            st.rebuild(sim)
            self._dirty = False
        stats = sim.stats
        clock = sim.clock
        rec = stats.active
        f = st.flits
        dn = st.dn
        cap_dn = st.cap_dn
        cap_p, cap_sink = st.cap, st.cap_sink
        C, SRC0, SINK0, D = st.C, st.SRC0, st.SINK0, st.D
        occ = sim.channel_occ
        occ_vec = st.occ
        wheel = sim._wheel
        tracer = sim.tracer

        # -- phase 1: batched body moves from start-of-clock state ------
        mask = (f > 0) & (f[dn] < st.cap_dn)
        movers = mask.nonzero()[0]
        n_moves = movers.size
        #: held channels whose count hit zero this clock — the only
        #: worms that can newly drain a tail or finish
        drain_cand: List[int] = []
        #: sources whose feed emptied this clock.  The port release is
        #: deferred until after the injection-request scan: the scalar
        #: engines free it during body *commit* (post-arbitration), so
        #: the next queued worm can first request at the following clock
        freed_src: List[int] = []
        if n_moves:
            tgts = dn[movers]
            f[movers] -= 1
            f[tgts] += 1  # targets are unique (see vec_state docstring)
            if rec:
                self._pend_stats.append((tgts, movers))
                if len(self._pend_stats) >= 512:
                    self._flush_stats()
            zero = movers[f[movers] == 0]
            if zero.size:
                for k in zero.tolist():
                    if k >= SRC0:
                        freed_src.append(k - SRC0)
                    else:
                        drain_cand.append(k)
        if rec:
            stats.vec_moved_flits += int(n_moves)
            stats.vec_clocks += 1

        # -- phase 2: header requests (fast-path machinery, plus the
        # parallel singleton-target list the hybrid arbitration uses) --
        cache = sim.decision_cache
        sink_of = sim._sink
        in_net = sim._req_cache
        if in_net is None or clock <= sim._req_dirty_until:
            next_rows = cache._next_rows
            in_net = []
            req_append = in_net.append
            #: per-request singleton target channel (-1 for consume or
            #: multi-candidate requests), built alongside the list
            tlist: List[int] = []
            t_append = tlist.append
            in_multi = False
            for w in sim.active:
                req = w.hdr_req
                if req is not None:
                    req_append(req)
                    cands = req[2]
                    if cands.__class__ is int:
                        t_append(cands)
                    elif req[1] is None:
                        t_append(-1)
                    else:
                        t_append(-2)
                        in_multi = True
                    continue
                if w.consuming or not w.chain or w.head_ready_at > clock:
                    continue
                head = w.chain[0]
                dst = w.dst
                if sink_of[head] == dst:
                    req = (w, None, ())  # consumption request
                    t_append(-1)
                else:
                    row = next_rows[dst]
                    if row is None:
                        row = cache.next_row(dst)
                    cands = row[head]
                    if len(cands) == 1:
                        cands = cands[0]
                        t_append(cands)
                    else:
                        t_append(-2)
                        in_multi = True
                    req = (w, head, cands)
                w.hdr_req = req
                req_append(req)
            sim._req_cache = in_net
            self._req_lists = (tlist, in_multi)
            self._req_arrays = None
        # injection requests from the event wheel, ascending source order
        timers = wheel._timers
        if timers and timers[0][0] <= clock:
            wheel.advance(clock)
        inj_reqs: List[tuple] = []
        inj_targets: List[int] = []
        inj_multi = False
        if wheel.pending:
            first_rows = cache._first_rows
            inj_occ = sim.injection_occ
            queues = sim.queues
            for s in sorted(wheel.pending):
                q = queues[s]
                if not q:
                    wheel.sleep(s)
                    continue
                if inj_occ[s] != FREE:
                    wheel.sleep(s)
                    continue
                w = q[0]
                if w.head_ready_at > clock:
                    wheel.park_until(s, w.head_ready_at)
                    continue
                row = first_rows[w.dst]
                if row is None:
                    row = cache.first_row(w.dst)
                cands = row[s]
                if len(cands) == 1:
                    cands = cands[0]
                    inj_targets.append(cands)
                else:
                    inj_multi = True
                    inj_targets.append(-2)
                inj_reqs.append((w, -1, cands))
        header_requests = in_net + inj_reqs if inj_reqs else in_net
        # deferred port releases: applied only now that the injection
        # scan is done, matching the scalar engines' commit-time freeing
        if freed_src:
            inj_occ = sim.injection_occ
            for s in freed_src:
                inj_occ[s] = FREE
                wheel.wake(s)

        # -- arbitration (identical RNG stream to the reference) --------
        grants: List[tuple] = []
        if header_requests:
            L = len(header_requests)
            order = sim.rng.permutation(L)
            tlist, in_multi = self._req_lists
            if L < _VEC_ARB_MIN or (
                (in_multi or inj_multi) and not sim._occ_write
            ):
                # small request sets: the sequential claim loop beats
                # the fixed numpy cost of the hybrid path (same RNG
                # stream either way).  Multi-candidate requests under
                # the least-congested policy also replay sequentially:
                # its selection reads occupancy mid-arbitration, so the
                # reference's set-based claim bookkeeping must be
                # reproduced exactly.
                self._arbitrate_sequential(header_requests, order.tolist(), grants)
            else:
                in_targets = self._req_arrays
                if in_targets is None:
                    in_targets = np.fromiter(tlist, np.int64, len(tlist))
                    self._req_arrays = in_targets
                self._arbitrate_hybrid(
                    header_requests, order, in_targets, inj_targets, grants
                )

        # -- phase 3: scalar grant commits ------------------------------
        hdr_latency = sim._hdr_latency
        if grants:
            sim._req_cache = None
            self._req_arrays = None
            sim._req_dirty_until = clock + hdr_latency
        consume_occ = sim.consume_occ
        for w, origin, target in grants:
            w.hdr_req = None
            if origin == -2:  # consumption port acquired; consume header
                consume_occ[target] = w.pid
                w.consuming = True
                w.t_head_arrival = clock
                head = w.chain[0]
                f[head] -= 1
                dn[head] = SINK0 + target
                cap_dn[head] = cap_sink
                if f[head] == 0:
                    drain_cand.append(head)
                if rec:
                    stats.consumed_flits[target] += 1
                if tracer is not None:
                    tracer.record(clock, "consume", w.pid, w.src, w.dst)
            elif origin == -1:  # injection: header enters first channel
                occ[target] = w.pid
                occ_vec[target] = w.pid
                sim.injection_occ[w.src] = w.pid
                sim.queues[w.src].popleft()
                sim.active.append(w)
                # hand-queued worms (test harnesses append straight to
                # sim.queues) bypass _generate_packets' registration;
                # the drain phase resolves pids through this dict
                sim.worms[w.pid] = w
                w.t_inject = clock
                w.chain = [target]
                w.chain_flits = [1]
                fas = w.flits_at_source - 1
                w.flits_at_source = fas
                w.hops = 1
                w.head_ready_at = clock + hdr_latency
                f[target] = 1
                dn[target] = D
                cap_dn[target] = 0
                if rec:
                    stats.injected_flits[w.src] += 1
                    stats.channel_flits[target] += 1
                if tracer is not None:
                    tracer.record(clock, "inject", w.pid, w.src, w.dst, target)
                if fas:
                    f[SRC0 + w.src] = fas
                    dn[SRC0 + w.src] = target
                    cap_dn[SRC0 + w.src] = cap_p
                else:
                    sim.injection_occ[w.src] = FREE
                    wheel.wake(w.src)
            else:  # in-network hop
                occ[target] = w.pid
                occ_vec[target] = w.pid
                head = w.chain[0]
                w.chain.insert(0, target)
                f[target] = 1
                f[head] -= 1
                dn[head] = target
                dn[target] = D
                cap_dn[head] = cap_p
                cap_dn[target] = 0
                w.hops += 1
                w.head_ready_at = clock + hdr_latency
                if f[head] == 0:
                    drain_cand.append(head)
                if rec:
                    stats.channel_flits[target] += 1
                if tracer is not None:
                    tracer.record(clock, "hop", w.pid, w.src, w.dst, target)

        # -- phase 4: tail releases and completions ---------------------
        # Only a channel count hitting zero can newly satisfy the
        # release condition (flits_at_source is drained strictly before
        # a tail can empty), so drain_cand covers every eligible worm.
        finished: List = []
        if drain_cand:
            worms = sim.worms
            inj_occ = sim.injection_occ
            seen: set = set()
            for c in drain_cand:
                pid = occ[c]
                if pid == FREE or pid in seen:
                    continue
                seen.add(pid)
                w = worms[pid]
                if inj_occ[w.src] == w.pid and f[SRC0 + w.src] > 0:
                    continue  # still feeding: nothing can release yet
                chain = w.chain
                while (
                    chain
                    and f[chain[-1]] == 0
                    and not (len(chain) == 1 and not w.consuming)
                ):
                    cid = chain.pop()
                    occ[cid] = FREE
                    occ_vec[cid] = FREE
                if w.consuming and not chain:
                    w.t_done = clock
                    w.consumed = w.length
                    w.chain_flits = []
                    w.flits_at_source = 0
                    w.quiet = True  # retire: evicts any stale live entry
                    consume_occ[w.dst] = FREE
                    finished.append(w)
        if finished:
            active = sim.active
            done_ids = {w.pid for w in finished}
            if len(finished) > 1:
                # completion *emission* must follow active order (the
                # latency tuples are order-sensitive in the digest)
                finished = [w for w in active if w.pid in done_ids]
            for w in finished:
                if w.corrupted:
                    stats.on_corrupted()
                    if sim.faults is not None:
                        sim.faults.on_packet_failure(sim, w)
                else:
                    stats.on_delivered(
                        latency=w.t_done - w.t_gen,
                        header_latency=(w.t_head_arrival or clock) - w.t_gen,
                        hops=w.hops,
                    )
                if tracer is not None:
                    tracer.record(clock, "done", w.pid, w.src, w.dst)
            sim.active = [w for w in active if w.pid not in done_ids]
            for w in finished:
                sim.worms.pop(w.pid, None)

        if sim._check_invariants:
            self.sync()
        return n_moves > 0 or bool(grants)

    # ------------------------------------------------------------------
    # arbitration helpers
    # ------------------------------------------------------------------
    def _arbitrate_hybrid(
        self, reqs, order, in_targets, inj_targets, grants
    ) -> None:
        """Pre-filtered grant resolution for large request sets.

        Most requests in a congested network are *not grantable*: their
        one candidate channel is held.  Those never claim a resource
        and never draw selection RNG, so dropping them cannot change
        any outcome — numpy filters them out in bulk (``targets`` holds
        each request's singleton candidate, -1 for consume requests,
        -2 for multi-candidate ones), and a scalar claim loop in
        permutation order over the survivors (free-channel requesters,
        consume requesters, multi-candidate requesters) replays the
        reference's sequential claims exactly, selection-RNG draws
        included.  Grants are emitted in permutation order, so the
        commit's side effects (tracer event order included) match the
        reference byte for byte.  Requires a selection policy that does
        not read occupancy mid-arbitration when multi-candidate
        requests are present (the caller routes least-congested + multi
        to the sequential set-based loop instead).
        """
        sim = self.sim
        L = len(reqs)
        pos = np.empty(L, dtype=np.int64)
        pos[order] = np.arange(L)
        if inj_targets:
            targets = np.concatenate(
                (in_targets,
                 np.fromiter(inj_targets, np.int64, len(inj_targets)))
            )
        else:
            targets = in_targets
        ch_idx = (targets >= 0).nonzero()[0]
        free = self.state.occ[targets[ch_idx]] == FREE
        cand = ch_idx[free]
        other = (targets < 0).nonzero()[0]  # consume + multi requests
        if other.size:
            cand = np.concatenate((cand, other))
        if not cand.size:
            return
        # claim in permutation order: duplicates for the same channel /
        # consume port lose to the earlier claimant, as in the reference
        occ = sim.channel_occ
        consume_occ = sim.consume_occ
        grants_append = grants.append
        for i in cand[np.argsort(pos[cand])].tolist():
            w, origin, cands = reqs[i]
            if origin is None:
                dst = w.dst
                if consume_occ[dst] == FREE:
                    consume_occ[dst] = w.pid
                    grants_append((w, -2, dst))
            elif cands.__class__ is int:
                if occ[cands] == FREE:
                    occ[cands] = w.pid
                    grants_append((w, origin, cands))
            else:
                avail = [c for c in cands if occ[c] == FREE]
                if not avail:
                    continue
                pick = avail[0] if len(avail) == 1 else sim._select(avail)
                occ[pick] = w.pid
                grants_append((w, origin, pick))

    def _arbitrate_sequential(self, reqs, order, grants) -> None:
        """Reference claim loop, verbatim (multi-candidate requests).

        Identical to the fast path's arbitration including its
        occupancy-write claiming (and the set-based branch the
        least-congested policy needs) so every selection-policy RNG
        draw lands in the same place as the reference's.
        """
        sim = self.sim
        occ = sim.channel_occ
        consume_occ = sim.consume_occ
        grants_append = grants.append
        if sim._occ_write:
            for req in map(reqs.__getitem__, order):
                w, origin, cands = req
                if origin is None:
                    dst = w.dst
                    if consume_occ[dst] == FREE:
                        consume_occ[dst] = w.pid
                        grants_append((w, -2, dst))
                    continue
                if cands.__class__ is int:
                    if occ[cands] == FREE:
                        occ[cands] = w.pid
                        grants_append((w, origin, cands))
                    continue
                avail = [c for c in cands if occ[c] == FREE]
                if not avail:
                    continue
                pick = avail[0] if len(avail) == 1 else sim._select(avail)
                occ[pick] = w.pid
                grants_append((w, origin, pick))
        else:
            granted_channels: set = set()
            granted_consume: set = set()
            for req in map(reqs.__getitem__, order):
                w, origin, cands = req
                if origin is None:
                    dst = w.dst
                    if dst not in granted_consume and consume_occ[dst] == FREE:
                        granted_consume.add(dst)
                        grants_append((w, -2, dst))
                    continue
                if cands.__class__ is int:
                    cands = (cands,)
                avail = [
                    c
                    for c in cands
                    if occ[c] == FREE and c not in granted_channels
                ]
                if not avail:
                    continue
                pick = avail[0] if len(avail) == 1 else sim._select(avail)
                granted_channels.add(pick)
                grants_append((w, origin, pick))
