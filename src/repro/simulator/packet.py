"""Worm (packet) state for the wormhole engine.

A worm is represented by the ordered chain of channels it currently
holds (head first) with a flit *count* per channel — individual data
flits are interchangeable, so only the header needs identity.  The
invariant maintained by the engine every clock::

    flits_at_source + sum(chain counts) + consumed == length

``Worm`` is a plain mutable record; all behaviour lives in the engine.
"""

from __future__ import annotations

from typing import List, Optional


class Worm:
    """One packet in flight (or queued at its source)."""

    __slots__ = (
        "pid",
        "src",
        "dst",
        "length",
        "t_gen",
        "t_inject",
        "t_head_arrival",
        "t_done",
        "chain",
        "chain_flits",
        "flits_at_source",
        "consumed",
        "head_ready_at",
        "consuming",
        "hops",
        "full_length",
        "corrupted",
        "attempts",
        "logical_id",
        "quiet",
        "hdr_req",
    )

    def __init__(self, pid: int, src: int, dst: int, length: int, t_gen: int) -> None:
        self.pid = pid
        self.src = src
        self.dst = dst
        self.length = length
        self.t_gen = t_gen
        #: original payload length; ``length`` may shrink when a fault
        #: truncates the worm under the ``drain`` policy
        self.full_length = length
        #: True once a link failure cut this worm's tail off — the
        #: surviving fragment drains to the destination but the packet
        #: does not count as delivered
        self.corrupted = False
        #: source-side re-injections of this logical packet so far
        self.attempts = 0
        #: stable id across retries (the original worm's pid)
        self.logical_id = pid
        #: clock the header entered the network (left the source queue)
        self.t_inject: Optional[int] = None
        #: clock the header reached the destination's consumption port
        self.t_head_arrival: Optional[int] = None
        #: clock the last flit was consumed
        self.t_done: Optional[int] = None
        #: channels held, head (closest to destination) first
        self.chain: List[int] = []
        #: flits buffered in each held channel (parallel to ``chain``)
        self.chain_flits: List[int] = []
        self.flits_at_source = length
        self.consumed = 0
        #: earliest clock the header may move again (routing + link delays)
        self.head_ready_at = t_gen
        #: True once the worm holds its destination's consumption port
        self.consuming = False
        #: network hops taken by the header (chain acquisitions)
        self.hops = 0
        #: fast-path scheduler flag: no body move possible until the
        #: next grant (maintained by the engines' active-set step)
        self.quiet = False
        #: fast-path memo of this worm's header request while blocked;
        #: ``None`` when stale (cleared on grants and epoch changes)
        self.hdr_req = None

    # ------------------------------------------------------------------
    def total_flits_held(self) -> int:
        """Flits currently buffered in network channels."""
        return sum(self.chain_flits)

    def check_invariant(self) -> None:
        """Assert flit conservation (used by tests and the debug mode)."""
        held = self.total_flits_held()
        if self.flits_at_source + held + self.consumed != self.length:
            raise AssertionError(
                f"worm {self.pid}: {self.flits_at_source} at source + "
                f"{held} held + {self.consumed} consumed != {self.length}"
            )
        if any(f < 0 for f in self.chain_flits):
            raise AssertionError(f"worm {self.pid}: negative buffer count")

    @property
    def done(self) -> bool:
        """All flits consumed at the destination."""
        return self.consumed == self.length

    @property
    def latency(self) -> Optional[int]:
        """Generation-to-last-flit latency (the paper's message latency)."""
        return None if self.t_done is None else self.t_done - self.t_gen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Worm({self.pid}: {self.src}->{self.dst}, len={self.length}, "
            f"chain={list(zip(self.chain, self.chain_flits))}, "
            f"src_flits={self.flits_at_source}, consumed={self.consumed})"
        )
