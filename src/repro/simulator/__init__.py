"""Cycle-accurate flit-level wormhole simulator (IRFlexSim0.5 substitute).

The paper evaluates on IRFlexSim0.5, a C wormhole simulator that is no
longer distributed.  This package implements an equivalent substrate
with the paper's timing model (Section 5):

* packets are worms of ``packet_length`` flits (header + data);
* a header is routed/arbitrated in one clock and crosses the switch in
  one clock (``header_delay = 2`` between arriving at a buffer head and
  moving on), plus one clock of link delay — 3 clocks per hop unloaded;
* data flits stream at one flit per clock per channel, pipelined behind
  the header;
* wormhole switching: a worm holds every channel between its head and
  tail; a blocked header stalls the worm in place, holding its channels
  (this is what makes turn-cycle freedom matter);
* each switch has one injection port (processor -> switch) and one
  consumption port (switch -> processor), both 1 flit/clock and held
  worm-exclusively like network channels;
* adaptive routing: the header asks the routing function for all
  minimal admissible outputs given its input channel and picks randomly
  among the free ones (Section 5: "one of them is selected randomly").

The engine is a synchronous two-phase (plan on start-of-clock state,
then commit) update over per-worm channel chains with flit *counts* —
not per-flit objects — which reproduces wormhole pipelining and
blocking exactly while keeping per-clock cost ``O(occupied channels)``
(the optimization guides' "algorithmic optimization first" rule).

Deadlock detection is *exact*: every ``deadlock_interval`` clocks the
engine runs a wait-for (knot) analysis — a worm is live iff it can move
now or a candidate resource is held by a live worm — and raises
:class:`~repro.simulator.engine.DeadlockDetected` for the non-live set.
This catches a cyclic wait even while unrelated traffic still flows,
turning routing-level deadlock bugs into loud test failures (and is
itself tested by routing flows around a deliberately open turn cycle).
"""

from repro.simulator.batch_engine import BatchCore
from repro.simulator.config import (
    BIT_EXACT_ENGINES,
    ENGINES,
    RELAXED_ENGINES,
    SimulationConfig,
)
from repro.simulator.engine import (
    DeadlockDetected,
    LivelockSuspected,
    WormholeSimulator,
    simulate,
)
from repro.simulator.equivalence import (
    QUICK_MATRIX,
    EquivalenceReport,
    EquivalenceScenario,
    certify,
)
from repro.simulator.replica_batch import (
    ReplicaBatchCore,
    replica_seeds,
    run_replicated,
)
from repro.simulator.stats import SimulationStats
from repro.simulator.trace import PacketTrace, TraceRecorder
from repro.simulator.vec_engine import VectorizedCore
from repro.simulator.vec_state import ArrayState
from repro.simulator.vc_engine import (
    VcDeadlockDetected,
    VirtualChannelSimulator,
    simulate_vc,
)
from repro.simulator.traffic import (
    BitComplementTraffic,
    HotspotTraffic,
    LocalTraffic,
    TornadoTraffic,
    TrafficPattern,
    UniformTraffic,
)

__all__ = [
    "SimulationConfig",
    "ENGINES",
    "BIT_EXACT_ENGINES",
    "RELAXED_ENGINES",
    "WormholeSimulator",
    "VectorizedCore",
    "BatchCore",
    "ReplicaBatchCore",
    "run_replicated",
    "replica_seeds",
    "ArrayState",
    "EquivalenceScenario",
    "EquivalenceReport",
    "QUICK_MATRIX",
    "certify",
    "DeadlockDetected",
    "LivelockSuspected",
    "simulate",
    "SimulationStats",
    "TraceRecorder",
    "PacketTrace",
    "VirtualChannelSimulator",
    "VcDeadlockDetected",
    "simulate_vc",
    "TrafficPattern",
    "UniformTraffic",
    "HotspotTraffic",
    "BitComplementTraffic",
    "TornadoTraffic",
    "LocalTraffic",
]
