"""Virtual-channel wormhole engine.

The paper notes DOWN/UP "can be directly applied to arbitrary topology
with (or without) any virtual channel", and its related work (Silla &
Duato [8]) builds high-performance irregular routing on virtual
channels.  This engine extends the base wormhole model with ``num_vcs``
virtual channels per physical channel:

* every physical channel direction carries ``V`` independent
  flit buffers (one per VC); a worm holds a chain of *virtual*
  channels;
* **link multiplexing**: at most one flit enters, and at most one flit
  leaves, each *physical* channel per clock, shared by its VCs
  (arbitrated randomly — the whole point of VCs is that a blocked worm
  no longer monopolises the wire);
* injection and consumption stay single-ported per switch, as in the
  base engine.

Two VC allocation policies (:class:`VcPolicy`):

``replicate``
    Every VC follows the same turn-restricted routing function.  The
    VC dependency graph is the V-fold copy of the physical channel
    dependency graph, so acyclicity — hence deadlock freedom — is
    inherited; VCs only reduce head-of-line blocking.

``duato``
    Duato-style two-layer routing built by
    :func:`repro.routing.duato.build_duato_routing`: VCs ``1..V-1`` are
    *adaptive* (any minimal physical next hop, no turn restriction) and
    VC ``0`` is the *escape* layer following a verified deadlock-free
    routing (entered fresh at the current switch; once on escape a worm
    stays on escape).  Deadlock freedom is Duato's argument: a blocked
    worm always has its escape candidate, and the escape layer alone is
    acyclic and drains.
"""

from __future__ import annotations

from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.routing.base import RoutingFunction
from repro.routing.duato import DuatoRouting
from repro.simulator.config import SimulationConfig
from repro.simulator.fastpath import (
    DecisionCache,
    InjectionWheel,
    NotifyingDeque,
    ObservedSet,
)
from repro.simulator.packet import Worm
from repro.simulator.stats import SimulationStats, StatsCollector
from repro.simulator.traffic import TrafficPattern, UniformTraffic
from repro.util.rng import as_generator

FREE = -1


class VcDeadlockDetected(RuntimeError):
    """The VC engine found worms that can never progress again."""


class VirtualChannelSimulator:
    """Cycle-accurate wormhole simulation with virtual channels.

    Parameters
    ----------
    routing:
        A :class:`RoutingFunction` (``replicate`` policy) or a
        :class:`~repro.routing.duato.DuatoRouting` (``duato`` policy —
        selected automatically by type).
    config:
        Shared timing/workload parameters (same dataclass as the base
        engine).
    num_vcs:
        Virtual channels per physical channel (>= 1; ``1`` makes this
        engine behaviourally equivalent to the base engine up to
        arbitration randomness).
    """

    def __init__(
        self,
        routing,
        config: SimulationConfig,
        num_vcs: int = 2,
        traffic: Optional[TrafficPattern] = None,
    ) -> None:
        if num_vcs < 1:
            raise ValueError("num_vcs must be >= 1")
        self.duato = isinstance(routing, DuatoRouting)
        if self.duato and num_vcs < 2:
            raise ValueError("duato routing needs at least 2 virtual channels")
        self._routing = routing
        self.topology = (
            routing.escape.topology if self.duato else routing.topology
        )
        self.config = config
        self.V = num_vcs
        self.traffic = traffic if traffic is not None else UniformTraffic(self.topology.n)
        self.rng = as_generator(config.seed)

        n = self.topology.n
        n_vc = self.topology.num_channels * num_vcs
        #: occupancy per *virtual* channel (worm pid or FREE)
        self.vc_occ: List[int] = [FREE] * n_vc
        self._sink = [ch.sink for ch in self.topology.channels]
        self.injection_occ = [FREE] * n
        self.consume_occ = [FREE] * n
        #: event wheel over sources with pending injections (fast path)
        self._wheel = InjectionWheel()
        self.queues: List[Deque[Worm]] = [
            NotifyingDeque(self._wheel, s) for s in range(n)
        ]
        self.active: List[Worm] = []
        self.clock = 0
        self._next_pid = 0
        self.stats = StatsCollector(self.topology)
        self._check_invariants = False
        #: *physical* channels killed by a live fault.  Mutations
        #: invalidate the decision caches automatically.
        self.dead_channels: set = ObservedSet(self._invalidate_decisions)
        #: optional :class:`repro.faults.FaultRuntime`
        self.faults = None
        #: per-epoch routing-decision caches over *physical* channels
        #: (dead channels pre-filtered); the ``duato`` policy keeps a
        #: second cache for its escape layer
        self._escape_cache: Optional[DecisionCache] = None
        if self.duato:
            self.decision_cache = DecisionCache(routing.adaptive, self.dead_channels)
            self._escape_cache = DecisionCache(routing.escape, self.dead_channels)
        else:
            self.decision_cache = DecisionCache(routing, self.dead_channels)
        #: per-clock config constants, hoisted out of the clock loop
        self._gen_p = config.packet_probability
        self._deadlock_interval = config.deadlock_interval
        self._cap = config.buffer_flits
        self._hdr_latency = config.header_delay + config.link_delay
        self._n = n
        #: memoized in-network header-request list and the last clock
        #: of its dirty window (fast path); see the base engine
        self._req_cache: Optional[List[tuple]] = None
        self._req_dirty_until = -1
        #: engine selection: the VC engine has no vectorized body phase
        #: (its body commits are RNG-ordered under shared per-link
        #: budgets, inherently sequential), so ``"vectorized"`` and
        #: ``"batch"`` select the fast path here — documented in the
        #: config and docs
        engine = (
            config.resolved_engine
            if hasattr(config, "resolved_engine")
            else ("fast" if getattr(config, "fast_path", True) else "reference")
        )
        self.engine_name = (
            "fast" if engine in ("vectorized", "batch") else engine
        )
        self._move_impl = (
            self._move if self.engine_name == "reference" else self._move_fast
        )

    # ------------------------------------------------------------------
    # routing tables (epoch-atomic swap point)
    # ------------------------------------------------------------------
    @property
    def routing(self):
        """The installed routing tables (or :class:`DuatoRouting` pair)."""
        return self._routing

    @routing.setter
    def routing(self, routing) -> None:
        """Install new tables and atomically start a new decision epoch."""
        self._routing = routing
        self.duato = isinstance(routing, DuatoRouting)
        cache = getattr(self, "decision_cache", None)
        if cache is None:
            return
        if self.duato:
            cache.attach(routing.adaptive)
            if self._escape_cache is None:
                self._escape_cache = DecisionCache(
                    routing.escape, self.dead_channels
                )
            else:
                self._escape_cache.attach(routing.escape)
        else:
            cache.attach(routing)
        self._drop_worm_memos()

    def _invalidate_decisions(self) -> None:
        """Dead-channel set changed: drop every cached decision row."""
        cache = getattr(self, "decision_cache", None)
        if cache is not None:
            cache.invalidate()
            if self._escape_cache is not None:
                self._escape_cache.invalidate()
            self._drop_worm_memos()

    def _drop_worm_memos(self) -> None:
        """Clear every memoized header request (epoch change)."""
        for w in self.active:
            w.hdr_req = None
        self._req_cache = None
        self._req_dirty_until = self.clock + self._hdr_latency

    # -- vc id helpers ---------------------------------------------------
    def phys(self, vcid: int) -> int:
        """Physical channel of a virtual channel id."""
        return vcid // self.V

    def vcid(self, cid: int, vc: int) -> int:
        """Virtual channel id of (physical channel, vc index)."""
        return cid * self.V + vc

    def free_vcs(self, cid: int, classes: range) -> List[int]:
        """Free virtual channels of physical *cid* within *classes*."""
        if cid in self.dead_channels:
            return []
        return [
            self.vcid(cid, v)
            for v in classes
            if self.vc_occ[self.vcid(cid, v)] == FREE
        ]

    # -- candidate resources ----------------------------------------------
    def _header_candidates(self, w: Worm, head_vc: Optional[int]) -> List[int]:
        """Admissible free virtual channels for a header move.

        ``head_vc`` is None for injection.  For the ``duato`` policy the
        adaptive classes come from the minimal unrestricted next hops
        and the escape class from the escape routing (entered fresh);
        worms already on escape (vc index 0) stay on escape.
        """
        if not self.duato:
            r: RoutingFunction = self.routing
            if head_vc is None:
                phys_cands = r.first_hops[w.dst][w.src]
            else:
                node = self._sink[self.phys(head_vc)]
                phys_cands = r.next_hops[w.dst][self.phys(head_vc)]
            out: List[int] = []
            for c in phys_cands:
                out.extend(self.free_vcs(c, range(self.V)))
            return out

        d: DuatoRouting = self.routing
        node = w.src if head_vc is None else self._sink[self.phys(head_vc)]
        on_escape = head_vc is not None and head_vc % self.V == 0
        out = []
        if not on_escape:
            # adaptive classes 1..V-1 on any minimal physical next hop
            if head_vc is None:
                phys_adapt = d.adaptive.first_hops[w.dst][node]
            else:
                phys_adapt = d.adaptive.next_hops[w.dst][self.phys(head_vc)]
            for c in phys_adapt:
                out.extend(self.free_vcs(c, range(1, self.V)))
        # escape class 0, entered fresh at the current switch (or the
        # continuation of the escape path when already on it)
        if on_escape:
            esc_cands = d.escape.next_hops[w.dst][self.phys(head_vc)]
        else:
            esc_cands = d.escape.first_hops[w.dst][node]
        for c in esc_cands:
            if c in self.dead_channels:
                continue
            ev = self.vcid(c, 0)
            if self.vc_occ[ev] == FREE:
                out.append(ev)
        return out

    # -- public driver ----------------------------------------------------
    def run(self) -> SimulationStats:
        """Run warmup + measurement and return window statistics."""
        step = self.step
        for _ in range(self.config.warmup_clocks):
            step()
        stats = self.stats
        stats.active = True
        sample_timeline = stats.timeline_interval > 0
        for _ in range(self.config.measure_clocks):
            step()
            stats.window_clocks += 1
            if sample_timeline:
                stats.on_tick()
        reconfigs = self.faults.records if self.faults is not None else ()
        return self.stats.finalize(
            sum(len(q) for q in self.queues), reconfigurations=reconfigs
        )

    def enable_invariant_checks(self) -> None:
        """Check flit conservation per worm each clock (tests)."""
        self._check_invariants = True

    def attach_faults(self, runtime) -> None:
        """Install a :class:`repro.faults.FaultRuntime` on this engine.

        Only the ``replicate`` VC policy is supported: the Duato escape
        layer's two-routing structure has no remapped swap path yet.
        """
        if self.duato:
            raise ValueError(
                "fault injection supports the replicate VC policy only"
            )
        if runtime.schedule.topology != self.topology:
            raise ValueError("fault schedule built for a different topology")
        self.faults = runtime

    # -- one clock ----------------------------------------------------------
    def step(self) -> None:
        """Advance one clock."""
        if self.faults is not None:
            self.faults.on_clock(self)
        self._move_impl()
        interval = self._deadlock_interval
        if interval and self.clock % interval == interval - 1:
            dead = self.find_deadlocked_worms()
            if dead:
                raise VcDeadlockDetected(
                    f"clock {self.clock}: {len(dead)} worms can never "
                    f"progress, e.g. pids {[w.pid for w in dead[:5]]}"
                )
        self._generate()
        if self._check_invariants:
            for w in self.active:
                w.check_invariant()
        self.clock += 1

    # -- internals ----------------------------------------------------------
    def _move(self) -> None:
        """One clock of flit movement — the seed *reference* implementation.

        Kept verbatim as the behavioural oracle: the fast path
        (:meth:`_move_fast`) must replay this function's decisions —
        every RNG draw, every grant, every committed flit — byte for
        byte, which the differential golden suite enforces.
        """
        cap = self.config.buffer_flits
        V = self.V
        clock = self.clock
        stats = self.stats
        occ = self.vc_occ

        # physical-channel receive/send budgets for this clock
        recv_used: set = set()
        send_used: set = set()

        # -- header grants (consume budgets first) ----------------------
        requests: List[Tuple[Worm, Optional[int]]] = []
        for w in self.active:
            if w.consuming or not w.chain or w.head_ready_at > clock:
                continue
            head = w.chain[0]
            if self._sink[self.phys(head)] == w.dst:
                requests.append((w, -2))  # consumption
            else:
                requests.append((w, head))
        for s, q in enumerate(self.queues):
            if q and self.injection_occ[s] == FREE and q[0].head_ready_at <= clock:
                requests.append((q[0], None))

        hdr_latency = self.config.header_delay + self.config.link_delay
        granted_consume: set = set()
        shifted: set = set()
        if requests:
            order = self.rng.permutation(len(requests))
            for idx in order:
                w, origin = requests[idx]
                if origin == -2:
                    if (
                        w.dst not in granted_consume
                        and self.consume_occ[w.dst] == FREE
                    ):
                        granted_consume.add(w.dst)
                        self.consume_occ[w.dst] = w.pid
                        w.consuming = True
                        w.t_head_arrival = clock
                        w.chain_flits[0] -= 1
                        w.consumed += 1
                        # the header flit leaves its physical channel
                        send_used.add(self.phys(w.chain[0]))
                        stats.on_consume(w.dst)
                    continue
                head_vc = origin  # None for injection
                avail = [
                    vc
                    for vc in self._header_candidates(w, head_vc)
                    if self.phys(vc) not in recv_used
                ]
                if head_vc is not None and self.phys(head_vc) in send_used:
                    continue
                if not avail:
                    continue
                pick = (
                    avail[int(self.rng.integers(len(avail)))]
                    if len(avail) > 1
                    else avail[0]
                )
                recv_used.add(self.phys(pick))
                occ[pick] = w.pid
                stats.on_channel_entry(self.phys(pick))
                if head_vc is None:  # injection
                    self.injection_occ[w.src] = w.pid
                    self.queues[w.src].popleft()
                    self.active.append(w)
                    w.t_inject = clock
                    w.chain = [pick]
                    w.chain_flits = [1]
                    w.flits_at_source -= 1
                    w.hops = 1
                    stats.on_inject(w.src)
                    if w.flits_at_source == 0:
                        self.injection_occ[w.src] = FREE
                else:
                    send_used.add(self.phys(head_vc))
                    w.chain.insert(0, pick)
                    w.chain_flits.insert(0, 1)
                    w.chain_flits[1] -= 1
                    w.hops += 1
                    shifted.add(w.pid)
                w.head_ready_at = clock + hdr_latency

        # -- body moves under remaining budgets --------------------------
        plans: List[Tuple[Worm, str, int]] = []
        for w in self.active:
            cf = w.chain_flits
            off = 1 if w.pid in shifted else 0
            if w.consuming and cf and cf[0] > 0 and w.pid not in shifted:
                # grant above already consumed this clock for new consumers
                if not (w.t_head_arrival == clock):
                    plans.append((w, "consume", 0))
            # adjacent advances: use pre-shift snapshot semantics by
            # skipping the pair the header just created (index 0 post
            # shift); start-of-clock state for the rest is unchanged
            for i in range(off, len(cf) - 1):
                if cf[i + 1] > 0 and cf[i] < cap:
                    plans.append((w, "advance", i))
            if w.flits_at_source > 0 and cf and cf[-1] < cap:
                plans.append((w, "feed", len(cf) - 1))

        if plans:
            order = self.rng.permutation(len(plans))
            for idx in order:
                w, kind, i = plans[idx]
                cf = w.chain_flits
                if kind == "consume":
                    if cf[0] > 0 and self.phys(w.chain[0]) not in send_used:
                        send_used.add(self.phys(w.chain[0]))
                        cf[0] -= 1
                        w.consumed += 1
                        stats.on_consume(w.dst)
                elif kind == "advance":
                    down_p = self.phys(w.chain[i])
                    up_p = self.phys(w.chain[i + 1])
                    if (
                        down_p not in recv_used
                        and up_p not in send_used
                        and cf[i + 1] > 0
                        and cf[i] < cap
                    ):
                        recv_used.add(down_p)
                        send_used.add(up_p)
                        cf[i + 1] -= 1
                        cf[i] += 1
                        stats.on_channel_entry(down_p)
                else:  # feed
                    j = len(cf) - 1
                    tail_p = self.phys(w.chain[j])
                    if tail_p not in recv_used and cf[j] < cap:
                        recv_used.add(tail_p)
                        w.flits_at_source -= 1
                        cf[j] += 1
                        stats.on_inject(w.src)
                        stats.on_channel_entry(tail_p)
                        if w.flits_at_source == 0:
                            self.injection_occ[w.src] = FREE

        # -- releases and completions ------------------------------------
        finished: List[Worm] = []
        for w in self.active:
            while (
                w.chain
                and w.flits_at_source == 0
                and w.chain_flits[-1] == 0
                and not (len(w.chain) == 1 and not w.consuming)
            ):
                vc = w.chain.pop()
                w.chain_flits.pop()
                occ[vc] = FREE
            if w.consuming and w.consumed == w.length:
                w.t_done = clock
                self.consume_occ[w.dst] = FREE
                finished.append(w)
                if w.corrupted:
                    stats.on_corrupted()
                    if self.faults is not None:
                        self.faults.on_packet_failure(self, w)
                else:
                    stats.on_delivered(
                        latency=w.t_done - w.t_gen,
                        header_latency=(w.t_head_arrival or clock) - w.t_gen,
                        hops=w.hops,
                    )
        if finished:
            done = {w.pid for w in finished}
            self.active = [w for w in self.active if w.pid not in done]

    def _move_fast(self) -> None:
        """One clock of flit movement — the fast-path implementation.

        Byte-identical to :meth:`_move` for any fixed seed (same
        request and plan lists, same grants, same RNG draws in the same
        order), organised around the same active-set machinery as the
        base engine's fast path:

        * the in-network header-request list is rebuilt (in active
          order — the arbitration RNG permutes its indices) only inside
          the dirty window opened by grants, fault mutations and epoch
          swaps, with each blocked worm's request memoized on the worm;
        * requests bake the *physical* candidate rows from the
          per-epoch decision caches (adaptive + escape under ``duato``);
          only the per-clock free-VC filtering stays in the grant loop;
        * idle sources live on the injection event wheel;
        * body plans are built over the non-quiet worms only.  Plan
          *order* must match the reference exactly (commits contend for
          the shared physical-link budgets), so the scan keeps active
          order and merely skips parked worms — a quiet worm contributes
          zero plans by construction, leaving the list identical;
        * releases/completions visit only worms that could have moved
          this clock (the non-quiet ones), preserving active order so
          the delivery sample sequences stay byte-identical.
        """
        cap = self._cap
        V = self.V
        clock = self.clock
        stats = self.stats
        occ = self.vc_occ
        sink = self._sink
        active = self.active
        rec = stats.active
        ch_flits = stats.channel_flits
        consumed_flits = stats.consumed_flits
        injected_flits = stats.injected_flits
        duato = self.duato
        rng = self.rng

        # physical-channel receive/send budgets for this clock
        recv_used: set = set()
        send_used: set = set()

        # -- header requests on start-of-clock state --------------------
        cache = self.decision_cache
        esc_cache = self._escape_cache
        in_net = self._req_cache
        if in_net is None or clock <= self._req_dirty_until:
            next_rows = cache._next_rows
            in_net = []
            req_append = in_net.append
            for w in active:
                req = w.hdr_req
                if req is not None:
                    req_append(req)
                    continue
                if w.consuming or not w.chain or w.head_ready_at > clock:
                    continue
                head = w.chain[0]
                p_head = head // V
                dst = w.dst
                if sink[p_head] == dst:
                    req = (w, -2, p_head)  # consumption request
                elif not duato:
                    row = next_rows[dst]
                    if row is None:
                        row = cache.next_row(dst)
                    req = (w, head, row[p_head])
                elif head % V == 0:
                    # on the escape layer: stay on escape
                    erow = esc_cache._next_rows[dst]
                    if erow is None:
                        erow = esc_cache.next_row(dst)
                    req = (w, head, ((), erow[p_head]))
                else:
                    arow = next_rows[dst]
                    if arow is None:
                        arow = cache.next_row(dst)
                    erow = esc_cache._first_rows[dst]
                    if erow is None:
                        erow = esc_cache.first_row(dst)
                    req = (w, head, (arow[p_head], erow[sink[p_head]]))
                w.hdr_req = req
                req_append(req)
            self._req_cache = in_net
        # injection requests from the event wheel, in ascending source
        # order (matching the reference's full enumerate scan)
        wheel = self._wheel
        timers = wheel._timers
        if timers and timers[0][0] <= clock:
            wheel.advance(clock)
        inj_reqs: List[tuple] = []
        if wheel.pending:
            first_rows = cache._first_rows
            inj_occ = self.injection_occ
            queues = self.queues
            for s in sorted(wheel.pending):
                q = queues[s]
                if not q:
                    wheel.sleep(s)
                    continue
                if inj_occ[s] != FREE:
                    # no injection credit: woken when the port frees
                    wheel.sleep(s)
                    continue
                w = q[0]
                if w.head_ready_at > clock:
                    wheel.park_until(s, w.head_ready_at)
                    continue
                dst = w.dst
                if not duato:
                    row = first_rows[dst]
                    if row is None:
                        row = cache.first_row(dst)
                    inj_reqs.append((w, -1, row[s]))
                else:
                    arow = first_rows[dst]
                    if arow is None:
                        arow = cache.first_row(dst)
                    erow = esc_cache._first_rows[dst]
                    if erow is None:
                        erow = esc_cache.first_row(dst)
                    inj_reqs.append((w, -1, (arow[s], erow[s])))
        requests = in_net + inj_reqs if inj_reqs else in_net

        # -- header grants, committed inline under the link budgets -----
        hdr_latency = self._hdr_latency
        consume_occ = self.consume_occ
        shifted: set = set()
        any_grant = False
        if requests:
            order = rng.permutation(len(requests)).tolist()
            for req in map(requests.__getitem__, order):
                w, origin, cands = req
                if origin == -2:  # consumption
                    dst = w.dst
                    if consume_occ[dst] == FREE:
                        consume_occ[dst] = w.pid
                        any_grant = True
                        w.quiet = False
                        w.hdr_req = None
                        w.consuming = True
                        w.t_head_arrival = clock
                        w.chain_flits[0] -= 1
                        w.consumed += 1
                        # the header flit leaves its physical channel
                        send_used.add(cands)
                        if rec:
                            consumed_flits[dst] += 1
                    continue
                if origin >= 0:
                    p_head = origin // V
                    if p_head in send_used:
                        continue
                # admissible free VCs in reference order (dead physical
                # channels are pre-filtered by the cached rows)
                avail: List[int] = []
                if not duato:
                    for c in cands:
                        if c in recv_used:
                            continue
                        base = c * V
                        for vci in range(base, base + V):
                            if occ[vci] == FREE:
                                avail.append(vci)
                else:
                    adapt, esc = cands
                    for c in adapt:
                        if c in recv_used:
                            continue
                        base = c * V
                        for vci in range(base + 1, base + V):
                            if occ[vci] == FREE:
                                avail.append(vci)
                    for c in esc:
                        if c in recv_used:
                            continue
                        ev = c * V
                        if occ[ev] == FREE:
                            avail.append(ev)
                if not avail:
                    continue
                pick = (
                    avail[int(rng.integers(len(avail)))]
                    if len(avail) > 1
                    else avail[0]
                )
                any_grant = True
                p_pick = pick // V
                recv_used.add(p_pick)
                occ[pick] = w.pid
                if rec:
                    ch_flits[p_pick] += 1
                if origin == -1:  # injection
                    self.injection_occ[w.src] = w.pid
                    self.queues[w.src].popleft()
                    active.append(w)
                    w.t_inject = clock
                    w.chain = [pick]
                    w.chain_flits = [1]
                    w.flits_at_source -= 1
                    w.hops = 1
                    if rec:
                        injected_flits[w.src] += 1
                    if w.flits_at_source == 0:
                        self.injection_occ[w.src] = FREE
                        wheel.wake(w.src)
                else:  # in-network hop
                    w.quiet = False
                    w.hdr_req = None
                    send_used.add(p_head)
                    w.chain.insert(0, pick)
                    w.chain_flits.insert(0, 1)
                    w.chain_flits[1] -= 1
                    w.hops += 1
                    shifted.add(w.pid)
                w.head_ready_at = clock + hdr_latency
        if any_grant:
            # granted headers leave (or re-time) the request set now
            # and re-enter it after their routing delay
            self._req_cache = None
            self._req_dirty_until = clock + hdr_latency

        # -- body plans over the non-quiet worms ------------------------
        # kinds: 0 = consume, 1 = advance, 2 = feed.  Quiet worms have
        # no possible move until their next grant, so skipping them
        # leaves the plan list (and hence the permutation and every
        # budget-contended commit) identical to the reference's.
        plans: List[tuple] = []
        plans_append = plans.append
        visited = 0
        for w in active:
            if w.quiet:
                continue
            visited += 1
            cf = w.chain_flits
            pid = w.pid
            has_plans = False
            if pid in shifted:
                off = 1
            else:
                off = 0
                if w.consuming and cf and cf[0] > 0 and w.t_head_arrival != clock:
                    plans_append((w, 0, 0))
                    has_plans = True
            for i in range(off, len(cf) - 1):
                if cf[i + 1] > 0 and cf[i] < cap:
                    plans_append((w, 1, i))
                    has_plans = True
            if w.flits_at_source > 0 and cf and cf[-1] < cap:
                plans_append((w, 2, len(cf) - 1))
                has_plans = True
            if (
                not has_plans
                and pid not in shifted
                and w.t_head_arrival != clock
                and w.t_inject != clock
            ):
                # nothing can move until this worm's next grant
                w.quiet = True
        if rec:
            stats.on_sched(visited, len(active))

        # -- commit body moves under the remaining budgets --------------
        if plans:
            order = rng.permutation(len(plans)).tolist()
            for plan in map(plans.__getitem__, order):
                w, kind, i = plan
                cf = w.chain_flits
                if kind == 0:  # consume
                    if cf[0] > 0:
                        hp = w.chain[0] // V
                        if hp not in send_used:
                            send_used.add(hp)
                            cf[0] -= 1
                            w.consumed += 1
                            if rec:
                                consumed_flits[w.dst] += 1
                elif kind == 1:  # advance
                    down_p = w.chain[i] // V
                    up_p = w.chain[i + 1] // V
                    if (
                        down_p not in recv_used
                        and up_p not in send_used
                        and cf[i + 1] > 0
                        and cf[i] < cap
                    ):
                        recv_used.add(down_p)
                        send_used.add(up_p)
                        cf[i + 1] -= 1
                        cf[i] += 1
                        if rec:
                            ch_flits[down_p] += 1
                else:  # feed
                    j = len(cf) - 1
                    tail_p = w.chain[j] // V
                    if tail_p not in recv_used and cf[j] < cap:
                        recv_used.add(tail_p)
                        w.flits_at_source -= 1
                        cf[j] += 1
                        if rec:
                            injected_flits[w.src] += 1
                            ch_flits[tail_p] += 1
                        if w.flits_at_source == 0:
                            self.injection_occ[w.src] = FREE
                            wheel.wake(w.src)

        # -- releases and completions (touched worms only) --------------
        # only non-quiet worms can have changed state this clock, and
        # iterating the active list keeps the delivery emission order
        # identical to the reference's
        finished: List[Worm] = []
        for w in active:
            if w.quiet:
                continue
            while (
                w.chain
                and w.flits_at_source == 0
                and w.chain_flits[-1] == 0
                and not (len(w.chain) == 1 and not w.consuming)
            ):
                vc = w.chain.pop()
                w.chain_flits.pop()
                occ[vc] = FREE
            if w.consuming and w.consumed == w.length:
                w.t_done = clock
                consume_occ[w.dst] = FREE
                finished.append(w)
                if w.corrupted:
                    stats.on_corrupted()
                    if self.faults is not None:
                        self.faults.on_packet_failure(self, w)
                else:
                    stats.on_delivered(
                        latency=w.t_done - w.t_gen,
                        header_latency=(w.t_head_arrival or clock) - w.t_gen,
                        hops=w.hops,
                    )
        if finished:
            done = {w.pid for w in finished}
            self.active = [w for w in self.active if w.pid not in done]

    def _generate(self) -> None:
        cfg = self.config
        p = self._gen_p
        if p <= 0.0:
            return
        hits = np.nonzero(self.rng.random(self._n) < p)[0]
        if hits.size == 0:
            return
        dead_switches = (
            self.faults.dead_switches if self.faults is not None else ()
        )
        for s in hits.tolist():
            if s in dead_switches:
                continue
            if cfg.max_queue is not None and len(self.queues[s]) >= cfg.max_queue:
                self.stats.on_generate(dropped=True)
                continue
            dst = self.traffic.destination(s, self.rng)
            if dst in dead_switches:
                self.stats.on_generate()
                self.stats.on_lost()
                continue
            length = cfg.sample_length(self.rng)
            w = Worm(self._next_pid, s, dst, length, self.clock)
            self._next_pid += 1
            self.queues[s].append(w)
            self.stats.on_generate()

    # -- fault hooks (driven by repro.faults.FaultRuntime) -----------------
    def _fault_kill_link(self, link, policy: str) -> List[Worm]:
        """Kill both physical channels of *link* (see base engine).

        Chains here hold *virtual* channel ids, so crossing worms are
        found through :meth:`phys`; the drop/drain semantics mirror
        :meth:`WormholeSimulator._fault_kill_link`.
        """
        u, v = link
        phys_cids = (
            self.topology.channel_id(u, v),
            self.topology.channel_id(v, u),
        )
        self.dead_channels.update(phys_cids)
        removed: List[Worm] = []
        for w in list(self.active):
            k = next(
                (i for i, c in enumerate(w.chain) if self.phys(c) in phys_cids),
                None,
            )
            if k is None:
                continue
            if policy == "drain":
                kept = w.chain_flits[: k + 1]
                if sum(kept) > 0 or w.consuming:
                    for c in w.chain[k + 1 :]:
                        self.vc_occ[c] = FREE
                    if self.injection_occ[w.src] == w.pid:
                        self.injection_occ[w.src] = FREE
                        self._wheel.wake(w.src)
                    w.chain = w.chain[: k + 1]
                    w.chain_flits = kept
                    w.flits_at_source = 0
                    w.length = w.consumed + sum(kept)
                    w.corrupted = True
                    # truncation rewrote the buffer state: rescan, and
                    # the memoized header request may predate the cut
                    w.quiet = False
                    w.hdr_req = None
                    self._req_cache = None
                    self._req_dirty_until = self.clock + self._hdr_latency
                    continue
            self._drop_worm(w)
            removed.append(w)
        return removed

    def _fault_restore_link(self, link) -> None:
        """Revive both physical channels of *link*."""
        u, v = link
        self.dead_channels.discard(self.topology.channel_id(u, v))
        self.dead_channels.discard(self.topology.channel_id(v, u))

    def _fault_kill_switch(self, v: int, policy: str) -> List[Worm]:
        """Kill switch *v* and every packet that depends on it."""
        removed: List[Worm] = []
        for nb in self.topology.neighbors(v):
            link = (v, nb) if v < nb else (nb, v)
            if self.topology.channel_id(link[0], link[1]) in self.dead_channels:
                continue
            removed.extend(self._fault_kill_link(link, policy))
        removed.extend(self.queues[v])
        self.queues[v].clear()
        for w in list(self.active):
            if w.dst == v or (w.src == v and w.flits_at_source > 0):
                self._drop_worm(w)
                removed.append(w)
        return removed

    def _fault_swap_routing(self, routing: RoutingFunction) -> None:
        """Install reconfigured (full-topology-remapped) routing tables."""
        if routing.topology != self.topology:
            raise ValueError("swapped routing must be remapped to the full topology")
        self.routing = routing

    def _fault_eject_stranded(self):
        """Eject worms/queued packets the new tables cannot carry.

        Same epoch-conformance rule as the base engine, applied to the
        physical projection of the held VC chain.
        """
        ejected: List[Worm] = []
        for w in list(self.active):
            if w.consuming or not w.chain:
                continue
            if not self._chain_conforms(w):
                self._drop_worm(w)
                ejected.append(w)
        cancelled: List[Worm] = []
        for s, q in enumerate(self.queues):
            if not q:
                continue
            stranded = [w for w in q if not self.routing.first_hops[w.dst][s]]
            if stranded:
                kept = [w for w in q if self.routing.first_hops[w.dst][s]]
                q.clear()
                q.extend(kept)
                cancelled.extend(stranded)
        return ejected, cancelled

    def _chain_conforms(self, w: Worm) -> bool:
        nh = self.routing.next_hops[w.dst]
        for i in range(len(w.chain) - 1, 0, -1):
            if self.phys(w.chain[i - 1]) not in nh[self.phys(w.chain[i])]:
                return False
        head = self.phys(w.chain[0])
        if self._sink[head] == w.dst:
            return True
        return bool(nh[head])

    def _drop_worm(self, w: Worm) -> None:
        """Remove *w* from the network, freeing every held VC."""
        for c in w.chain:
            self.vc_occ[c] = FREE
        if w.consuming:
            self.consume_occ[w.dst] = FREE
        if self.injection_occ[w.src] == w.pid:
            self.injection_occ[w.src] = FREE
            self._wheel.wake(w.src)
        w.chain = []
        w.chain_flits = []
        self.active.remove(w)
        w.quiet = True  # retire: never rescanned
        w.hdr_req = None
        self._req_cache = None
        self._req_dirty_until = self.clock + self._hdr_latency

    def _fault_requeue(
        self, src: int, dst: int, length: int, logical_id: int,
        attempts: int, t_gen: int,
    ) -> Worm:
        """Re-enqueue a retried packet at its source."""
        w = Worm(self._next_pid, src, dst, length, t_gen)
        self._next_pid += 1
        w.logical_id = logical_id
        w.attempts = attempts
        w.head_ready_at = self.clock
        self.queues[src].append(w)
        return w

    def find_deadlocked_worms(self) -> List[Worm]:
        """Wait-for fixpoint over virtual-channel resources.

        Same greatest-fixpoint rule as the base engine, with candidate
        resources taken from the VC policy (including the escape fall
        back — under ``duato`` a worm with a free or live escape
        candidate is always live).
        """
        injected = [w for w in self.active if w.chain]
        live: Dict[int, bool] = {}
        for w in injected:
            if w.consuming or w.head_ready_at > self.clock:
                live[w.pid] = True
        changed = True
        while changed:
            changed = False
            for w in injected:
                if live.get(w.pid):
                    continue
                head = w.chain[0]
                node = self._sink[self.phys(head)]
                if node == w.dst:
                    holder = self.consume_occ[node]
                    ok = holder == FREE or live.get(holder, False)
                else:
                    ok = False
                    # a candidate vc is usable if free, or held by a live worm
                    for vc in self._all_candidate_vcs(w, head):
                        holder = self.vc_occ[vc]
                        if holder == FREE or live.get(holder, False):
                            ok = True
                            break
                if ok:
                    live[w.pid] = True
                    changed = True
        return [w for w in injected if not live.get(w.pid)]

    def _all_candidate_vcs(self, w: Worm, head_vc: int) -> List[int]:
        """All candidate VCs (free or not) for the wait-for analysis."""
        if not self.duato:
            r: RoutingFunction = self.routing
            out = []
            for c in r.next_hops[w.dst][self.phys(head_vc)]:
                out.extend(self.vcid(c, v) for v in range(self.V))
            return out
        d: DuatoRouting = self.routing
        node = self._sink[self.phys(head_vc)]
        out = []
        if head_vc % self.V != 0:
            for c in d.adaptive.next_hops[w.dst][self.phys(head_vc)]:
                out.extend(self.vcid(c, v) for v in range(1, self.V))
            for c in d.escape.first_hops[w.dst][node]:
                out.append(self.vcid(c, 0))
        else:
            for c in d.escape.next_hops[w.dst][self.phys(head_vc)]:
                out.append(self.vcid(c, 0))
        return out


def simulate_vc(
    routing,
    config: SimulationConfig,
    num_vcs: int = 2,
    traffic: Optional[TrafficPattern] = None,
) -> SimulationStats:
    """One-shot VC simulation (mirrors :func:`repro.simulator.simulate`)."""
    return VirtualChannelSimulator(routing, config, num_vcs, traffic).run()
