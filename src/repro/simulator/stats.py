"""Simulation statistics collection and summary metrics.

The engine feeds a :class:`StatsCollector` during the measurement
window; :meth:`StatsCollector.finalize` produces an immutable
:class:`SimulationStats` carrying everything the paper's evaluation
needs: per-channel flit counts (for node utilization, traffic load, hot
spots, leaves utilization via :mod:`repro.metrics`), latency samples,
accepted/offered traffic, and queue diagnostics.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.topology.graph import Topology

#: Quantile method for every latency percentile this repo reports.
#: Latencies are integer clock counts, so the classical discrete
#: quantile (Hyndman-Fan type 1) is pinned explicitly: the default
#: linear interpolation invents fractional "latencies" no packet ever
#: achieved, and different callers silently disagreed on the method.
PERCENTILE_METHOD = "inverted_cdf"


def discrete_percentile(samples, q: float) -> float:
    """The *q*-th percentile of *samples* as an achievable sample value.

    ``nan`` sentinel for an empty sample, mirroring the latency means.
    Every percentile consumer (stats summaries, degradation metrics)
    must go through this helper so they agree on the method.
    """
    arr = np.asarray(samples)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q, method=PERCENTILE_METHOD))


class StatsCollector:
    """Mutable accumulator the engine writes into.

    Collection is gated by :attr:`active`, which the engine switches on
    at the end of the warmup; all counters cover the measurement window
    only.

    The per-flit counters are plain Python lists, not numpy arrays: the
    engines increment single elements millions of times per run, where
    list indexing is several times faster than ndarray item assignment
    (the same reasoning as the engine's channel-occupancy list).  The
    fast-path engines bind these lists directly and increment them
    inline; :meth:`finalize` converts to int64 arrays, so
    :class:`SimulationStats` consumers see the exact same types as
    before.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self.active = False
        self.window_clocks = 0
        #: flits entering each inter-switch channel during the window
        self.channel_flits: List[int] = [0] * topology.num_channels
        #: flits consumed per destination switch
        self.consumed_flits: List[int] = [0] * topology.n
        #: flits injected per source switch
        self.injected_flits: List[int] = [0] * topology.n
        self.generated_packets = 0
        self.dropped_packets = 0
        self.delivered_packets = 0
        #: packets removed from the network by a fault (drop/eject/
        #: truncation) — each may later be retried from the source
        self.fault_drops = 0
        #: source-side re-injections of fault-dropped packets
        self.retries = 0
        #: packets abandoned for good (retry budget exhausted, or
        #: unroutable because an endpoint switch died)
        self.lost_packets = 0
        #: truncated worm fragments that finished draining (``drain``
        #: fault policy; the packet itself is not delivered)
        self.corrupted_deliveries = 0
        self.latencies: List[int] = []
        self.header_latencies: List[int] = []
        self.hop_counts: List[int] = []
        #: snapshot cadence in clocks for the throughput time series
        #: (0 = disabled); set before the measurement window starts
        self.timeline_interval: int = 0
        self._timeline: List[Tuple[int, int]] = []  # (window clock, consumed)
        #: active-set scheduler telemetry (fast-path engines only):
        #: worms whose body state was actually scanned vs. worms active,
        #: summed over measured clocks
        self.sched_visited_worms = 0
        self.sched_active_worms = 0
        self.sched_clocks = 0
        #: vectorized-engine telemetry: flits moved by the batched body
        #: phase and clocks it ran, summed over measured clocks
        self.vec_moved_flits = 0
        self.vec_clocks = 0

    # hooks called by the engine ---------------------------------------
    def on_channel_entry(self, cid: int) -> None:
        if self.active:
            self.channel_flits[cid] += 1

    def on_consume(self, node: int, flits: int = 1) -> None:
        if self.active:
            self.consumed_flits[node] += flits

    def on_inject(self, node: int, flits: int = 1) -> None:
        if self.active:
            self.injected_flits[node] += flits

    def on_generate(self, dropped: bool = False) -> None:
        if self.active:
            self.generated_packets += 1
            if dropped:
                self.dropped_packets += 1

    def on_delivered(self, latency: int, header_latency: int, hops: int) -> None:
        if self.active:
            self.delivered_packets += 1
            self.latencies.append(latency)
            self.header_latencies.append(header_latency)
            self.hop_counts.append(hops)

    def on_fault_drop(self) -> None:
        if self.active:
            self.fault_drops += 1

    def on_retry(self) -> None:
        if self.active:
            self.retries += 1

    def on_lost(self) -> None:
        if self.active:
            self.lost_packets += 1

    def on_corrupted(self) -> None:
        if self.active:
            self.corrupted_deliveries += 1

    def on_sched(self, visited: int, active_worms: int) -> None:
        """Record one clock of active-set scheduler occupancy.

        *visited* is the number of worms whose body state the scheduler
        actually scanned this clock; *active_worms* is the total active.
        The ratio over the window is the scheduler's occupancy — how
        much per-clock scanning the quiescence tracking saved.
        """
        if self.active:
            self.sched_visited_worms += visited
            self.sched_active_worms += active_worms
            self.sched_clocks += 1

    def timeline_due(self) -> bool:
        """True when :meth:`on_tick` will record a snapshot right now.

        Exposed so engines that defer counter batches (the array cores)
        can flush exactly when a tick is about to *read* the counters —
        sharing this predicate keeps the flush boundary and the read
        boundary from ever drifting apart.
        """
        return bool(
            self.timeline_interval
            and self.active
            and self.window_clocks % self.timeline_interval == 0
        )

    def on_tick(self) -> None:
        """Record a timeline snapshot if the cadence is due.

        Called once per *measured* clock (after ``window_clocks`` was
        incremented); cheap no-op when ``timeline_interval`` is 0.
        """
        if self.timeline_due():
            self._timeline.append(
                (self.window_clocks, int(sum(self.consumed_flits)))
            )

    def finalize(
        self, queue_backlog: int, reconfigurations: Tuple = ()
    ) -> "SimulationStats":
        """Freeze the window counters into a :class:`SimulationStats`.

        The counter arrays are *copied*, never aliased: the array
        engines rebind ``channel_flits``/``consumed_flits``/
        ``injected_flits`` to live int64 ndarrays, and ``np.asarray``
        on those is a no-copy view — a frozen snapshot would then keep
        mutating (and change its ``canonical_digest``) as later clocks
        flush their deferred counter batches into the same storage.
        """
        if self.window_clocks <= 0:
            raise ValueError("no measurement window was recorded")
        return SimulationStats(
            topology=self.topology,
            clocks=self.window_clocks,
            channel_flits=np.array(self.channel_flits, dtype=np.int64),
            consumed_flits=np.array(self.consumed_flits, dtype=np.int64),
            injected_flits=np.array(self.injected_flits, dtype=np.int64),
            generated_packets=self.generated_packets,
            dropped_packets=self.dropped_packets,
            delivered_packets=self.delivered_packets,
            latencies=tuple(self.latencies),
            header_latencies=tuple(self.header_latencies),
            hop_counts=tuple(self.hop_counts),
            queue_backlog=queue_backlog,
            timeline=tuple(self._timeline),
            fault_drops=self.fault_drops,
            retries=self.retries,
            lost_packets=self.lost_packets,
            corrupted_deliveries=self.corrupted_deliveries,
            reconfigurations=tuple(reconfigurations),
            sched_visited_worms=self.sched_visited_worms,
            sched_active_worms=self.sched_active_worms,
            sched_clocks=self.sched_clocks,
            vec_moved_flits=int(self.vec_moved_flits),
            vec_clocks=self.vec_clocks,
        )


@dataclass(frozen=True)
class SimulationStats:
    """Immutable results of one measurement window.

    ``channel_flits[cid]`` counts flits that *entered* inter-switch
    channel ``cid`` during the window; channel utilization is that count
    divided by the window length — "the average number of flits across
    the node through the output channel during one clock" (Section 5).
    """

    topology: Topology
    clocks: int
    channel_flits: np.ndarray
    consumed_flits: np.ndarray
    injected_flits: np.ndarray
    generated_packets: int
    dropped_packets: int
    delivered_packets: int
    latencies: Tuple[int, ...]
    header_latencies: Tuple[int, ...]
    hop_counts: Tuple[int, ...]
    queue_backlog: int
    #: (window clock, cumulative consumed flits) snapshots; empty when
    #: the collector's ``timeline_interval`` was 0
    timeline: Tuple[Tuple[int, int], ...] = ()
    #: packets a fault removed from the network during the window
    fault_drops: int = 0
    #: source-side re-injections of fault-dropped packets
    retries: int = 0
    #: packets abandoned for good (budget exhausted / endpoint dead)
    lost_packets: int = 0
    #: truncated fragments that finished draining (``drain`` policy)
    corrupted_deliveries: int = 0
    #: :class:`repro.faults.ReconfigurationRecord` entries, one per
    #: online routing-table swap performed during the run
    reconfigurations: Tuple = ()
    #: active-set scheduler telemetry (fast-path engines; zero on the
    #: reference path).  Engine bookkeeping, NOT simulated physics —
    #: deliberately excluded from :meth:`canonical_digest`.
    sched_visited_worms: int = 0
    sched_active_worms: int = 0
    sched_clocks: int = 0
    #: vectorized-engine telemetry (zero on the scalar paths): flits
    #: moved by the batched body phase and measured clocks it ran.
    #: Engine bookkeeping, NOT simulated physics — deliberately
    #: excluded from :meth:`canonical_digest`.
    vec_moved_flits: int = 0
    vec_clocks: int = 0

    # -- headline numbers ----------------------------------------------
    @property
    def accepted_traffic(self) -> float:
        """Delivered load in flits/clock/node (the paper's throughput)."""
        return float(self.consumed_flits.sum()) / (self.clocks * self.topology.n)

    @property
    def offered_traffic(self) -> float:
        """Injected load in flits/clock/node (post-queue, pre-delivery)."""
        return float(self.injected_flits.sum()) / (self.clocks * self.topology.n)

    @property
    def average_latency(self) -> float:
        """Mean message latency (generation to last flit consumed).

        ``nan`` sentinel when no packet was delivered during the window
        — reachable under aggressive fault schedules (every generated
        packet dropped or lost) — so campaign code records the sentinel
        instead of raising mid-run.
        """
        if self.delivered_packets <= 0 or not self.latencies:
            return float("nan")
        return float(np.mean(self.latencies))

    @property
    def p99_latency(self) -> float:
        """99th-percentile message latency (``nan`` when none delivered).

        A discrete quantile (:data:`PERCENTILE_METHOD`): always one of
        the achieved integer latencies, never an interpolated fraction.
        """
        if self.delivered_packets <= 0 or not self.latencies:
            return float("nan")
        return discrete_percentile(self.latencies, 99)

    @property
    def average_hops(self) -> float:
        """Mean header hop count (``nan`` when none delivered)."""
        if not self.hop_counts:
            return float("nan")
        return float(np.mean(self.hop_counts))

    @property
    def delivered_fraction(self) -> float:
        """Fraction of *resolved* packets that were fully delivered.

        ``delivered / (delivered + lost)`` — a packet counts against
        this only once it is abandoned for good (retry budget
        exhausted, or an endpoint switch died); packets still queued,
        in flight or awaiting a retry at the end of the window are
        unresolved and excluded, like the queue backlog.  1.0 for any
        fault-free run.
        """
        resolved = self.delivered_packets + self.lost_packets
        return self.delivered_packets / resolved if resolved else 1.0

    @property
    def active_set_occupancy(self) -> float:
        """Fraction of active worms the fast-path scheduler scanned.

        ``visited / active`` over the measurement window — 1.0 means the
        quiescence tracking saved nothing, small values mean most worms
        sat blocked (or streaming steadily elsewhere) while the
        scheduler skipped them.  ``nan`` when no telemetry was recorded
        (reference path, or an idle window).
        """
        if self.sched_active_worms <= 0:
            return float("nan")
        return self.sched_visited_worms / self.sched_active_worms

    @property
    def vec_flits_per_clock(self) -> float:
        """Mean flits the vectorized body phase moved per clock.

        Batch-size telemetry of the struct-of-arrays engine (``nan``
        on the scalar paths) — large values mean each numpy scatter
        amortized over many flits.
        """
        if self.vec_clocks <= 0:
            return float("nan")
        return self.vec_moved_flits / self.vec_clocks

    def canonical_digest(self) -> str:
        """SHA-256 over every *simulated-physics* field of this snapshot.

        Two runs are behaviourally identical iff their digests match:
        the hash covers all per-channel/per-switch flit counters, every
        packet counter, the full latency/hop sample tuples, the
        timeline, the queue backlog and the reconfiguration records.
        Engine bookkeeping that does not describe the simulated machine
        (the topology object, active-set scheduler telemetry) is
        excluded — the differential harness uses this to compare the
        fast-path and reference engines byte for byte.
        """
        h = hashlib.sha256()
        h.update(np.ascontiguousarray(self.channel_flits, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(self.consumed_flits, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(self.injected_flits, dtype=np.int64).tobytes())
        payload = (
            self.clocks,
            self.generated_packets,
            self.dropped_packets,
            self.delivered_packets,
            self.latencies,
            self.header_latencies,
            self.hop_counts,
            self.queue_backlog,
            self.timeline,
            self.fault_drops,
            self.retries,
            self.lost_packets,
            self.corrupted_deliveries,
            self.reconfigurations,
        )
        h.update(repr(payload).encode())
        return h.hexdigest()

    def statistical_fingerprint(self) -> str:
        """Digest of the *distributional* result, for relaxed engines.

        Batch-mode results satisfy a statistical contract — fixed
        aggregate distributions, not per-draw RNG order — so their
        identity is the order-invariant aggregate payload: totals plus
        the *sorted* latency/header-latency/hop multisets.  Two batch
        runs with the same seed produce the same fingerprint (the
        engine is deterministic), but a fingerprint deliberately cannot
        be compared against a :meth:`canonical_digest` — the ``stat1-``
        prefix keeps ledgers and campaign artefacts honest about which
        equivalence tier a result was produced under.
        """
        h = hashlib.sha256()
        h.update(b"repro-statistical-contract-v1\x00")
        payload = (
            self.clocks,
            self.generated_packets,
            self.dropped_packets,
            self.delivered_packets,
            int(self.channel_flits.sum()),
            int(self.consumed_flits.sum()),
            int(self.injected_flits.sum()),
            tuple(sorted(self.latencies)),
            tuple(sorted(self.header_latencies)),
            tuple(sorted(self.hop_counts)),
            self.queue_backlog,
            self.fault_drops,
            self.retries,
            self.lost_packets,
            self.corrupted_deliveries,
            len(self.reconfigurations),
        )
        h.update(repr(payload).encode())
        return "stat1-" + h.hexdigest()

    # -- channel-level views (consumed by repro.metrics) ----------------
    def channel_utilization(self) -> np.ndarray:
        """Per-channel flits/clock over the window."""
        return self.channel_flits / float(self.clocks)

    def throughput_series(self) -> List[Tuple[int, float]]:
        """Windowed accepted traffic over time (warmup-adequacy check).

        Each entry is ``(window clock, flits/clock/node over the
        interval ending there)``; a warmed-up, stable run shows a flat
        series.  Empty unless the collector recorded a timeline.
        """
        out: List[Tuple[int, float]] = []
        prev_t, prev_c = 0, 0
        n = self.topology.n
        for t, consumed in self.timeline:
            dt = t - prev_t
            if dt > 0:
                out.append((t, (consumed - prev_c) / (dt * n)))
            prev_t, prev_c = t, consumed
        return out

    def throughput_stability(self) -> float:
        """Relative spread of the second half of the throughput series.

        ``max/min - 1`` over the later half (0 = perfectly flat;
        ``nan`` without a timeline) — a quick "did we measure at steady
        state?" indicator.
        """
        series = self.throughput_series()
        half = [v for _t, v in series[len(series) // 2 :] if v > 0]
        if len(half) < 2:
            return float("nan")
        return max(half) / min(half) - 1.0

    def summary(self) -> Dict[str, float]:
        """Compact dict for reports and CSV rows."""
        return {
            "clocks": float(self.clocks),
            "accepted_traffic": self.accepted_traffic,
            "offered_traffic": self.offered_traffic,
            "avg_latency": self.average_latency,
            "p99_latency": self.p99_latency,
            "avg_hops": self.average_hops,
            "delivered_packets": float(self.delivered_packets),
            "generated_packets": float(self.generated_packets),
            "queue_backlog": float(self.queue_backlog),
            "delivered_fraction": self.delivered_fraction,
            "fault_drops": float(self.fault_drops),
            "retries": float(self.retries),
            "lost_packets": float(self.lost_packets),
        }
