"""Statistical A/B certification of relaxed-contract engines.

The bit-exact engines (:data:`~repro.simulator.config.BIT_EXACT_ENGINES`)
are certified by digest equality: one seed, one
``canonical_digest``, byte-for-byte.  The batch engine deliberately
breaks that contract — it arbitrates with vectorized keys instead of
replaying the scalar engines' RNG call sequence — so its correctness
claim is *distributional*: for every seed the run is deterministic,
and across seeds the aggregate statistics (delivered fraction,
latency, hops) are drawn from the same distribution as the oracles'.

This module is that claim's verifier.  The gate runs **paired**
per-seed A/B simulations — same topology, same routing, same seed,
candidate engine vs. a bit-exact oracle — and certifies:

* **paired-t confidence intervals** on the per-seed differences of
  delivered fraction, mean latency, p99 latency and mean hops
  (via :mod:`repro.experiments.statistics`); a metric passes when its
  Bonferroni-adjusted CI contains zero;
* **two-sample Kolmogorov-Smirnov distance** between the pooled
  per-packet latency samples, against the classical asymptotic
  threshold ``c(alpha) * sqrt((n+m)/(n*m))`` from
  :func:`repro.experiments.statistics.ks_threshold`, inflated by
  :data:`KS_INFLATION`.  The iid threshold alone is too tight here:
  per-packet latencies are autocorrelated (queueing — one congested
  interval shifts hundreds of consecutive samples together) and
  clustered by seed, so the *effective* sample size is well below the
  nominal ``n + m`` and null distances routinely sit at the iid
  critical value.  The inflation factor is calibrated on the quick
  matrix (null distances reach ~1.0x the iid threshold; a +20%
  latency shift produces ~4x) and pinned by the calibration
  self-test, which rejects that biased stub with the inflated
  threshold in place.

**Multiplicity.**  One certification is a family of
``scenarios x oracles x (len(METRICS) + 1)`` tests; each individual
test runs at ``alpha / family_size`` (Bonferroni), so the whole gate's
false-rejection rate is bounded by the configured *alpha* under the
null.  The calibration self-test (``tests/test_equivalence_gate.py``)
checks both directions: null pairs pass at no worse than the
configured rate, and a stub engine with +20% latency is rejected.

**Caveats, documented.**  The gate certifies *distributions under the
scenario matrix*, not per-draw equality: the batch engine resolves
multi-candidate claims after single-candidate ones, a contention-
resolution artifact worth a fraction of a clock of mean latency at low
load — well inside the CI at certification sample sizes, and invisible
in hop counts and delivered fractions.  Results produced under this
contract carry a ``statistical_fingerprint`` (never a
``canonical_digest``) and engine-variant ledger identities; see
:meth:`repro.simulator.stats.SimulationStats.statistical_fingerprint`
and :func:`repro.experiments.ledger.unit_digest`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.downup import build_down_up_routing
from repro.simulator.config import (
    BIT_EXACT_ENGINES,
    RELAXED_ENGINES,
    SimulationConfig,
)
from repro.simulator.engine import WormholeSimulator
from repro.simulator.replica_batch import run_replicated
from repro.simulator.traffic import HotspotTraffic, TornadoTraffic
from repro.topology.generator import random_irregular_topology

#: per-seed scalar metrics the paired-t certification covers
METRICS = ("delivered_fraction", "avg_latency", "p99_latency", "avg_hops")

#: calibrated multiplier on the iid two-sample KS threshold,
#: compensating for queueing autocorrelation and per-seed clustering
#: in the pooled latency samples (see the module docstring); the
#: calibration self-test pins the detection margin this leaves
KS_INFLATION = 2.0


@dataclass(frozen=True)
class EquivalenceScenario:
    """One cell of the certification matrix.

    A scenario pins everything but the engine: topology (size, ports,
    generator seed), routing (down/up on the coordinated tree) and the
    traffic configuration — spatial pattern included.  Paired runs
    then differ *only* in the step implementation.
    """

    name: str
    switches: int = 32
    ports: int = 4
    injection_rate: float = 0.3
    packet_length: int = 16
    warmup_clocks: int = 300
    measure_clocks: int = 1200
    topology_seed: int = 0xA11CE
    #: spatial traffic pattern: ``"uniform"`` (default), ``"hotspot"``
    #: (a quarter of the load converging on two switches) or
    #: ``"tornado"`` (fixed half-ring stride, defeats locality)
    traffic: str = "uniform"
    #: per-scenario override of :data:`KS_INFLATION`; ``None`` uses
    #: the module default
    ks_inflation: Optional[float] = None

    def config(self, engine: str, seed: int) -> SimulationConfig:
        return SimulationConfig(
            packet_length=self.packet_length,
            injection_rate=self.injection_rate,
            warmup_clocks=self.warmup_clocks,
            measure_clocks=self.measure_clocks,
            seed=seed,
            engine=engine,
        )

    def traffic_pattern(self):
        """The (stateless) traffic pattern instance, or None (uniform)."""
        if self.traffic == "uniform":
            return None
        if self.traffic == "hotspot":
            return HotspotTraffic(
                self.switches,
                hotspots=(0, self.switches // 2),
                fraction=0.25,
            )
        if self.traffic == "tornado":
            return TornadoTraffic(self.switches)
        raise ValueError(f"unknown traffic pattern {self.traffic!r}")


#: default certification matrix: low load (latency-dominated), mid load
#: (contention appears) and near-saturation (arbitration-dominated) on
#: a quick 32-switch network — small enough for CI, loaded enough to
#: exercise every arbitration path
QUICK_MATRIX: Tuple[EquivalenceScenario, ...] = (
    EquivalenceScenario("quick-low", injection_rate=0.15),
    EquivalenceScenario("quick-mid", injection_rate=0.45),
    EquivalenceScenario("quick-high", injection_rate=0.8),
    # spatially skewed patterns exercise arbitration paths uniform
    # traffic never stresses: hotspot piles contention onto two
    # consumption ports, tornado onto one rotational direction of the
    # tree.  Both run at mid load so the skew (not saturation) is the
    # operative stressor.  Calibration (paired null runs, seeds 0-9):
    # hotspot's null KS distance sits at ~0.77x the iid threshold —
    # inside the default inflation's budget — while tornado's reaches
    # ~0.97x: its fixed stride gives every source one deterministic
    # path, so pooled latencies collapse into per-source modes and the
    # effective sample size drops further than queueing alone explains.
    # Tornado therefore carries a 2.5x inflation (null margin ~2.6x,
    # while the +20% biased stub the self-test injects still lands
    # ~4x the iid threshold and is rejected).
    EquivalenceScenario("quick-hotspot", injection_rate=0.45,
                        traffic="hotspot"),
    EquivalenceScenario("quick-tornado", injection_rate=0.45,
                        traffic="tornado", ks_inflation=2.5),
)


@dataclass(frozen=True)
class MetricTest:
    """Paired-t equivalence test of one scalar metric.

    *mean_difference* is candidate minus oracle over the paired seeds;
    the test passes when the two-sided ``(1 - alpha)`` CI contains
    zero.  Zero-variance differences (e.g. delivered fraction pinned at
    1.0 on both sides) give a zero half-width, and the test reduces to
    exact equality of the means.
    """

    metric: str
    mean_difference: float
    half_width: float
    n: int
    alpha: float

    @property
    def passed(self) -> bool:
        if math.isnan(self.mean_difference):
            return False
        return abs(self.mean_difference) <= self.half_width

    def as_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "mean_difference": self.mean_difference,
            "half_width": self.half_width,
            "n": self.n,
            "alpha": self.alpha,
            "passed": self.passed,
        }


@dataclass(frozen=True)
class KSTest:
    """Two-sample KS test on the pooled latency distributions.

    *threshold* is the iid asymptotic critical value already
    multiplied by *inflation* (:data:`KS_INFLATION` by default).
    """

    distance: float
    threshold: float
    n_candidate: int
    n_oracle: int
    alpha: float
    inflation: float = KS_INFLATION

    @property
    def passed(self) -> bool:
        if math.isnan(self.distance):
            return False
        return self.distance <= self.threshold

    def as_dict(self) -> Dict[str, object]:
        return {
            "distance": self.distance,
            "threshold": self.threshold,
            "n_candidate": self.n_candidate,
            "n_oracle": self.n_oracle,
            "alpha": self.alpha,
            "inflation": self.inflation,
            "passed": self.passed,
        }


@dataclass(frozen=True)
class ScenarioVerdict:
    """All tests of one (scenario, oracle) certification cell."""

    scenario: str
    oracle: str
    metric_tests: Tuple[MetricTest, ...]
    ks_test: KSTest
    #: per-seed ``statistical_fingerprint`` of the candidate runs —
    #: the identity these certified results will carry in artefacts
    fingerprints: Tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return all(t.passed for t in self.metric_tests) and self.ks_test.passed

    def as_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "oracle": self.oracle,
            "passed": self.passed,
            "metrics": [t.as_dict() for t in self.metric_tests],
            "ks": self.ks_test.as_dict(),
            "fingerprints": list(self.fingerprints),
        }


@dataclass(frozen=True)
class EquivalenceReport:
    """The full certification verdict of one candidate engine."""

    candidate: str
    oracles: Tuple[str, ...]
    seeds: Tuple[int, ...]
    family_alpha: float
    per_test_alpha: float
    verdicts: Tuple[ScenarioVerdict, ...]

    @property
    def passed(self) -> bool:
        return all(v.passed for v in self.verdicts)

    def as_dict(self) -> Dict[str, object]:
        return {
            "candidate": self.candidate,
            "oracles": list(self.oracles),
            "seeds": list(self.seeds),
            "family_alpha": self.family_alpha,
            "per_test_alpha": self.per_test_alpha,
            "passed": self.passed,
            "verdicts": [v.as_dict() for v in self.verdicts],
        }

    def render(self) -> str:
        """Human-readable multi-line summary (the CLI's output)."""
        lines = [
            f"equivalence: {self.candidate} vs {', '.join(self.oracles)} "
            f"({len(self.seeds)} paired seeds, family alpha "
            f"{self.family_alpha}, per-test {self.per_test_alpha:.2g})"
        ]
        for v in self.verdicts:
            mark = "PASS" if v.passed else "FAIL"
            lines.append(f"  [{mark}] {v.scenario} vs {v.oracle}")
            for t in v.metric_tests:
                flag = "ok" if t.passed else "REJECT"
                lines.append(
                    f"      {t.metric:<19} diff {t.mean_difference:+.4g} "
                    f"+- {t.half_width:.4g}  {flag}"
                )
            k = v.ks_test
            flag = "ok" if k.passed else "REJECT"
            lines.append(
                f"      latency KS          {k.distance:.4g} "
                f"<= {k.threshold:.4g}  {flag}"
            )
        lines.append("verdict: " + ("PASS" if self.passed else "FAIL"))
        return "\n".join(lines)


def paired_metric_test(
    metric: str,
    candidate: Sequence[float],
    oracle: Sequence[float],
    alpha: float,
) -> MetricTest:
    """Paired-t CI on per-seed ``candidate - oracle`` differences.

    NaN pairs (a seed where neither side delivered a packet, so the
    latency metrics are the ``nan`` sentinel on both sides) are
    dropped *pairwise*; a one-sided NaN is an engine divergence and
    fails the test through the NaN mean.
    """
    # deferred: repro.experiments pulls in repro.metrics, which imports
    # repro.simulator — a module-level import here would close that
    # cycle when the metrics side loads first
    from repro.experiments.statistics import t_quantile

    a = np.asarray(list(candidate), dtype=float)
    b = np.asarray(list(oracle), dtype=float)
    if a.shape != b.shape or a.size < 2:
        raise ValueError("paired test needs >= 2 aligned seeds")
    both_nan = np.isnan(a) & np.isnan(b)
    a, b = a[~both_nan], b[~both_nan]
    if a.size < 2:
        # a degenerate scenario (nothing ever delivered anywhere) has
        # nothing to compare — equal by construction
        return MetricTest(metric, 0.0, 0.0, int(a.size), alpha)
    diff = a - b
    mean = float(diff.mean())
    sd = float(diff.std(ddof=1))
    if sd == 0.0:
        return MetricTest(metric, mean, 0.0, int(diff.size), alpha)
    half = (
        t_quantile(diff.size - 1, 1.0 - alpha / 2.0)
        * sd
        / math.sqrt(diff.size)
    )
    return MetricTest(metric, mean, half, int(diff.size), alpha)


def gate_scenario(
    scenario_name: str,
    oracle_name: str,
    candidate_metrics: Sequence[Dict[str, float]],
    oracle_metrics: Sequence[Dict[str, float]],
    candidate_latencies: Sequence[float],
    oracle_latencies: Sequence[float],
    metric_alpha: float,
    ks_alpha: float,
    fingerprints: Sequence[str] = (),
    ks_inflation: float = KS_INFLATION,
) -> ScenarioVerdict:
    """Pure gate over already-collected paired measurements.

    Factored out of :func:`certify` so the calibration self-test can
    drive it with synthetic data (null pairs, biased stubs) without
    running simulations.
    """
    # deferred for the same import-cycle reason as paired_metric_test
    from repro.experiments.statistics import ks_distance, ks_threshold

    tests = tuple(
        paired_metric_test(
            m,
            [row[m] for row in candidate_metrics],
            [row[m] for row in oracle_metrics],
            metric_alpha,
        )
        for m in METRICS
    )
    n, m_ = len(candidate_latencies), len(oracle_latencies)
    if n and m_:
        ks = KSTest(
            ks_distance(candidate_latencies, oracle_latencies),
            ks_inflation * ks_threshold(n, m_, ks_alpha),
            n,
            m_,
            ks_alpha,
            ks_inflation,
        )
    else:
        # no deliveries on either side: distributionally identical;
        # one-sided emptiness is a divergence and must fail
        ks = KSTest(
            0.0 if n == m_ else float("nan"),
            0.0,
            n,
            m_,
            ks_alpha,
            ks_inflation,
        )
    return ScenarioVerdict(
        scenario_name, oracle_name, tests, ks, tuple(fingerprints)
    )


def _scenario_runs(
    scenario: EquivalenceScenario,
    engine: str,
    seeds: Sequence[int],
    routing,
) -> Tuple[List[Dict[str, float]], List[float], List[str]]:
    """Per-seed metric rows, pooled latencies and fingerprints.

    Relaxed candidates run through the replica-batched driver: the
    whole seed set becomes one fused sweep, whose per-replica results
    the packing-invariance contract pins to the sequential runs seed
    for seed — so verdicts are unchanged and the certification pays
    the per-clock dispatch wall once instead of ``len(seeds)`` times.
    """
    traffic = scenario.traffic_pattern()
    if engine in RELAXED_ENGINES and len(seeds) > 1:
        results = run_replicated(
            routing,
            scenario.config(engine, 0),
            seeds=list(seeds),
            traffic=traffic,
        )
    else:
        results = [
            WormholeSimulator(
                routing, scenario.config(engine, seed), traffic=traffic
            ).run()
            for seed in seeds
        ]
    rows: List[Dict[str, float]] = []
    pooled: List[float] = []
    prints: List[str] = []
    for stats in results:
        rows.append(
            {
                "delivered_fraction": stats.delivered_fraction,
                "avg_latency": stats.average_latency,
                "p99_latency": stats.p99_latency,
                "avg_hops": stats.average_hops,
            }
        )
        pooled.extend(float(x) for x in stats.latencies)
        prints.append(stats.statistical_fingerprint())
    return rows, pooled, prints


def certify(
    candidate: str = "batch",
    oracles: Sequence[str] = ("fast", "vectorized"),
    scenarios: Sequence[EquivalenceScenario] = QUICK_MATRIX,
    seeds: Sequence[int] = tuple(range(10)),
    family_alpha: float = 0.05,
    progress=None,
) -> EquivalenceReport:
    """Run the full paired certification of *candidate* vs *oracles*.

    Per (scenario, oracle) cell: one topology + routing built from the
    scenario's generator seed, then ``len(seeds)`` paired runs per
    engine.  The family alpha is split by Bonferroni over every
    individual test in the report, so a fully-null candidate passes
    the *whole* gate with probability at least ``1 - family_alpha``.
    """
    if candidate not in RELAXED_ENGINES + BIT_EXACT_ENGINES:
        raise ValueError(f"unknown candidate engine {candidate!r}")
    for o in oracles:
        if o not in BIT_EXACT_ENGINES:
            raise ValueError(
                f"oracle {o!r} is not bit-exact; oracles must come from "
                f"{BIT_EXACT_ENGINES}"
            )
    seeds = tuple(seeds)
    if len(seeds) < 4:
        raise ValueError("certification needs >= 4 paired seeds")
    say = progress or (lambda msg: None)
    n_tests = len(scenarios) * len(oracles) * (len(METRICS) + 1)
    per_test = family_alpha / n_tests
    verdicts: List[ScenarioVerdict] = []
    for sc in scenarios:
        topo = random_irregular_topology(
            sc.switches, sc.ports, rng=sc.topology_seed
        )
        routing = build_down_up_routing(topo)
        say(f"{sc.name}: candidate {candidate} x{len(seeds)} seeds")
        cand_rows, cand_lat, prints = _scenario_runs(
            sc, candidate, seeds, routing
        )
        for oracle in oracles:
            say(f"{sc.name}: oracle {oracle} x{len(seeds)} seeds")
            or_rows, or_lat, _ = _scenario_runs(sc, oracle, seeds, routing)
            verdicts.append(
                gate_scenario(
                    sc.name,
                    oracle,
                    cand_rows,
                    or_rows,
                    cand_lat,
                    or_lat,
                    per_test,
                    per_test,
                    prints,
                    ks_inflation=(
                        KS_INFLATION
                        if sc.ks_inflation is None
                        else sc.ks_inflation
                    ),
                )
            )
    return EquivalenceReport(
        candidate,
        tuple(oracles),
        seeds,
        family_alpha,
        per_test,
        tuple(verdicts),
    )
