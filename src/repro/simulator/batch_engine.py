"""The fully batched step implementation (relaxed statistical contract).

Selected with ``SimulationConfig(engine="batch")``.  The vectorized
engine (:mod:`repro.simulator.vec_engine`) already batches the body
phase but replays the reference's arbitration RNG stream draw for draw
— it must rebuild the Python request list on dirty clocks, permute it
with the *shared* engine RNG and walk the claims sequentially whenever
the outcome could differ.  That replay is what caps its speedup near
1x: the per-clock Python request scan and the per-clock traffic
Bernoulli draw cost as much as the scalar engines' whole step.

The batch engine drops bit-level replay and keeps only the *process*:

* **Header requests from two arrays.**  One request slot per channel
  (parked headers) and per source (cached injections): ``ready_at[i]``
  is the clock at which slot ``i`` may (re)enter arbitration (a
  +inf-like sentinel everywhere else), and ``tgt[i]`` is its
  already-classified grant target — the unique admissible next channel,
  the destination's consumption port (addressed past the channel
  range), or a permanently-occupied dead slot for multi-candidate and
  routeless heads.  Both are maintained at grant commits, where the
  head position changes, so the per-clock request phase is one
  comparison, one ``nonzero`` and one gather — no per-worm scan, no
  classification work.
* **Release subscriptions.**  A due request whose target is occupied
  leaves the request set entirely and subscribes to the target's
  release; the drain phase re-arms subscribers for the following clock
  — the clock at which the scalar engines would first re-grant them.
  Persistent blocking (the common state under load) costs nothing per
  clock, and the arbitration working set stays proportional to the
  *event* rate, not the worm population.
* **Key arbitration.**  Contending requests draw i.i.d. uniform keys
  from a dedicated arbitration stream; each free target goes to its
  minimum-key requester (one argsort of ``target + key``, keys in
  [0, 1)).  Distributionally identical to the reference's
  permutation-order claiming — both pick a uniformly random winner per
  contended resource — without materializing the permutation.  Channel
  hops, injections and consume-port acquisitions all resolve in the
  same pass over one extended occupancy array; only the rare
  multi-candidate adaptive requests fall back to a scalar claim loop
  in key order, behind a vectorized due/any-candidate-free prefilter.
* **Incremental body active set.**  The flit-streaming phase operates
  on the set of slots actually holding flits, maintained across clocks
  (grant commits append, drained slots compact lazily) instead of
  full-width masks over every channel.
* **Open-loop traffic, precomputed.**  The reference draws one
  Bernoulli vector per clock.  Per source, inter-arrival gaps of that
  process are i.i.d. Geometric(p), so the whole arrival schedule is
  precomputed in bulk from per-source child streams and merged into
  one sorted event list walked by a pointer.
* **Grant-time counter attribution.**  Flit counters
  (``channel_flits``/``injected_flits``/``consumed_flits``) are
  credited with the packet's full length when the header is granted
  the resource, not flit by flit as the body streams.  Cumulative
  totals agree with the bit-exact engines up to window-boundary and
  in-flight-tail effects (and fault-truncated worms, which the exact
  engines charge partially); the per-clock deferred-batch machinery of
  the vectorized engine disappears entirely.

**Contract.**  Results are deterministic per seed (same config, same
call sequence, same platform numpy), but they are *not* byte-identical
to the bit-exact engines: arbitration and traffic consume different
RNG streams.  Equivalence is certified *distributionally* by
:mod:`repro.simulator.equivalence` (paired CI + Kolmogorov-Smirnov
gate against the bit-exact oracles), and batch results carry a
``statistical_fingerprint`` rather than a ``canonical_digest`` —
ledgers must never mix the two (see
:func:`repro.experiments.ledger.unit_digest`).

Fault hooks, deadlock/stall watchdogs, invariant checks and worm-state
sync points are inherited from
:class:`~repro.simulator.vec_engine.VectorizedCore`: worm objects are
synced at the same points, so the epoch contract (sync, mutate,
rebuild) is identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.simulator.engine import Worm
from repro.simulator.vec_engine import VectorizedCore
from repro.simulator.vec_state import FREE
from repro.util.rng import as_generator, derive_seed

__all__ = ["BatchCore"]

#: stream-derivation keys: arbitration, per-source arrival gaps, and
#: packet shaping (destination + length), all split from the config
#: seed so no stream can alias another or the engine's own ``sim.rng``
_ARB_KEY = 0xB7C4_A21B
_GAP_KEY = 0x5EED_6A90
_PKT_KEY = 0x9ACC_E55E

#: candidate-table markers (values >= 0 are the single next channel)
_NONE = -1
_MULTI = -2
_CONSUME = -3

#: ``ready_at`` sentinel: never due / blocked-and-subscribed
_BIG = np.iinfo(np.int64).max // 2

#: permanent occupant of the extended-occupancy dead slot
_NEVER = -2

#: arrival gaps are drawn in blocks of this many per source and cumsum'd
_GAP_BLOCK = 64

#: request-set size up to which arbitration runs in plain Python —
#: numpy dispatch overhead dominates below this, vector wins above
_SMALL_ARB = 24


class BatchCore(VectorizedCore):
    """Per-simulator batched step state; ``move`` is the step impl."""

    def __init__(self, sim) -> None:
        super().__init__(sim)
        st = self.state
        C, n = st.C, st.S
        self._C = C
        #: index of the extended-occupancy dead slot (see ``_occ_ext``)
        self._dead_slot = C + n
        #: one request slot per channel ([0, C), parked headers) and per
        #: source ([C, C+n), cached injections): the clock at which the
        #: request may (re)enter arbitration, _BIG when there is none —
        #: *or when it is blocked and subscribed to its target's release
        #: through _subs*, so persistent blocking costs nothing per clock
        self._ready_at = np.full(C + n, _BIG, dtype=np.int64)
        #: grant target of each request slot, in extended occupancy
        #: space: [0, C) channel, [C, C+n) consume port, C+n the dead
        #: slot (multi-candidate or routeless heads)
        self._tgt = np.full(C + n, self._dead_slot, dtype=np.int64)
        #: release subscriptions: extended-occupancy slot -> request
        #: slots to re-arm (ready next clock) when the occupant leaves
        self._subs: Dict[int, List[int]] = {}
        #: encoded candidate table, one row per destination (see module
        #: docstring); rows built lazily, dropped on decision epochs
        self._cand = np.full(n * C, _NONE, dtype=np.int64)
        self._cand_built = np.zeros(n, dtype=bool)
        self._cand_epoch = -1
        #: channels sinking at each switch (consume-marker scatter)
        sink = np.fromiter(sim._sink, np.int64, count=C)
        self._sink_channels = [(sink == d).nonzero()[0] for d in range(n)]
        #: extended occupancy: [0, C) aliases the array state's channel
        #: mirror (the slice below is a *view*, and ``rebuild`` writes
        #: in place), [C, C+n) mirrors the consumption ports, [C+n] is
        #: a permanently-occupied dead slot — one gather answers "is
        #: this grant target free" for every request kind at once
        self._occ_ext = np.full(C + n + 1, FREE, dtype=np.int64)
        self._occ_ext[:C] = st.occ
        self._occ_ext[self._dead_slot] = _NEVER
        st.occ = self._occ_ext[:C]
        #: parked heads with several admissible next channels (rare in
        #: down/up routing); they claim through the scalar fallback
        self._multi_heads: set = set()
        shared = getattr(sim.routing, "_batch_rows", None)
        if shared is None:
            shared = {}
            # RoutingFunction is a frozen dataclass; the cache rides on
            # the instance so its lifetime tracks the routing tables
            object.__setattr__(sim.routing, "_batch_rows", shared)
        self._shared_rows: Dict[int, np.ndarray] = shared
        #: sources with a cached request (single or multi), for bulk
        #: invalidation on epoch changes
        self._inj_cached: set = set()
        #: cached multi-candidate injection requests (rare), plus the
        #: flattened candidate arrays for the per-clock free prefilter
        self._inj_multi: Dict[int, tuple] = {}
        self._im_dirty = False
        self._im_srcs: List[int] = []
        self._im_cands = np.empty(0, dtype=np.int64)
        self._im_off = np.empty(0, dtype=np.int64)
        #: body-phase active set: flit slots that may hold flits, kept
        #: incrementally (grant commits append, zero hits trigger a
        #: compaction next clock) so the body never scans the full array
        self._act = np.empty(0, dtype=np.int64)
        self._act_add: List[int] = []
        self._act_filter = False
        #: flattened free-candidate + due prefilter over the
        #: multi-candidate parked heads, mirroring the injection one
        self._mh_info: Dict[int, tuple] = {}
        self._mh_dirty = False
        self._mh_arr = np.empty(0, dtype=np.int64)
        self._mh_due = np.empty(0, dtype=np.int64)
        self._mh_cands = np.empty(0, dtype=np.int64)
        self._mh_off = np.empty(0, dtype=np.int64)

        seed = sim.config.seed
        if seed is None:
            # unseeded runs: draw one OS-entropy base, then derive the
            # streams from it so they stay mutually independent
            seed = int(as_generator(None).integers(1 << 62))
        self._arb_rng = as_generator(derive_seed(seed, _ARB_KEY))
        self._pkt_rng = as_generator(derive_seed(seed, _PKT_KEY))
        self._src_rngs = [
            as_generator(derive_seed(seed, _GAP_KEY, s)) for s in range(n)
        ]

        # precomputed open-loop traffic: merged (clock, src) event list
        self._gen_p = sim._gen_p
        self._gen_clks: List[int] = []
        self._gen_srcs: List[int] = []
        self._gen_ptr = 0
        self._gen_base = [0] * n  # per-source cumulative gap sum
        self._gen_horizon = -1
        if self._gen_p > 0.0:
            self._extend_traffic(sim.config.total_clocks)
        else:
            self._gen_horizon = 1 << 62
        sim._generate_packets = self._generate_batched

    # ------------------------------------------------------------------
    # traffic precomputation
    # ------------------------------------------------------------------
    def _extend_traffic(self, until: int) -> None:
        """Extend every source's arrival schedule through clock *until*.

        Per source the Bernoulli(p)-per-clock process is drawn as
        Geometric(p) inter-arrival gaps in blocks and cumsum'd; each
        source continues its own child stream, so extending the horizon
        never perturbs another source's arrivals.  Newly drawn events
        are merged with the not-yet-fired tail (a source may have
        overshot the previous horizon) and the pointer restarts on the
        re-sorted list.
        """
        p = self._gen_p
        parts_c = []
        parts_s = []
        for s, rng in enumerate(self._src_rngs):
            b = self._gen_base[s]
            while b <= until:
                cum = b + np.cumsum(rng.geometric(p, size=_GAP_BLOCK))
                parts_c.append(cum - 1)  # arrival clocks
                parts_s.append(np.full(cum.size, s, dtype=np.int64))
                b = int(cum[-1])
            self._gen_base[s] = b
        tail_c = np.asarray(self._gen_clks[self._gen_ptr :], dtype=np.int64)
        tail_s = np.asarray(self._gen_srcs[self._gen_ptr :], dtype=np.int64)
        allc = np.concatenate([tail_c] + parts_c)
        alls = np.concatenate([tail_s] + parts_s)
        order = np.lexsort((alls, allc))
        self._gen_clks = allc[order].tolist()
        self._gen_srcs = alls[order].tolist()
        self._gen_ptr = 0
        self._gen_horizon = until

    def _fire_arrival(self, s: int, clock: int, dead_switches) -> None:
        """Fire one precomputed arrival at source *s*.

        Dead-switch and queue-cap checks happen here, at fire time
        (exactly where the reference applies them), so fault interaction
        is unchanged; destination and length are drawn from the
        packet-shaping stream in deterministic fire order.  Shared by
        the sequential generation loop and the replica driver — per
        replica, both fire the same events in the same order, so the
        packet-shaping stream is consumed identically.
        """
        sim = self.sim
        if s in dead_switches:
            return  # a failed switch generates nothing
        cfg = sim.config
        stats = sim.stats
        if cfg.max_queue is not None and len(sim.queues[s]) >= cfg.max_queue:
            stats.on_generate(dropped=True)
            return
        rng = self._pkt_rng
        dst = sim.traffic.destination(s, rng)
        if dst in dead_switches:
            stats.on_generate()
            stats.on_lost()
            return
        length = cfg.sample_length(rng)
        w = Worm(sim._next_pid, s, dst, length, clock)
        sim._next_pid += 1
        sim.worms[w.pid] = w
        sim.queues[s].append(w)
        stats.on_generate()
        if sim.tracer is not None:
            sim.tracer.record(clock, "gen", w.pid, w.src, w.dst)

    def _generate_batched(self) -> None:
        """Replacement for the engine's per-clock Bernoulli generation.

        Fires the precomputed arrivals due this clock via
        :meth:`_fire_arrival`.
        """
        sim = self.sim
        clock = sim.clock
        if clock > self._gen_horizon:
            # stepping past the configured run length (manual driving):
            # grow geometrically so repeated stepping stays amortized
            self._extend_traffic(max(clock + 4096, self._gen_horizon * 2))
        clks = self._gen_clks
        ptr = self._gen_ptr
        if ptr >= len(clks) or clks[ptr] > clock:
            return
        srcs = self._gen_srcs
        fire = self._fire_arrival
        dead_switches = (
            sim.faults.dead_switches if sim.faults is not None else ()
        )
        while ptr < len(clks) and clks[ptr] <= clock:
            fire(srcs[ptr], clock, dead_switches)
            ptr += 1
        self._gen_ptr = ptr

    # ------------------------------------------------------------------
    # candidate table / head-target maintenance
    # ------------------------------------------------------------------
    def _build_cand_row(self, d: int) -> None:
        """Flatten one destination's decision rows into the table.

        Fault-free rows are memoized per *routing function*: every
        simulator on the same routing — benchmark reps, campaign seeds
        — reuses the encoding.  With dead channels the decision cache
        filters its rows, so the row is encoded fresh and never shared.
        """
        C = self._C
        cache = self.sim.decision_cache
        enc = self._shared_rows.get(d) if not cache._dead else None
        if enc is None:
            row = cache.next_row(d)
            enc = np.array(
                [
                    r[0] if len(r) == 1 else (_MULTI if r else _NONE)
                    for r in row
                ],
                dtype=np.int64,
            )
            # a header parked on a channel sinking at its destination
            # asks for the consumption port, whatever the rows say
            enc[self._sink_channels[d]] = _CONSUME
            if not cache._dead:
                self._shared_rows[d] = enc
        self._cand[d * C : (d + 1) * C] = enc
        self._cand_built[d] = True

    def _set_head_target(self, c: int, d: int) -> None:
        """Classify the header now parked on channel *c* toward *d*.

        Called at every head movement (inject/hop commit, rebuild
        refresh, epoch change) — the request phase then never has to
        classify anything.
        """
        if not self._cand_built[d]:
            self._build_cand_row(d)
        v = int(self._cand[d * self._C + c])
        if v >= 0:
            self._tgt[c] = v
        elif v == _CONSUME:
            self._tgt[c] = self._C + d
        else:
            # multi-candidate (the scalar fallback claims it, driven by
            # its own due/free prefilter) or routeless (only an epoch
            # change can help): take the slot out of the vector request
            # set entirely — dead-slot target, never-due ready clock
            self._tgt[c] = self._dead_slot
            due = int(self._ready_at[c])
            self._ready_at[c] = _BIG
            if v == _MULTI:
                self._multi_heads.add(c)
                cache = self.sim.decision_cache
                row = cache._next_rows[d]
                if row is None:
                    row = cache.next_row(d)
                self._mh_info[c] = (due, list(row[c]))
                self._mh_dirty = True

    def _on_epoch_change(self) -> None:
        """Decision epoch moved: rebuild every cached classification.

        Release subscriptions are dropped wholesale and every active
        head re-armed from its own ready clock: a blocked head's target
        may not even exist under the new tables, so waiting for the old
        target's release would strand it.
        """
        cache = self.sim.decision_cache
        self._cand_built[:] = False
        self._cand_epoch = cache.epoch
        self._subs.clear()
        self._invalidate_inj_cache()
        self._multi_heads.clear()
        self._mh_info.clear()
        self._mh_dirty = True
        ready_at = self._ready_at
        for w in self.sim.active:
            if w.chain and not w.consuming:
                h = w.chain[0]
                ready_at[h] = w.head_ready_at
                self._set_head_target(h, w.dst)

    # ------------------------------------------------------------------
    # one clock
    # ------------------------------------------------------------------
    def move(self) -> bool:
        sim = self.sim
        self._prepare_clock()
        stats = sim.stats
        clock = sim.clock
        n_moves, drain_cand, freed_src = self._body_phase()
        if stats.active:
            stats.vec_moved_flits += int(n_moves)
            stats.vec_clocks += 1
        self._wheel_phase(clock)
        granted = self._resolve_phase(clock, drain_cand, freed_src, None)
        if sim._check_invariants:
            self.sync()
        return n_moves > 0 or granted

    def _prepare_clock(self) -> None:
        """Rebuild dirty state and refresh candidate rows if needed."""
        sim = self.sim
        if self._dirty:
            self.state.rebuild(sim)
            self._refresh_after_rebuild()
            self._dirty = False
        if sim.decision_cache.epoch != self._cand_epoch:
            self._on_epoch_change()

    def _body_phase(self) -> Tuple[int, List[int], List[int]]:
        """Phase 1: batched body moves.

        Returns ``(n_moves, drain_cand, freed_src)``.  The replica
        driver replaces this with one fused sweep over the stacked
        arrays and splits the zero hits back per replica.
        """
        st = self.state
        f = st.flits
        dn = st.dn
        cap_dn = st.cap_dn
        SRC0 = st.SRC0
        # the active set (slots holding flits) is maintained across
        # clocks: grant commits append new slots, zero hits schedule a
        # compaction — the body only ever touches live slots
        act = self._act
        if self._act_add:
            act = np.concatenate(
                (act, np.asarray(self._act_add, dtype=np.int64))
            )
            self._act_add.clear()
            self._act = act
        if self._act_filter:
            act = act[f[act] > 0]
            self._act = act
            self._act_filter = False
        n_moves = 0
        drain_cand: List[int] = []
        freed_src: List[int] = []
        if act.size:
            # act is exactly live here: every zero hit flags a
            # compaction for the next clock, commits only append slots
            # they just made non-empty, and nothing else empties a slot
            dnact = dn[act]
            room = f[dnact] < cap_dn[act]
            movers = act[room]
            n_moves = int(movers.size)
            if n_moves:
                tgts = dnact[room]
                f[movers] -= 1
                f[tgts] += 1  # targets unique (vec_state docstring)
                # zero detection reads f *after* the incoming adds: a
                # channel that both sent and received this clock holds
                # one flit and must not surface as a drain candidate
                for k in movers[f[movers] == 0].tolist():
                    if k >= SRC0:
                        freed_src.append(k - SRC0)
                    else:
                        drain_cand.append(k)
        return n_moves, drain_cand, freed_src

    def _wheel_phase(self, clock: int) -> None:
        """Phase 2: refresh woken injection sources.

        Must run before request extraction — injection scans arm
        same-clock requests in ``_ready_at``.
        """
        wheel = self.sim._wheel
        timers = wheel._timers
        if timers and timers[0][0] <= clock:
            wheel.advance(clock)
        if wheel.pending:
            self._scan_injections(wheel.pending, clock)

    def _resolve_phase(  # noqa: C901 - hot loop, kept flat
        self,
        clock: int,
        drain_cand: List[int],
        freed_src: List[int],
        reqs: Optional[Sequence[int]],
    ) -> bool:
        """Phases 3–4: arbitration, grant commits, drains, completions.

        *reqs* is the due-request slot set (an ascending array or plain
        list); ``None`` means "extract it here" (the sequential path).
        The replica driver extracts one global array and passes each
        replica its slice, preserving the ascending slot order this
        method's RNG consumption depends on.  Returns True when any
        grant was issued this clock.
        """
        sim = self.sim
        st = self.state
        stats = sim.stats
        rec = stats.active
        f = st.flits
        dn = st.dn
        cap_dn = st.cap_dn
        cap_p, cap_sink = st.cap, st.cap_sink
        C, SRC0, SINK0, D = st.C, st.SRC0, st.SINK0, st.D
        occ = sim.channel_occ
        occ_vec = st.occ
        wheel = sim._wheel
        tracer = sim.tracer
        worms = sim.worms
        ready_at = self._ready_at
        tgt = self._tgt
        occ_ext = self._occ_ext

        # -- key arbitration --------------------------------------------
        # the request set covers parked headers and cached injections in
        # one array; blocked requests subscribed to a release are absent
        # (ready_at = _BIG) until their target actually frees
        grants: List[tuple] = []
        consume_occ = sim.consume_occ
        subs = self._subs
        if reqs is None:
            reqs = (ready_at <= clock).nonzero()[0]
        n_req = len(reqs)
        pws: List[int] = []
        tws: List[int] = []
        if 0 < n_req <= _SMALL_ARB:
            # the steady-state request set is a handful of slots (new
            # parks and fresh wakes only — blocked requests live in
            # _subs): group and pick winners in plain Python rather
            # than paying a dozen numpy dispatches on 3-element arrays.
            # The free tests all happen before any claim, so the
            # snapshot semantics match the vectorized branch exactly.
            groups: Dict[int, List[int]] = {}
            for h in (reqs if type(reqs) is list else reqs.tolist()):
                t = int(tgt[h])
                if (occ[t] if t < C else consume_occ[t - C]) == FREE:
                    g = groups.get(t)
                    if g is None:
                        groups[t] = [h]
                    else:
                        g.append(h)
                else:
                    lst = subs.get(t)
                    if lst is None:
                        subs[t] = [h]
                    else:
                        lst.append(h)
                    ready_at[h] = _BIG
            for t, g in groups.items():
                if len(g) == 1:
                    pws.append(g[0])
                else:
                    pws.append(g[int(self._arb_rng.integers(len(g)))])
                tws.append(t)
        elif n_req:
            if type(reqs) is list:
                reqs = np.asarray(reqs, dtype=np.int64)
            tg = tgt[reqs]
            idx = (occ_ext[tg] == FREE).nonzero()[0]
            if idx.size != tg.size:
                # blocked requests: park them on the target's release
                # list — they re-arm the clock after it frees, exactly
                # when the scalar engines would first re-grant them
                blk = np.ones(tg.size, dtype=bool)
                blk[idx] = False
                for h, t in zip(reqs[blk].tolist(), tg[blk].tolist()):
                    lst = subs.get(t)
                    if lst is None:
                        subs[t] = [h]
                    else:
                        lst.append(h)
                    ready_at[h] = _BIG
            if idx.size:
                tgf = tg[idx]
                # argsort of target+key groups contenders by target
                # with a uniform random tie-break inside each group
                combo = tgf + self._arb_rng.random(idx.size)
                order = np.argsort(combo)
                ts = tgf[order]
                first = np.empty(ts.size, dtype=bool)
                first[0] = True
                first[1:] = ts[1:] != ts[:-1]
                wins = order[first]
                tws = ts[first].tolist()
                pws = reqs[idx[wins]].tolist()
        if pws:
            queues = sim.queues
            for p, t in zip(pws, tws):
                if p < C:  # parked header on channel p
                    w = worms[occ[p]]
                    if t < C:  # in-network hop
                        grants.append((w, p, t))
                        occ[t] = w.pid  # claim: seen by multi loop
                    else:  # consume at destination t - C
                        d = t - C
                        grants.append((w, -2, d))
                        consume_occ[d] = w.pid
                        occ_ext[t] = w.pid
                else:  # cached injection at source p - C
                    s = p - C
                    ready_at[p] = _BIG
                    self._inj_cached.discard(s)
                    q = queues[s]
                    if not q:
                        # queue emptied externally (fault retry
                        # pull, test teardown): drop the stale
                        # cached request instead of injecting
                        continue
                    w = q[0]
                    grants.append((w, -1, t))
                    occ[t] = w.pid

        # deferred port releases (commit-time freeing, as in the
        # scalar engines: the next queued worm first requests next
        # clock via the wheel wake)
        if freed_src:
            inj_occ = sim.injection_occ
            for s in freed_src:
                inj_occ[s] = FREE
                wheel.wake(s)

        # scalar fallback, in key order: the rare multi-candidate
        # adaptive requests (parked heads and first hops) contend after
        # the single-candidate pass, prefiltered for any free candidate
        if self._multi_heads or self._inj_multi:
            self._arbitrate_multi(grants, clock)

        # -- phase 3: scalar grant commits ------------------------------
        hdr_latency = sim._hdr_latency
        ready = clock + hdr_latency
        multi_heads = self._multi_heads
        for w, origin, target in grants:
            if origin == -2:  # consumption port acquired; consume header
                w.consuming = True
                w.t_head_arrival = clock
                head = w.chain[0]
                f[head] -= 1
                dn[head] = SINK0 + target
                cap_dn[head] = cap_sink
                ready_at[head] = _BIG
                if f[head] == 0:
                    drain_cand.append(head)
                if rec:
                    stats.consumed_flits[target] += w.length
                if tracer is not None:
                    tracer.record(clock, "consume", w.pid, w.src, w.dst)
            elif origin == -1:  # injection: header enters first channel
                occ[target] = w.pid
                occ_vec[target] = w.pid
                sim.injection_occ[w.src] = w.pid
                sim.queues[w.src].popleft()
                sim.active.append(w)
                sim.worms[w.pid] = w
                w.t_inject = clock
                w.chain = [target]
                w.chain_flits = [1]
                fas = w.flits_at_source - 1
                w.flits_at_source = fas
                w.hops = 1
                w.head_ready_at = ready
                f[target] = 1
                dn[target] = D
                cap_dn[target] = 0
                ready_at[target] = ready
                self._act_add.append(target)
                self._set_head_target(target, w.dst)
                if rec:
                    stats.injected_flits[w.src] += w.length
                    stats.channel_flits[target] += w.length
                if tracer is not None:
                    tracer.record(clock, "inject", w.pid, w.src, w.dst, target)
                if fas:
                    f[SRC0 + w.src] = fas
                    dn[SRC0 + w.src] = target
                    cap_dn[SRC0 + w.src] = cap_p
                    self._act_add.append(SRC0 + w.src)
                else:
                    sim.injection_occ[w.src] = FREE
                    wheel.wake(w.src)
            else:  # in-network hop
                occ[target] = w.pid
                occ_vec[target] = w.pid
                head = w.chain[0]
                w.chain.insert(0, target)
                f[target] = 1
                self._act_add.append(target)
                f[head] -= 1
                dn[head] = target
                dn[target] = D
                cap_dn[head] = cap_p
                cap_dn[target] = 0
                w.hops += 1
                w.head_ready_at = ready
                ready_at[head] = _BIG
                ready_at[target] = ready
                if head in multi_heads:
                    multi_heads.discard(head)
                    self._mh_info.pop(head, None)
                    self._mh_dirty = True
                self._set_head_target(target, w.dst)
                if f[head] == 0:
                    drain_cand.append(head)
                if rec:
                    stats.channel_flits[target] += w.length
                if tracer is not None:
                    tracer.record(clock, "hop", w.pid, w.src, w.dst, target)

        # -- phase 4: tail releases and completions ---------------------
        finished: List = []
        subs = self._subs
        wake = clock + 1
        if drain_cand:
            inj_occ = sim.injection_occ
            freed_now = set(freed_src)
            released: List[int] = []
            for c in drain_cand:
                pid = occ[c]
                if pid == FREE:
                    continue
                w = worms[pid]
                # a feeding worm can release nothing; the feed emptied
                # this very clock iff its source is in freed_now (the
                # port itself frees next clock)
                if inj_occ[w.src] == pid and w.src not in freed_now:
                    continue
                chain = w.chain
                if not chain or chain[-1] != c:
                    continue  # not the tail: nothing can release yet
                if len(chain) == 1 and not w.consuming:
                    continue
                chain.pop()
                occ[c] = FREE
                released.append(c)
                # cascaded releases (several chain channels empty at
                # once) only arise from fault truncation; the steady
                # state pops exactly the tail
                while (
                    chain
                    and f[chain[-1]] == 0
                    and not (len(chain) == 1 and not w.consuming)
                ):
                    cid = chain.pop()
                    occ[cid] = FREE
                    released.append(cid)
                if w.consuming and not chain:
                    w.t_done = clock
                    w.consumed = w.length
                    w.chain_flits = []
                    w.flits_at_source = 0
                    w.quiet = True
                    consume_occ[w.dst] = FREE
                    occ_ext[C + w.dst] = FREE
                    lst = subs.pop(C + w.dst, None)
                    if lst:
                        for h in lst:
                            ready_at[h] = wake
                    finished.append(w)
            if released:
                occ_vec[released] = FREE
                # re-arm every request that was waiting on a released
                # channel: they contend again next clock, exactly when
                # the scalar engines would first re-grant them
                for c in released:
                    lst = subs.pop(c, None)
                    if lst:
                        for h in lst:
                            ready_at[h] = wake
        if drain_cand or freed_src:
            self._act_filter = True
        if finished:
            active = sim.active
            done_ids = {w.pid for w in finished}
            for w in finished:
                if w.corrupted:
                    stats.on_corrupted()
                    if sim.faults is not None:
                        sim.faults.on_packet_failure(sim, w)
                else:
                    stats.on_delivered(
                        latency=w.t_done - w.t_gen,
                        header_latency=(w.t_head_arrival or clock) - w.t_gen,
                        hops=w.hops,
                    )
                if tracer is not None:
                    tracer.record(clock, "done", w.pid, w.src, w.dst)
            sim.active = [w for w in active if w.pid not in done_ids]
            for w in finished:
                sim.worms.pop(w.pid, None)

        return bool(grants)

    # ------------------------------------------------------------------
    # injection request cache
    # ------------------------------------------------------------------
    def _scan_injections(self, pending, clock: int) -> None:
        """Process newly woken sources and cache their requests.

        The wheel's pending set acts as a dirty set here: every source
        in it is (re)classified once — asleep (empty queue or busy
        port), parked on a timer (header not ready), or cached as a
        live request slot (``ready_at``/``tgt`` at ``C + s``, or
        ``_inj_multi``) that contends every clock without being
        rescanned.
        """
        sim = self.sim
        wheel = sim._wheel
        cache = sim.decision_cache
        first_rows = cache._first_rows
        inj_occ = sim.injection_occ
        queues = sim.queues
        C = self._C
        ready_at = self._ready_at
        tgt = self._tgt
        cached = self._inj_cached
        for s in sorted(pending):
            q = queues[s]
            if not q or inj_occ[s] != FREE:
                wheel.sleep(s)
                continue
            w = q[0]
            if w.head_ready_at > clock:
                wheel.park_until(s, w.head_ready_at)
                continue
            row = first_rows[w.dst]
            if row is None:
                row = cache.first_row(w.dst)
            cands = row[s]
            if len(cands) == 1:
                tgt[C + s] = cands[0]
                ready_at[C + s] = clock
                cached.add(s)
            elif cands:
                self._inj_multi[s] = (w, cands)
                self._im_dirty = True
                cached.add(s)
            # no admissible first channel: leave asleep — only an epoch
            # change can help, and that wakes every cached source anyway
            wheel.sleep(s)

    def _invalidate_inj_cache(self) -> None:
        """Epoch change: drop every cached injection request.

        Callers that can leave stale *subscriptions* behind (epoch
        change, rebuild) clear ``_subs`` themselves before calling.
        """
        wheel = self.sim._wheel
        for s in self._inj_cached:
            wheel.wake(s)
        self._inj_cached.clear()
        self._inj_multi.clear()
        self._im_dirty = True
        self._ready_at[self._C :] = _BIG

    def _drop_inj_multi(self, s: int) -> None:
        self._inj_multi.pop(s, None)
        self._inj_cached.discard(s)
        self._im_dirty = True

    # ------------------------------------------------------------------
    # scalar arbitration fallback
    # ------------------------------------------------------------------
    def _arbitrate_multi(self, grants, clock) -> None:
        """Claim loop over multi-candidate requests, in key order.

        Both flavors — parked heads with several admissible next
        channels and queued packets with several admissible first
        channels — are rare under down/up routing but persistent while
        blocked, so each clock first prefilters for any *free*
        candidate before paying the scalar claim loop.
        """
        sim = self.sim
        occ = sim.channel_occ
        occ_vec = self.state.occ
        worms = sim.worms
        cache = sim.decision_cache
        items: List[tuple] = []
        if self._multi_heads:
            # both flavors are almost always tiny (a handful of parked
            # heads); below _SMALL_ARB a direct dict walk beats the
            # numpy gather+reduceat prefilter by a wide margin
            if len(self._mh_info) <= _SMALL_ARB:
                occ_list = occ
                for c, (due, cands) in self._mh_info.items():
                    if due <= clock and any(
                        occ_list[ch] == FREE for ch in cands
                    ):
                        items.append((1, c, None))
            else:
                if self._mh_dirty:
                    self._mh_arr = np.fromiter(
                        self._mh_info, np.int64, count=len(self._mh_info)
                    )
                    parts = [
                        np.asarray(self._mh_info[c][1], dtype=np.int64)
                        for c in self._mh_arr.tolist()
                    ]
                    self._mh_due = np.array(
                        [self._mh_info[c][0] for c in self._mh_arr.tolist()],
                        dtype=np.int64,
                    )
                    sizes = np.array([p.size for p in parts])
                    self._mh_off = np.concatenate(([0], np.cumsum(sizes)[:-1]))
                    self._mh_cands = np.concatenate(parts)
                    self._mh_dirty = False
                freem = occ_vec[self._mh_cands] == FREE
                if freem.any():
                    hit = np.maximum.reduceat(freem, self._mh_off)
                    hit &= self._mh_due <= clock
                    for c in self._mh_arr[hit].tolist():
                        items.append((1, c, None))
        if self._inj_multi:
            if len(self._inj_multi) <= _SMALL_ARB:
                occ_list = occ
                for s, entry in self._inj_multi.items():
                    if any(occ_list[ch] == FREE for ch in entry[1]):
                        items.append((2, s, entry))
            else:
                if self._im_dirty:
                    self._im_srcs = list(self._inj_multi)
                    cand_parts = [
                        np.asarray(self._inj_multi[s][1], dtype=np.int64)
                        for s in self._im_srcs
                    ]
                    sizes = np.array([p.size for p in cand_parts])
                    self._im_off = np.concatenate(([0], np.cumsum(sizes)[:-1]))
                    self._im_cands = np.concatenate(cand_parts)
                    self._im_dirty = False
                freem = occ_vec[self._im_cands] == FREE
                if freem.any():
                    hit = np.maximum.reduceat(freem, self._im_off)
                    for k in hit.nonzero()[0].tolist():
                        s = self._im_srcs[k]
                        entry = self._inj_multi.get(s)
                        if entry is not None:
                            items.append((2, s, entry))
        if not items:
            return
        if len(items) > 1:
            keys = self._arb_rng.random(len(items))
            items = [items[j] for j in np.argsort(keys).tolist()]
        queues = sim.queues
        wheel = sim._wheel
        for kind, a, b in items:
            if kind == 1:
                w = worms[occ[a]]
                dst = w.dst
                row = cache._next_rows[dst]
                if row is None:
                    row = cache.next_row(dst)
                cands = row[a]
                avail = [c for c in cands if occ[c] == FREE]
                if not avail:
                    continue
                pick = avail[0] if len(avail) == 1 else self._pick(avail)
                occ[pick] = w.pid
                grants.append((w, a, pick))
            else:
                w, cands = b
                # guard against an externally emptied or re-headed
                # queue (appends and pops both wake the source, so the
                # scan normally repairs the entry first)
                q = queues[a]
                if not q or q[0] is not w:
                    self._drop_inj_multi(a)
                    wheel.wake(a)
                    continue
                avail = [c for c in cands if occ[c] == FREE]
                if not avail:
                    continue
                pick = avail[0] if len(avail) == 1 else self._pick(avail)
                occ[pick] = w.pid
                grants.append((w, -1, pick))
                self._drop_inj_multi(a)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _refresh_after_rebuild(self) -> None:
        """Re-derive the head-tracking arrays after an array rebuild.

        The rebuild reconstructs flit counts and downstream links from
        the worm objects; the head-tracking arrays are this core's own
        and must follow — a fault hook may have truncated or re-headed
        chains arbitrarily, killed channels (bumping the decision
        epoch) or rewritten consume ports.
        """
        sim = self.sim
        cache = sim.decision_cache
        self._cand_built[:] = False
        self._cand_epoch = cache.epoch
        ready_at = self._ready_at
        ready_at[:] = _BIG
        self._subs.clear()
        C = self._C
        n = self.state.S
        self._occ_ext[C : C + n] = np.fromiter(
            sim.consume_occ, np.int64, count=n
        )
        self._multi_heads.clear()
        self._mh_info.clear()
        self._mh_dirty = True
        for w in sim.active:
            if w.chain and not w.consuming:
                h = w.chain[0]
                ready_at[h] = w.head_ready_at
                self._set_head_target(h, w.dst)
        # the rebuild rewrote the flit array wholesale: restart the
        # body-phase active set from the live slots
        self._act = (self.state.flits > 0).nonzero()[0]
        self._act_add.clear()
        self._act_filter = False
        # fault hooks may retry/retarget queued worms: rebuild the
        # injection cache from scratch rather than trusting it
        self._invalidate_inj_cache()

    def _pick(self, avail: List[int]) -> int:
        """Selection policy over free candidates, on the batch stream.

        Mirrors the engine's ``_select`` but draws from the dedicated
        arbitration stream — the batch engine never touches ``sim.rng``,
        keeping the shared stream untouched for any code that compares
        draw counts across engines.
        """
        policy = self.sim.config.selection_policy
        if policy == "first":
            return min(avail)
        if policy == "least-congested":
            sim = self.sim
            occ = sim.channel_occ
            topo = sim.topology
            sink = sim._sink

            def busy(c: int) -> int:
                return sum(
                    1
                    for o in topo.output_channels(sink[c])
                    if occ[o] != FREE
                )

            scores = [busy(c) for c in avail]
            best = min(scores)
            avail = [c for c, s_ in zip(avail, scores) if s_ == best]
            if len(avail) == 1:
                return avail[0]
        return avail[int(self._arb_rng.integers(len(avail)))]
