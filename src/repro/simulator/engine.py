"""The wormhole simulation engine.

A synchronous, two-phase, cycle-accurate model.  Every clock:

1. **Plan body moves** from start-of-clock state: for each worm, one
   flit may advance across every adjacent channel pair of its chain
   (1 flit/clock/channel in each direction), one flit may be consumed
   at the destination, and one flit may be fed from the source.
2. **Plan and grant header moves**: headers whose routing delay has
   elapsed request the admissible minimal output channels that are free
   (start-of-clock occupancy); requests are arbitrated in random order
   and each channel is granted at most once.  Headers whose sink is the
   destination request the consumption port instead; packets at the
   front of a source queue request the injection port plus a first
   channel.
3. **Commit** all plans, release drained tail channels and finished
   ports, collect statistics, periodically run the exact wait-for
   deadlock analysis (:meth:`WormholeSimulator.find_deadlocked_worms`),
   and generate new packets (Bernoulli per node, destinations from the
   traffic pattern).

Because plans are computed against start-of-clock state, the update is
order-independent (no switch-iteration artifacts), and because a worm
never releases a channel before its tail has drained, blocked worms
hold resources exactly as wormhole switching demands — an admitted turn
cycle *will* deadlock, which the watchdog turns into a loud
:class:`DeadlockDetected` (exercised by tests).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.routing.base import RoutingFunction
from repro.simulator.config import SimulationConfig
from repro.simulator.packet import Worm
from repro.simulator.stats import SimulationStats, StatsCollector
from repro.simulator.traffic import TrafficPattern, UniformTraffic
from repro.util.rng import as_generator

FREE = -1


class DeadlockDetected(RuntimeError):
    """Wait-for analysis found worms that can never progress again."""


class LivelockSuspected(RuntimeError):
    """No flit anywhere moved for ``max_stall_clocks`` consecutive clocks.

    Complements the exact wait-for deadlock analysis: that analysis is
    deliberately optimistic about free channels, so a global stall with
    no cyclic wait (e.g. every worm waiting on a failed link that never
    gets reconfigured, or pathological arbitration starvation) does not
    trigger it.  The message carries a dump of the stuck worms.
    """


class WormholeSimulator:
    """Cycle-accurate wormhole simulation of one routing function.

    Parameters
    ----------
    routing:
        A verified :class:`~repro.routing.base.RoutingFunction`.
    config:
        Timing and workload parameters.
    traffic:
        Destination sampler; defaults to the paper's uniform pattern.

    Typical use is the one-shot :func:`simulate` helper; instantiate the
    class directly when stepping manually (tests) or inspecting state.
    """

    def __init__(
        self,
        routing: RoutingFunction,
        config: SimulationConfig,
        traffic: Optional[TrafficPattern] = None,
    ) -> None:
        self.routing = routing
        self.topology = routing.topology
        self.config = config
        self.traffic = traffic if traffic is not None else UniformTraffic(self.topology.n)
        self.rng = as_generator(config.seed)

        n = self.topology.n
        #: channel occupancy: worm pid or FREE.  A plain list, not a
        #: numpy array — the engine reads single elements in a tight
        #: Python loop, where list indexing is several times faster.
        self.channel_occ: List[int] = [FREE] * self.topology.num_channels
        #: channel sink switch, precomputed (hot-loop lookup)
        self._sink = [ch.sink for ch in self.topology.channels]
        self.injection_occ = [FREE] * n
        self.consume_occ = [FREE] * n
        self.queues: List[Deque[Worm]] = [deque() for _ in range(n)]
        self.active: List[Worm] = []
        self.worms: Dict[int, Worm] = {}
        self.clock = 0
        self._next_pid = 0
        self._last_progress = 0
        self.stats = StatsCollector(self.topology)
        self._check_invariants = False
        #: optional :class:`repro.simulator.trace.TraceRecorder`
        self.tracer = None
        #: channels killed by a live fault — never granted to a header
        #: (they read FREE once drained, but arbitration skips them)
        self.dead_channels: set = set()
        #: optional :class:`repro.faults.FaultRuntime` driving live
        #: fault injection and online reconfiguration
        self.faults = None

    # ------------------------------------------------------------------
    # public driver
    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Run warmup + measurement and return the window statistics."""
        cfg = self.config
        for _ in range(cfg.warmup_clocks):
            self.step()
        self.stats.active = True
        for _ in range(cfg.measure_clocks):
            self.step()
            self.stats.window_clocks += 1
            self.stats.on_tick()
        backlog = sum(len(q) for q in self.queues)
        reconfigs = self.faults.records if self.faults is not None else ()
        return self.stats.finalize(queue_backlog=backlog, reconfigurations=reconfigs)

    def enable_invariant_checks(self) -> None:
        """Verify flit conservation for every worm each clock (tests)."""
        self._check_invariants = True

    def attach_faults(self, runtime) -> None:
        """Install a :class:`repro.faults.FaultRuntime` on this engine.

        The runtime is stepped at the start of every clock: it fires
        scheduled faults (killing channels, dropping/truncating the
        worms crossing them), re-injects retried packets, and swaps
        routing tables after each drain window.
        """
        if runtime.schedule.topology != self.topology:
            raise ValueError("fault schedule built for a different topology")
        self.faults = runtime

    # ------------------------------------------------------------------
    # one clock
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one clock."""
        if self.faults is not None:
            self.faults.on_clock(self)
        progressed = self._move_bodies_and_heads()
        if progressed:
            self._last_progress = self.clock
        interval = self.config.deadlock_interval
        if interval and self.clock % interval == interval - 1:
            dead = self.find_deadlocked_worms()
            if dead:
                raise DeadlockDetected(self._deadlock_report(dead))
        stall = self.config.max_stall_clocks
        if (
            stall is not None
            and self.clock - self._last_progress >= stall
            and (self.active or any(self.queues))
        ):
            raise LivelockSuspected(self._stall_report(stall))
        self._generate_packets()
        if self._check_invariants:
            for w in self.active:
                w.check_invariant()
        self.clock += 1

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _move_bodies_and_heads(self) -> bool:
        cap = self.config.buffer_flits
        stats = self.stats
        clock = self.clock
        topo = self.topology
        progressed = False

        # -- phase 1: plan body moves from start-of-clock state ---------
        # each entry: (worm, kind, index); kinds: consume / advance / feed
        body_plans: List[Tuple[Worm, str, int]] = []
        for w in self.active:
            cf = w.chain_flits
            if w.consuming and cf and cf[0] > 0:
                body_plans.append((w, "consume", 0))
            for i in range(len(cf) - 1):
                if cf[i + 1] > 0 and cf[i] < cap:
                    body_plans.append((w, "advance", i))
            if w.flits_at_source > 0 and cf and cf[-1] < cap:
                body_plans.append((w, "feed", len(cf) - 1))

        # -- phase 2: header requests on start-of-clock occupancy -------
        # in-network headers: head at front of chain[0], routing delay done
        header_requests: List[Tuple[Worm, Optional[int], Tuple[int, ...]]] = []
        for w in self.active:
            if w.consuming or not w.chain or w.head_ready_at > clock:
                continue
            head = w.chain[0]
            node = self._sink[head]
            if node == w.dst:
                header_requests.append((w, None, ()))  # consumption request
            else:
                cands = self.routing.next_hops[w.dst][head]
                header_requests.append((w, head, cands))
        # injection headers: queue fronts whose injection port is free
        for s, q in enumerate(self.queues):
            if q and self.injection_occ[s] == FREE:
                w = q[0]
                if w.head_ready_at <= clock:
                    cands = self.routing.first_hops[w.dst][s]
                    header_requests.append((w, -1, cands))

        # arbitrate in random order; each channel / consumption port
        # granted at most once per clock
        grants: List[Tuple[Worm, int, int]] = []  # (worm, origin, target)
        if header_requests:
            order = self.rng.permutation(len(header_requests))
            granted_channels: set = set()
            granted_consume: set = set()
            occ = self.channel_occ
            dead = self.dead_channels
            for idx in order:
                w, origin, cands = header_requests[idx]
                if origin is None:
                    if w.dst not in granted_consume and self.consume_occ[w.dst] == FREE:
                        granted_consume.add(w.dst)
                        grants.append((w, -2, w.dst))
                    continue
                avail = [
                    c
                    for c in cands
                    if occ[c] == FREE
                    and c not in granted_channels
                    and c not in dead
                ]
                if not avail:
                    continue
                pick = self._select(avail)
                granted_channels.add(pick)
                grants.append((w, origin, pick))

        # -- phase 3: commit -------------------------------------------
        hdr_latency = self.config.header_delay + self.config.link_delay
        # worms whose chain gained a channel at the front this clock:
        # body-plan indices (taken pre-grant) must shift by one
        shifted: set = set()

        tracer = self.tracer
        for w, origin, target in grants:
            progressed = True
            if origin == -2:  # consumption port acquired; consume header
                self.consume_occ[target] = w.pid
                w.consuming = True
                w.t_head_arrival = clock
                w.chain_flits[0] -= 1
                w.consumed += 1
                stats.on_consume(target)
                if tracer is not None:
                    tracer.record(clock, "consume", w.pid, w.src, w.dst)
            elif origin == -1:  # injection: header enters first channel
                self.channel_occ[target] = w.pid
                self.injection_occ[w.src] = w.pid
                self.queues[w.src].popleft()
                self.active.append(w)
                w.t_inject = clock
                w.chain = [target]
                w.chain_flits = [1]
                w.flits_at_source -= 1
                w.hops = 1
                w.head_ready_at = clock + hdr_latency
                stats.on_inject(w.src)
                stats.on_channel_entry(target)
                if tracer is not None:
                    tracer.record(clock, "inject", w.pid, w.src, w.dst, target)
                if w.flits_at_source == 0:
                    self.injection_occ[w.src] = FREE
            else:  # in-network hop
                self.channel_occ[target] = w.pid
                w.chain.insert(0, target)
                w.chain_flits.insert(0, 1)
                w.chain_flits[1] -= 1
                w.hops += 1
                w.head_ready_at = clock + hdr_latency
                shifted.add(w.pid)
                stats.on_channel_entry(target)
                if tracer is not None:
                    tracer.record(clock, "hop", w.pid, w.src, w.dst, target)

        for w, kind, i in body_plans:
            progressed = True
            cf = w.chain_flits
            if kind == "consume":
                cf[0] -= 1
                w.consumed += 1
                stats.on_consume(w.dst)
            elif kind == "advance":
                j = i + 1 if w.pid in shifted else i
                cf[j + 1] -= 1
                cf[j] += 1
                stats.on_channel_entry(w.chain[j])
            else:  # feed from source (always targets the tail channel)
                j = len(cf) - 1
                w.flits_at_source -= 1
                cf[j] += 1
                stats.on_inject(w.src)
                stats.on_channel_entry(w.chain[j])
                if w.flits_at_source == 0:
                    self.injection_occ[w.src] = FREE

        # -- phase 4: tail releases and completions ---------------------
        finished: List[Worm] = []
        for w in self.active:
            if w.t_inject is None:
                continue
            while (
                w.chain
                and w.flits_at_source == 0
                and w.chain_flits[-1] == 0
                and not (len(w.chain) == 1 and not w.consuming)
            ):
                cid = w.chain.pop()
                w.chain_flits.pop()
                self.channel_occ[cid] = FREE
            if w.consuming and w.consumed == w.length:
                w.t_done = clock
                self.consume_occ[w.dst] = FREE
                finished.append(w)
                if w.corrupted:
                    # a fault cut this worm's tail; the fragment drained
                    # but the packet was not delivered — hand it to the
                    # retry layer
                    stats.on_corrupted()
                    if self.faults is not None:
                        self.faults.on_packet_failure(self, w)
                else:
                    stats.on_delivered(
                        latency=w.t_done - w.t_gen,
                        header_latency=(w.t_head_arrival or clock) - w.t_gen,
                        hops=w.hops,
                    )
                if self.tracer is not None:
                    self.tracer.record(clock, "done", w.pid, w.src, w.dst)
        if finished:
            done_ids = {w.pid for w in finished}
            self.active = [w for w in self.active if w.pid not in done_ids]
            for w in finished:
                self.worms.pop(w.pid, None)
        return progressed

    def _select(self, avail: List[int]) -> int:
        """Pick one free candidate per the configured selection policy.

        ``random`` — uniform (the paper's rule); ``first`` — lowest
        channel id (deterministic tie-break); ``least-congested`` — the
        candidate whose *next* switch has the fewest busy output
        channels (a credit-style congestion proxy; the candidates
        themselves are free, so their own buffers are empty), ties
        broken randomly.
        """
        if len(avail) == 1:
            return avail[0]
        policy = self.config.selection_policy
        if policy == "first":
            return min(avail)
        if policy == "least-congested":
            occ = self.channel_occ
            topo = self.topology

            def busy(c: int) -> int:
                return sum(
                    1
                    for o in topo.output_channels(self._sink[c])
                    if occ[o] != FREE
                )

            scores = [busy(c) for c in avail]
            best = min(scores)
            avail = [c for c, s_ in zip(avail, scores) if s_ == best]
            if len(avail) == 1:
                return avail[0]
        return avail[int(self.rng.integers(len(avail)))]

    def _generate_packets(self) -> None:
        cfg = self.config
        p = cfg.packet_probability
        if p <= 0.0:
            return
        n = self.topology.n
        dead_switches = (
            self.faults.dead_switches if self.faults is not None else ()
        )
        hits = np.nonzero(self.rng.random(n) < p)[0]
        for s in hits:
            s = int(s)
            if s in dead_switches:
                continue  # a failed switch generates nothing
            if cfg.max_queue is not None and len(self.queues[s]) >= cfg.max_queue:
                self.stats.on_generate(dropped=True)
                continue
            dst = self.traffic.destination(s, self.rng)
            if dst in dead_switches:
                # addressed to a failed host: lost at generation time
                self.stats.on_generate()
                self.stats.on_lost()
                continue
            length = cfg.sample_length(self.rng)
            w = Worm(self._next_pid, s, dst, length, self.clock)
            self._next_pid += 1
            self.worms[w.pid] = w
            self.queues[s].append(w)
            self.stats.on_generate()
            if self.tracer is not None:
                self.tracer.record(self.clock, "gen", w.pid, w.src, w.dst)

    def find_deadlocked_worms(self) -> List[Worm]:
        """Exact wait-for analysis: worms that can never progress again.

        A worm is *live* when it is consuming, its header is still in
        flight, or some admissible candidate resource (next channel or
        the destination's consumption port) is free or held by a live
        worm (a live holder eventually drains past and releases).  The
        greatest fixpoint of this rule marks everything that can still
        move; the worms left over hold channels and wait, directly or
        transitively, only on each other — a wormhole deadlock (the
        cyclic-wait witness of the turn-cycle condition).  Returns the
        non-live worms (empty for any verified deadlock-free routing).
        """
        injected = [w for w in self.active if w.chain]
        live: Dict[int, bool] = {}
        for w in injected:
            if w.consuming or w.head_ready_at > self.clock:
                live[w.pid] = True
        occupant = self.channel_occ
        changed = True
        while changed:
            changed = False
            for w in injected:
                if live.get(w.pid):
                    continue
                head = w.chain[0]
                node = self._sink[head]
                if node == w.dst:
                    holder = self.consume_occ[node]
                    ok = holder == FREE or live.get(holder, False)
                else:
                    ok = any(
                        occupant[c] == FREE or live.get(occupant[c], False)
                        for c in self.routing.next_hops[w.dst][head]
                    )
                if ok:
                    live[w.pid] = True
                    changed = True
        return [w for w in injected if not live.get(w.pid)]

    # ------------------------------------------------------------------
    # fault hooks (driven by repro.faults.FaultRuntime)
    # ------------------------------------------------------------------
    def _fault_kill_link(self, link: Tuple[int, int], policy: str) -> List[Worm]:
        """Kill both channels of *link*; handle worms crossing it.

        ``drop`` removes a crossing worm outright (all resources freed
        instantly — an idealised abort signal).  ``drain`` keeps the
        fragment on the destination side of the break: flits already
        across the failed link continue to the destination and release
        their channels naturally, while the tail side is reclaimed; the
        fragment is marked ``corrupted`` and reported to the retry
        layer when it finishes draining.  Returns the worms removed
        *now* (drain fragments are reported later, at completion).
        """
        u, v = link
        cids = (self.topology.channel_id(u, v), self.topology.channel_id(v, u))
        self.dead_channels.update(cids)
        removed: List[Worm] = []
        for w in list(self.active):
            k = next((i for i, c in enumerate(w.chain) if c in cids), None)
            if k is None:
                continue
            if policy == "drain":
                # flits buffered in chain[k] already crossed the link
                # (they sit in the sink-side input buffer), so the
                # fragment keeps indices 0..k and loses everything
                # upstream of the break
                kept = w.chain_flits[: k + 1]
                if sum(kept) > 0 or w.consuming:
                    for c in w.chain[k + 1 :]:
                        self.channel_occ[c] = FREE
                    if self.injection_occ[w.src] == w.pid:
                        self.injection_occ[w.src] = FREE
                    w.chain = w.chain[: k + 1]
                    w.chain_flits = kept
                    w.flits_at_source = 0
                    w.length = w.consumed + sum(kept)
                    w.corrupted = True
                    if self.tracer is not None:
                        self.tracer.record(
                            self.clock, "truncate", w.pid, w.src, w.dst
                        )
                    continue
            self._drop_worm(w)
            removed.append(w)
        return removed

    def _fault_restore_link(self, link: Tuple[int, int]) -> None:
        """Revive both channels of *link* (a flap's UP edge).

        The channels become *grantable* again immediately, but carry no
        traffic until a reconfiguration installs tables that reference
        them.
        """
        u, v = link
        self.dead_channels.discard(self.topology.channel_id(u, v))
        self.dead_channels.discard(self.topology.channel_id(v, u))

    def _fault_kill_switch(self, v: int, policy: str) -> List[Worm]:
        """Kill switch *v*: all incident links, plus traffic bound to it.

        Removes queued packets at *v*, active worms destined to *v*
        (their consumption port is gone for good), and active worms
        sourced at *v* that still have flits to feed.  Returns every
        worm removed, including those taken out by the incident-link
        kills.
        """
        removed: List[Worm] = []
        for nb in self.topology.neighbors(v):
            link = (v, nb) if v < nb else (nb, v)
            if self.topology.channel_id(link[0], link[1]) in self.dead_channels:
                continue
            removed.extend(self._fault_kill_link(link, policy))
        for w in self.queues[v]:
            self.worms.pop(w.pid, None)
            removed.append(w)
        self.queues[v].clear()
        for w in list(self.active):
            if w.dst == v or (w.src == v and w.flits_at_source > 0):
                self._drop_worm(w)
                removed.append(w)
        return removed

    def _fault_swap_routing(self, routing: RoutingFunction) -> None:
        """Atomically install reconfigured routing tables.

        *routing* must be remapped to this engine's (full) topology
        channel-id space — see
        :func:`repro.faults.controller.remap_routing`.
        """
        if routing.topology != self.topology:
            raise ValueError("swapped routing must be remapped to the full topology")
        self.routing = routing

    def _fault_eject_stranded(self) -> Tuple[List[Worm], List[Worm]]:
        """Drop worms and queued packets the new tables cannot carry.

        A worm survives the swap only if its *held chain* is a path the
        new routing function could itself have produced (each adjacent
        channel pair is an admissible new-epoch turn) and its head
        still has a way forward.  Ejecting nonconforming worms restores
        the Dally-Seitz induction for the new epoch — every remaining
        hold and every wait follows the new (verified acyclic) channel
        dependency graph, so the transition cannot introduce a deadlock
        through mixed-epoch ("ghost") dependencies.  Queued packets
        whose destination became unroutable (endpoint died) are
        cancelled.  Returns ``(ejected worms, cancelled packets)``.
        """
        ejected: List[Worm] = []
        for w in list(self.active):
            if w.consuming or not w.chain:
                continue
            if not self._chain_conforms(w):
                self._drop_worm(w)
                ejected.append(w)
        cancelled: List[Worm] = []
        for s, q in enumerate(self.queues):
            if not q:
                continue
            stranded = [w for w in q if not self.routing.first_hops[w.dst][s]]
            if stranded:
                kept = [w for w in q if self.routing.first_hops[w.dst][s]]
                q.clear()
                q.extend(kept)
                for w in stranded:
                    self.worms.pop(w.pid, None)
                cancelled.extend(stranded)
        return ejected, cancelled

    def _chain_conforms(self, w: Worm) -> bool:
        """Is *w*'s held chain a valid path under the current tables?"""
        nh = self.routing.next_hops[w.dst]
        for i in range(len(w.chain) - 1, 0, -1):
            if w.chain[i - 1] not in nh[w.chain[i]]:
                return False
        head = w.chain[0]
        if self._sink[head] == w.dst:
            return True
        return bool(nh[head])

    def _drop_worm(self, w: Worm) -> None:
        """Remove *w* from the network, freeing every held resource."""
        for c in w.chain:
            self.channel_occ[c] = FREE
        if w.consuming:
            self.consume_occ[w.dst] = FREE
        if self.injection_occ[w.src] == w.pid:
            self.injection_occ[w.src] = FREE
        w.chain = []
        w.chain_flits = []
        self.active.remove(w)
        self.worms.pop(w.pid, None)
        if self.tracer is not None:
            self.tracer.record(self.clock, "drop", w.pid, w.src, w.dst)

    def _fault_requeue(
        self, src: int, dst: int, length: int, logical_id: int,
        attempts: int, t_gen: int,
    ) -> Worm:
        """Re-enqueue a retried packet at its source (retry layer)."""
        w = Worm(self._next_pid, src, dst, length, t_gen)
        self._next_pid += 1
        w.logical_id = logical_id
        w.attempts = attempts
        w.head_ready_at = self.clock
        self.worms[w.pid] = w
        self.queues[src].append(w)
        if self.tracer is not None:
            self.tracer.record(self.clock, "retry", w.pid, src, dst)
        return w

    def _stall_report(self, stall: int) -> str:
        stuck = [
            (w.pid, w.src, w.dst, list(zip(w.chain, w.chain_flits)))
            for w in self.active[:6]
        ]
        queued = sum(len(q) for q in self.queues)
        return (
            f"no flit moved for {stall} clocks (clock {self.clock}, last "
            f"progress {self._last_progress}) with {len(self.active)} worms "
            f"active and {queued} packets queued; worm dump: {stuck}"
        )

    def _deadlock_report(self, dead: List[Worm]) -> str:
        held = [
            (w.pid, w.src, w.dst, list(zip(w.chain, w.chain_flits)))
            for w in dead
        ]
        return (
            f"wait-for analysis at clock {self.clock}: {len(dead)} worms "
            f"can never progress (cyclic channel wait), e.g. {held[:4]}"
        )


def simulate(
    routing: RoutingFunction,
    config: SimulationConfig,
    traffic: Optional[TrafficPattern] = None,
) -> SimulationStats:
    """Run one simulation and return its measurement-window statistics."""
    return WormholeSimulator(routing, config, traffic).run()
