"""The wormhole simulation engine.

A synchronous, two-phase, cycle-accurate model.  Every clock:

1. **Plan body moves** from start-of-clock state: for each worm, one
   flit may advance across every adjacent channel pair of its chain
   (1 flit/clock/channel in each direction), one flit may be consumed
   at the destination, and one flit may be fed from the source.
2. **Plan and grant header moves**: headers whose routing delay has
   elapsed request the admissible minimal output channels that are free
   (start-of-clock occupancy); requests are arbitrated in random order
   and each channel is granted at most once.  Headers whose sink is the
   destination request the consumption port instead; packets at the
   front of a source queue request the injection port plus a first
   channel.
3. **Commit** all plans, release drained tail channels and finished
   ports, collect statistics, periodically run the exact wait-for
   deadlock analysis (:meth:`WormholeSimulator.find_deadlocked_worms`),
   and generate new packets (Bernoulli per node, destinations from the
   traffic pattern).

Because plans are computed against start-of-clock state, the update is
order-independent (no switch-iteration artifacts), and because a worm
never releases a channel before its tail has drained, blocked worms
hold resources exactly as wormhole switching demands — an admitted turn
cycle *will* deadlock, which the watchdog turns into a loud
:class:`DeadlockDetected` (exercised by tests).
"""

from __future__ import annotations

from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.routing.base import RoutingFunction
from repro.simulator.config import SimulationConfig
from repro.simulator.fastpath import (
    DecisionCache,
    InjectionWheel,
    NotifyingDeque,
    ObservedSet,
)
from repro.simulator.packet import Worm
from repro.simulator.stats import SimulationStats, StatsCollector
from repro.simulator.traffic import TrafficPattern, UniformTraffic
from repro.util.rng import as_generator

FREE = -1


class DeadlockDetected(RuntimeError):
    """Wait-for analysis found worms that can never progress again."""


class LivelockSuspected(RuntimeError):
    """No flit anywhere moved for ``max_stall_clocks`` consecutive clocks.

    Complements the exact wait-for deadlock analysis: that analysis is
    deliberately optimistic about free channels, so a global stall with
    no cyclic wait (e.g. every worm waiting on a failed link that never
    gets reconfigured, or pathological arbitration starvation) does not
    trigger it.  The message carries a dump of the stuck worms.
    """


class WormholeSimulator:
    """Cycle-accurate wormhole simulation of one routing function.

    Parameters
    ----------
    routing:
        A verified :class:`~repro.routing.base.RoutingFunction`.
    config:
        Timing and workload parameters.
    traffic:
        Destination sampler; defaults to the paper's uniform pattern.

    Typical use is the one-shot :func:`simulate` helper; instantiate the
    class directly when stepping manually (tests) or inspecting state.
    """

    def __init__(
        self,
        routing: RoutingFunction,
        config: SimulationConfig,
        traffic: Optional[TrafficPattern] = None,
    ) -> None:
        self._routing = routing
        self.topology = routing.topology
        self.config = config
        self.traffic = traffic if traffic is not None else UniformTraffic(self.topology.n)
        self.rng = as_generator(config.seed)

        n = self.topology.n
        #: channel occupancy: worm pid or FREE.  A plain list, not a
        #: numpy array — the engine reads single elements in a tight
        #: Python loop, where list indexing is several times faster.
        self.channel_occ: List[int] = [FREE] * self.topology.num_channels
        #: channel sink switch, precomputed (hot-loop lookup)
        self._sink = [ch.sink for ch in self.topology.channels]
        self.injection_occ = [FREE] * n
        self.consume_occ = [FREE] * n
        #: event wheel over sources with pending injections (fast path)
        self._wheel = InjectionWheel()
        self.queues: List[Deque[Worm]] = [
            NotifyingDeque(self._wheel, s) for s in range(n)
        ]
        self.active: List[Worm] = []
        self.worms: Dict[int, Worm] = {}
        self.clock = 0
        self._next_pid = 0
        self._last_progress = 0
        self.stats = StatsCollector(self.topology)
        self._check_invariants = False
        #: optional :class:`repro.simulator.trace.TraceRecorder`
        self.tracer = None
        #: channels killed by a live fault — never granted to a header
        #: (they read FREE once drained, but arbitration skips them).
        #: Mutations invalidate the decision cache automatically.
        self.dead_channels: set = ObservedSet(self._invalidate_decisions)
        #: optional :class:`repro.faults.FaultRuntime` driving live
        #: fault injection and online reconfiguration
        self.faults = None
        #: per-epoch routing-decision cache (dead-channel-filtered
        #: candidate rows; see :class:`repro.simulator.fastpath.DecisionCache`)
        self.decision_cache = DecisionCache(routing, self.dead_channels)
        #: per-clock config constants, hoisted out of the clock loop
        #: (the config is frozen, so these never change)
        self._gen_p = config.packet_probability
        self._deadlock_interval = config.deadlock_interval
        self._max_stall = config.max_stall_clocks
        self._cap = config.buffer_flits
        self._hdr_latency = config.header_delay + config.link_delay
        self._n = n
        #: fast-path arbitration may claim grants by writing the
        #: occupancy maps in place — valid unless the selection policy
        #: reads occupancy mid-arbitration (least-congested does)
        self._occ_write = config.selection_policy != "least-congested"
        #: the live list: active worms not known-quiet, i.e. the only
        #: ones the body-plan scan must visit (fast path)
        self._live: List[Worm] = []
        #: memoized in-network header-request list and the last clock
        #: of its dirty window (fast path); reused verbatim on clean
        #: clocks since nothing that feeds it changed
        self._req_cache: Optional[List[tuple]] = None
        self._req_dirty_until = -1
        #: which step implementation runs ("reference" / "fast" /
        #: "vectorized"); resolved once — engine selection is per-run
        self.engine_name = (
            config.resolved_engine
            if hasattr(config, "resolved_engine")
            else ("fast" if getattr(config, "fast_path", True) else "reference")
        )
        if self.engine_name == "vectorized":
            # deferred import: vec_engine imports nothing from here at
            # module level, but keeping the scalar engines importable
            # without numpy-heavy extras is cheap insurance
            from repro.simulator.vec_engine import VectorizedCore

            self._vec = VectorizedCore(self)
            self._move_impl = self._vec.move
        elif self.engine_name == "batch":
            from repro.simulator.batch_engine import BatchCore

            self._vec = BatchCore(self)
            self._move_impl = self._vec.move
        elif self.engine_name == "fast":
            self._move_impl = self._move_fast
        else:
            self._move_impl = self._move_bodies_and_heads

    # ------------------------------------------------------------------
    # routing tables (epoch-atomic swap point)
    # ------------------------------------------------------------------
    @property
    def routing(self) -> RoutingFunction:
        """The installed routing tables."""
        return self._routing

    @routing.setter
    def routing(self, routing: RoutingFunction) -> None:
        """Install new tables and atomically start a new decision epoch.

        Assignment is the *only* way tables change (the fault layer's
        swap hook goes through here too), so the decision cache can
        never serve candidates computed from a previous epoch.
        """
        self._routing = routing
        self.decision_cache.attach(routing)
        self._drop_worm_memos()

    def _invalidate_decisions(self) -> None:
        """Dead-channel set changed: drop every cached decision row."""
        cache = getattr(self, "decision_cache", None)
        if cache is not None:
            cache.invalidate()
            self._drop_worm_memos()

    def _drop_worm_memos(self) -> None:
        """Clear every memoized header request (epoch change).

        Clearing eagerly at the (rare) invalidation point lets the
        per-clock loop test only ``hdr_req is not None`` instead of
        comparing epochs per worm per clock.  The cached request list
        is dropped with the memos it holds.
        """
        for w in self.active:
            w.hdr_req = None
        self._req_cache = None
        self._req_dirty_until = self.clock + self._hdr_latency

    def _wake_worm(self, w: Worm) -> None:
        """Put *w* back on the live list after an external mutation."""
        if w.quiet:
            w.quiet = False
            self._live.append(w)

    # ------------------------------------------------------------------
    # public driver
    # ------------------------------------------------------------------
    def run(self) -> SimulationStats:
        """Run warmup + measurement and return the window statistics."""
        cfg = self.config
        step = self.step
        for _ in range(cfg.warmup_clocks):
            step()
        stats = self.stats
        stats.active = True
        sample_timeline = stats.timeline_interval > 0
        for _ in range(cfg.measure_clocks):
            step()
            stats.window_clocks += 1
            if sample_timeline:
                stats.on_tick()
        backlog = sum(len(q) for q in self.queues)
        reconfigs = self.faults.records if self.faults is not None else ()
        return self.stats.finalize(queue_backlog=backlog, reconfigurations=reconfigs)

    def enable_invariant_checks(self) -> None:
        """Verify flit conservation for every worm each clock (tests)."""
        self._check_invariants = True

    def attach_faults(self, runtime) -> None:
        """Install a :class:`repro.faults.FaultRuntime` on this engine.

        The runtime is stepped at the start of every clock: it fires
        scheduled faults (killing channels, dropping/truncating the
        worms crossing them), re-injects retried packets, and swaps
        routing tables after each drain window.
        """
        if runtime.schedule.topology != self.topology:
            raise ValueError("fault schedule built for a different topology")
        self.faults = runtime

    # ------------------------------------------------------------------
    # one clock
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one clock."""
        if self.faults is not None:
            self.faults.on_clock(self)
        progressed = self._move_impl()
        if progressed:
            self._last_progress = self.clock
        interval = self._deadlock_interval
        if interval and self.clock % interval == interval - 1:
            dead = self.find_deadlocked_worms()
            if dead:
                raise DeadlockDetected(self._deadlock_report(dead))
        stall = self._max_stall
        if (
            stall is not None
            and self.clock - self._last_progress >= stall
            and (self.active or any(self.queues))
        ):
            raise LivelockSuspected(self._stall_report(stall))
        self._generate_packets()
        if self._check_invariants:
            for w in self.active:
                w.check_invariant()
        self.clock += 1

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _move_bodies_and_heads(self) -> bool:
        """One clock of flit movement — the seed *reference* implementation.

        Kept verbatim as the golden model: the fast path
        (:meth:`_move_fast`) must replay this function's decisions —
        plans, grants and RNG consumption — bit for bit, and the
        differential suite in ``tests/test_engine_equivalence.py``
        compares the two on seeded scenarios.  Selected with
        ``SimulationConfig(fast_path=False)``.
        """
        cap = self.config.buffer_flits
        stats = self.stats
        clock = self.clock
        topo = self.topology
        progressed = False

        # -- phase 1: plan body moves from start-of-clock state ---------
        # each entry: (worm, kind, index); kinds: consume / advance / feed
        body_plans: List[Tuple[Worm, str, int]] = []
        for w in self.active:
            cf = w.chain_flits
            if w.consuming and cf and cf[0] > 0:
                body_plans.append((w, "consume", 0))
            for i in range(len(cf) - 1):
                if cf[i + 1] > 0 and cf[i] < cap:
                    body_plans.append((w, "advance", i))
            if w.flits_at_source > 0 and cf and cf[-1] < cap:
                body_plans.append((w, "feed", len(cf) - 1))

        # -- phase 2: header requests on start-of-clock occupancy -------
        # in-network headers: head at front of chain[0], routing delay done
        header_requests: List[Tuple[Worm, Optional[int], Tuple[int, ...]]] = []
        for w in self.active:
            if w.consuming or not w.chain or w.head_ready_at > clock:
                continue
            head = w.chain[0]
            node = self._sink[head]
            if node == w.dst:
                header_requests.append((w, None, ()))  # consumption request
            else:
                cands = self.routing.next_hops[w.dst][head]
                header_requests.append((w, head, cands))
        # injection headers: queue fronts whose injection port is free
        for s, q in enumerate(self.queues):
            if q and self.injection_occ[s] == FREE:
                w = q[0]
                if w.head_ready_at <= clock:
                    cands = self.routing.first_hops[w.dst][s]
                    header_requests.append((w, -1, cands))

        # arbitrate in random order; each channel / consumption port
        # granted at most once per clock
        grants: List[Tuple[Worm, int, int]] = []  # (worm, origin, target)
        if header_requests:
            order = self.rng.permutation(len(header_requests))
            granted_channels: set = set()
            granted_consume: set = set()
            occ = self.channel_occ
            dead = self.dead_channels
            for idx in order:
                w, origin, cands = header_requests[idx]
                if origin is None:
                    if w.dst not in granted_consume and self.consume_occ[w.dst] == FREE:
                        granted_consume.add(w.dst)
                        grants.append((w, -2, w.dst))
                    continue
                avail = [
                    c
                    for c in cands
                    if occ[c] == FREE
                    and c not in granted_channels
                    and c not in dead
                ]
                if not avail:
                    continue
                pick = self._select(avail)
                granted_channels.add(pick)
                grants.append((w, origin, pick))

        # -- phase 3: commit -------------------------------------------
        hdr_latency = self.config.header_delay + self.config.link_delay
        # worms whose chain gained a channel at the front this clock:
        # body-plan indices (taken pre-grant) must shift by one
        shifted: set = set()

        tracer = self.tracer
        for w, origin, target in grants:
            progressed = True
            if origin == -2:  # consumption port acquired; consume header
                self.consume_occ[target] = w.pid
                w.consuming = True
                w.t_head_arrival = clock
                w.chain_flits[0] -= 1
                w.consumed += 1
                stats.on_consume(target)
                if tracer is not None:
                    tracer.record(clock, "consume", w.pid, w.src, w.dst)
            elif origin == -1:  # injection: header enters first channel
                self.channel_occ[target] = w.pid
                self.injection_occ[w.src] = w.pid
                self.queues[w.src].popleft()
                self.active.append(w)
                w.t_inject = clock
                w.chain = [target]
                w.chain_flits = [1]
                w.flits_at_source -= 1
                w.hops = 1
                w.head_ready_at = clock + hdr_latency
                stats.on_inject(w.src)
                stats.on_channel_entry(target)
                if tracer is not None:
                    tracer.record(clock, "inject", w.pid, w.src, w.dst, target)
                if w.flits_at_source == 0:
                    self.injection_occ[w.src] = FREE
            else:  # in-network hop
                self.channel_occ[target] = w.pid
                w.chain.insert(0, target)
                w.chain_flits.insert(0, 1)
                w.chain_flits[1] -= 1
                w.hops += 1
                w.head_ready_at = clock + hdr_latency
                shifted.add(w.pid)
                stats.on_channel_entry(target)
                if tracer is not None:
                    tracer.record(clock, "hop", w.pid, w.src, w.dst, target)

        for w, kind, i in body_plans:
            progressed = True
            cf = w.chain_flits
            if kind == "consume":
                cf[0] -= 1
                w.consumed += 1
                stats.on_consume(w.dst)
            elif kind == "advance":
                j = i + 1 if w.pid in shifted else i
                cf[j + 1] -= 1
                cf[j] += 1
                stats.on_channel_entry(w.chain[j])
            else:  # feed from source (always targets the tail channel)
                j = len(cf) - 1
                w.flits_at_source -= 1
                cf[j] += 1
                stats.on_inject(w.src)
                stats.on_channel_entry(w.chain[j])
                if w.flits_at_source == 0:
                    self.injection_occ[w.src] = FREE

        # -- phase 4: tail releases and completions ---------------------
        finished: List[Worm] = []
        for w in self.active:
            if w.t_inject is None:
                continue
            while (
                w.chain
                and w.flits_at_source == 0
                and w.chain_flits[-1] == 0
                and not (len(w.chain) == 1 and not w.consuming)
            ):
                cid = w.chain.pop()
                w.chain_flits.pop()
                self.channel_occ[cid] = FREE
            if w.consuming and w.consumed == w.length:
                w.t_done = clock
                self.consume_occ[w.dst] = FREE
                finished.append(w)
                if w.corrupted:
                    # a fault cut this worm's tail; the fragment drained
                    # but the packet was not delivered — hand it to the
                    # retry layer
                    stats.on_corrupted()
                    if self.faults is not None:
                        self.faults.on_packet_failure(self, w)
                else:
                    stats.on_delivered(
                        latency=w.t_done - w.t_gen,
                        header_latency=(w.t_head_arrival or clock) - w.t_gen,
                        hops=w.hops,
                    )
                if self.tracer is not None:
                    self.tracer.record(clock, "done", w.pid, w.src, w.dst)
        if finished:
            done_ids = {w.pid for w in finished}
            self.active = [w for w in self.active if w.pid not in done_ids]
            for w in finished:
                self.worms.pop(w.pid, None)
        return progressed

    def _move_fast(self) -> bool:
        """One clock of flit movement — the fast-path implementation.

        Byte-identical to :meth:`_move_bodies_and_heads` for any fixed
        seed (same plans, same grants, same RNG draws in the same
        order), but organised around the active set:

        * worms whose body provably cannot move are parked (their
          ``quiet`` flag) and only the live list — the non-quiet worms —
          is scanned for body plans: a worm's buffer state only changes
          through its own moves, so "no body plan this clock and no
          grant" implies "no body plan next clock".  Plan *order* is
          free to differ from the reference because every plan commit
          touches only its own worm's state plus commutative ``+=``
          counters;
        * header-request *order* is not free (the arbitration RNG
          permutes list indices), so the in-network request list is
          rebuilt in active order — but only on dirty clocks.  Grants,
          header ripening (a granted header re-requests after its
          routing delay), fault mutations and epoch swaps mark a dirty
          window; on the other clocks the previous list is reused
          as-is.  Each blocked worm's request tuple is additionally
          memoized on the worm (``hdr_req``) so dirty rebuilds are
          appends, not re-evaluations;
        * idle sources live on the injection event wheel instead of
          being rescanned: a source is parked while its front header
          is inside its routing delay (woken by an engine-clock timer)
          or while its injection port is busy (woken when the credit
          returns), and any queue mutation wakes it;
        * routing candidates come from the per-epoch decision cache
          (flat rows with dead channels pre-filtered), invalidated
          atomically at table swaps and dead-channel changes;
        * measurement counters are incremented inline on the
          collector's plain-list counters.
        """
        cap = self._cap
        stats = self.stats
        clock = self.clock
        occ = self.channel_occ
        sink = self._sink
        active = self.active
        rec = stats.active
        ch_flits = stats.channel_flits
        consumed_flits = stats.consumed_flits
        injected_flits = stats.injected_flits
        tracer = self.tracer

        # -- phase 1: body plans over the live (non-quiet) list --------
        # kinds: 0 = consume, 1 = advance, 2 = feed.  Worms that go
        # quiet (or retired: finished/dropped worms are marked quiet)
        # are evicted by not re-appending them; grants and fault wakes
        # re-add worms via ``_wake_worm`` / the commit loop below.
        body_plans: List[Tuple[Worm, int, int]] = []
        plans_append = body_plans.append
        new_live: List[Worm] = []
        live_append = new_live.append
        visited = 0
        for w in self._live:
            if w.quiet:
                continue
            visited += 1
            cf = w.chain_flits
            moved = False
            if w.consuming and cf and cf[0] > 0:
                plans_append((w, 0, 0))
                moved = True
            for i in range(len(cf) - 1):
                if cf[i + 1] > 0 and cf[i] < cap:
                    plans_append((w, 1, i))
                    moved = True
            if w.flits_at_source > 0 and cf and cf[-1] < cap:
                plans_append((w, 2, len(cf) - 1))
                moved = True
            if moved:
                live_append(w)
            else:
                # nothing can move until this worm's next grant
                w.quiet = True
        self._live = new_live
        if rec:
            stats.on_sched(visited, len(active))

        # -- phase 2: header requests on start-of-clock occupancy ------
        # The in-network list is reused verbatim outside the dirty
        # window (nothing that feeds it changed); the injection portion
        # depends on queues/credits and is collected fresh each clock.
        cache = self.decision_cache
        in_net = self._req_cache
        if in_net is None or clock <= self._req_dirty_until:
            next_rows = cache._next_rows
            in_net = []
            req_append = in_net.append
            for w in active:
                req = w.hdr_req
                if req is not None:
                    req_append(req)
                    continue
                if w.consuming or not w.chain or w.head_ready_at > clock:
                    continue
                head = w.chain[0]
                dst = w.dst
                if sink[head] == dst:
                    req = (w, None, ())  # consumption request
                else:
                    row = next_rows[dst]
                    if row is None:
                        row = cache.next_row(dst)
                    cands = row[head]
                    # memoize a lone candidate as the bare channel id:
                    # the arbitration discriminates on the type instead
                    # of measuring the tuple every clock
                    if len(cands) == 1:
                        cands = cands[0]
                    req = (w, head, cands)
                w.hdr_req = req
                req_append(req)
            self._req_cache = in_net
        # injection requests from the event wheel, in ascending source
        # order (matching the reference's full enumerate scan)
        wheel = self._wheel
        timers = wheel._timers
        if timers and timers[0][0] <= clock:
            wheel.advance(clock)
        inj_reqs: List[Tuple[Worm, int, Tuple[int, ...]]] = []
        if wheel.pending:
            first_rows = cache._first_rows
            inj_occ = self.injection_occ
            queues = self.queues
            for s in sorted(wheel.pending):
                q = queues[s]
                if not q:
                    wheel.sleep(s)
                    continue
                if inj_occ[s] != FREE:
                    # no injection credit: woken when the port frees
                    wheel.sleep(s)
                    continue
                w = q[0]
                if w.head_ready_at > clock:
                    wheel.park_until(s, w.head_ready_at)
                    continue
                row = first_rows[w.dst]
                if row is None:
                    row = cache.first_row(w.dst)
                cands = row[s]
                if len(cands) == 1:
                    cands = cands[0]
                inj_reqs.append((w, -1, cands))
        header_requests = in_net + inj_reqs if inj_reqs else in_net

        # arbitrate in random order (identical stream to the reference)
        grants: List[Tuple[Worm, int, int]] = []
        if header_requests:
            # .tolist() so the indices are plain ints (numpy scalars
            # box on every list index); same RNG draw either way
            order = self.rng.permutation(len(header_requests)).tolist()
            consume_occ = self.consume_occ
            grants_append = grants.append
            if self._occ_write:
                # Claim resources by writing the occupancy maps right at
                # the grant (the commit writes the same values again):
                # "free and not granted earlier this clock" collapses to
                # one FREE test.  Only safe while nothing reads the maps
                # mid-arbitration — the least-congested selection policy
                # does, so it takes the set-based branch below.
                for req in map(header_requests.__getitem__, order):
                    w, origin, cands = req
                    if origin is None:
                        dst = w.dst
                        if consume_occ[dst] == FREE:
                            consume_occ[dst] = w.pid
                            grants_append((w, -2, dst))
                        continue
                    if cands.__class__ is int:
                        # singleton candidate (the common case): no list
                        # build; a lone free candidate never draws RNG
                        if occ[cands] == FREE:
                            occ[cands] = w.pid
                            grants_append((w, origin, cands))
                        continue
                    avail = [c for c in cands if occ[c] == FREE]
                    if not avail:
                        continue
                    pick = avail[0] if len(avail) == 1 else self._select(avail)
                    occ[pick] = w.pid
                    grants_append((w, origin, pick))
            else:
                granted_channels: set = set()
                granted_consume: set = set()
                for req in map(header_requests.__getitem__, order):
                    w, origin, cands = req
                    if origin is None:
                        dst = w.dst
                        if dst not in granted_consume and consume_occ[dst] == FREE:
                            granted_consume.add(dst)
                            grants_append((w, -2, dst))
                        continue
                    if cands.__class__ is int:
                        cands = (cands,)
                    avail = [
                        c
                        for c in cands
                        if occ[c] == FREE and c not in granted_channels
                    ]
                    if not avail:
                        continue
                    pick = avail[0] if len(avail) == 1 else self._select(avail)
                    granted_channels.add(pick)
                    grants_append((w, origin, pick))

        # -- phase 3: commit -------------------------------------------
        hdr_latency = self._hdr_latency
        shifted: set = set()
        if grants:
            # the granted headers leave (or re-time) the request set
            # now and re-enter it after their routing delay
            self._req_cache = None
            self._req_dirty_until = clock + hdr_latency
        for w, origin, target in grants:
            if w.quiet:
                w.quiet = False
                live_append(w)
            w.hdr_req = None
            if origin == -2:  # consumption port acquired; consume header
                self.consume_occ[target] = w.pid
                w.consuming = True
                w.t_head_arrival = clock
                w.chain_flits[0] -= 1
                w.consumed += 1
                if rec:
                    consumed_flits[target] += 1
                if tracer is not None:
                    tracer.record(clock, "consume", w.pid, w.src, w.dst)
            elif origin == -1:  # injection: header enters first channel
                occ[target] = w.pid
                self.injection_occ[w.src] = w.pid
                self.queues[w.src].popleft()
                active.append(w)
                live_append(w)  # fresh worms are never quiet
                w.t_inject = clock
                w.chain = [target]
                w.chain_flits = [1]
                w.flits_at_source -= 1
                w.hops = 1
                w.head_ready_at = clock + hdr_latency
                if rec:
                    injected_flits[w.src] += 1
                    ch_flits[target] += 1
                if tracer is not None:
                    tracer.record(clock, "inject", w.pid, w.src, w.dst, target)
                if w.flits_at_source == 0:
                    self.injection_occ[w.src] = FREE
                    wheel.wake(w.src)
            else:  # in-network hop
                occ[target] = w.pid
                w.chain.insert(0, target)
                w.chain_flits.insert(0, 1)
                w.chain_flits[1] -= 1
                w.hops += 1
                w.head_ready_at = clock + hdr_latency
                shifted.add(w.pid)
                if rec:
                    ch_flits[target] += 1
                if tracer is not None:
                    tracer.record(clock, "hop", w.pid, w.src, w.dst, target)

        for w, kind, i in body_plans:
            cf = w.chain_flits
            if kind == 0:  # consume
                cf[0] -= 1
                w.consumed += 1
                if rec:
                    consumed_flits[w.dst] += 1
            elif kind == 1:  # advance
                j = i + 1 if w.pid in shifted else i
                cf[j + 1] -= 1
                cf[j] += 1
                if rec:
                    ch_flits[w.chain[j]] += 1
            else:  # feed from source (always targets the tail channel)
                j = len(cf) - 1
                w.flits_at_source -= 1
                cf[j] += 1
                if rec:
                    injected_flits[w.src] += 1
                    ch_flits[w.chain[j]] += 1
                if w.flits_at_source == 0:
                    self.injection_occ[w.src] = FREE
                    wheel.wake(w.src)

        # -- phase 4: tail releases and completions ---------------------
        # Only worms that moved this clock (or were touched by a fault
        # hook, which clears their quiescence) can drain or finish —
        # exactly the rebuilt live list.  Drains are per-worm
        # independent, so live order is fine; completion *emission*
        # (latency lists, retry scheduling, trace) must follow active
        # order, restored below on the rare multi-finish clock.
        finished: List[Worm] = []
        for w in new_live:
            if w.t_inject is None:
                continue
            while (
                w.chain
                and w.flits_at_source == 0
                and w.chain_flits[-1] == 0
                and not (len(w.chain) == 1 and not w.consuming)
            ):
                cid = w.chain.pop()
                w.chain_flits.pop()
                occ[cid] = FREE
            if w.consuming and w.consumed == w.length:
                w.t_done = clock
                w.quiet = True  # retire: evicts any stale live entry
                self.consume_occ[w.dst] = FREE
                finished.append(w)
        if finished:
            done_ids = {w.pid for w in finished}
            if len(finished) > 1:
                finished = [w for w in active if w.pid in done_ids]
            for w in finished:
                if w.corrupted:
                    stats.on_corrupted()
                    if self.faults is not None:
                        self.faults.on_packet_failure(self, w)
                else:
                    stats.on_delivered(
                        latency=w.t_done - w.t_gen,
                        header_latency=(w.t_head_arrival or clock) - w.t_gen,
                        hops=w.hops,
                    )
                if tracer is not None:
                    tracer.record(clock, "done", w.pid, w.src, w.dst)
            self.active = [w for w in self.active if w.pid not in done_ids]
            for w in finished:
                self.worms.pop(w.pid, None)
        return bool(grants) or bool(body_plans)

    def _select(self, avail: List[int]) -> int:
        """Pick one free candidate per the configured selection policy.

        ``random`` — uniform (the paper's rule); ``first`` — lowest
        channel id (deterministic tie-break); ``least-congested`` — the
        candidate whose *next* switch has the fewest busy output
        channels (a credit-style congestion proxy; the candidates
        themselves are free, so their own buffers are empty), ties
        broken randomly.
        """
        if len(avail) == 1:
            return avail[0]
        policy = self.config.selection_policy
        if policy == "first":
            return min(avail)
        if policy == "least-congested":
            occ = self.channel_occ
            topo = self.topology

            def busy(c: int) -> int:
                return sum(
                    1
                    for o in topo.output_channels(self._sink[c])
                    if occ[o] != FREE
                )

            scores = [busy(c) for c in avail]
            best = min(scores)
            avail = [c for c, s_ in zip(avail, scores) if s_ == best]
            if len(avail) == 1:
                return avail[0]
        return avail[int(self.rng.integers(len(avail)))]

    def _generate_packets(self) -> None:
        p = self._gen_p
        if p <= 0.0:
            return
        hits = np.nonzero(self.rng.random(self._n) < p)[0]
        if hits.size == 0:
            return
        cfg = self.config
        dead_switches = (
            self.faults.dead_switches if self.faults is not None else ()
        )
        for s in hits.tolist():
            if s in dead_switches:
                continue  # a failed switch generates nothing
            if cfg.max_queue is not None and len(self.queues[s]) >= cfg.max_queue:
                self.stats.on_generate(dropped=True)
                continue
            dst = self.traffic.destination(s, self.rng)
            if dst in dead_switches:
                # addressed to a failed host: lost at generation time
                self.stats.on_generate()
                self.stats.on_lost()
                continue
            length = cfg.sample_length(self.rng)
            w = Worm(self._next_pid, s, dst, length, self.clock)
            self._next_pid += 1
            self.worms[w.pid] = w
            self.queues[s].append(w)
            self.stats.on_generate()
            if self.tracer is not None:
                self.tracer.record(self.clock, "gen", w.pid, w.src, w.dst)

    def find_deadlocked_worms(self) -> List[Worm]:
        """Exact wait-for analysis: worms that can never progress again.

        A worm is *live* when it is consuming, its header is still in
        flight, or some admissible candidate resource (next channel or
        the destination's consumption port) is free or held by a live
        worm (a live holder eventually drains past and releases).  The
        greatest fixpoint of this rule marks everything that can still
        move; the worms left over hold channels and wait, directly or
        transitively, only on each other — a wormhole deadlock (the
        cyclic-wait witness of the turn-cycle condition).  Returns the
        non-live worms (empty for any verified deadlock-free routing).
        """
        injected = [w for w in self.active if w.chain]
        live: Dict[int, bool] = {}
        for w in injected:
            if w.consuming or w.head_ready_at > self.clock:
                live[w.pid] = True
        occupant = self.channel_occ
        changed = True
        while changed:
            changed = False
            for w in injected:
                if live.get(w.pid):
                    continue
                head = w.chain[0]
                node = self._sink[head]
                if node == w.dst:
                    holder = self.consume_occ[node]
                    ok = holder == FREE or live.get(holder, False)
                else:
                    ok = any(
                        occupant[c] == FREE or live.get(occupant[c], False)
                        for c in self.routing.next_hops[w.dst][head]
                    )
                if ok:
                    live[w.pid] = True
                    changed = True
        return [w for w in injected if not live.get(w.pid)]

    # ------------------------------------------------------------------
    # fault hooks (driven by repro.faults.FaultRuntime)
    # ------------------------------------------------------------------
    def _fault_kill_link(self, link: Tuple[int, int], policy: str) -> List[Worm]:
        """Kill both channels of *link*; handle worms crossing it.

        ``drop`` removes a crossing worm outright (all resources freed
        instantly — an idealised abort signal).  ``drain`` keeps the
        fragment on the destination side of the break: flits already
        across the failed link continue to the destination and release
        their channels naturally, while the tail side is reclaimed; the
        fragment is marked ``corrupted`` and reported to the retry
        layer when it finishes draining.  Returns the worms removed
        *now* (drain fragments are reported later, at completion).
        """
        u, v = link
        cids = (self.topology.channel_id(u, v), self.topology.channel_id(v, u))
        self.dead_channels.update(cids)
        removed: List[Worm] = []
        for w in list(self.active):
            k = next((i for i, c in enumerate(w.chain) if c in cids), None)
            if k is None:
                continue
            if policy == "drain":
                # flits buffered in chain[k] already crossed the link
                # (they sit in the sink-side input buffer), so the
                # fragment keeps indices 0..k and loses everything
                # upstream of the break
                kept = w.chain_flits[: k + 1]
                if sum(kept) > 0 or w.consuming:
                    for c in w.chain[k + 1 :]:
                        self.channel_occ[c] = FREE
                    if self.injection_occ[w.src] == w.pid:
                        self.injection_occ[w.src] = FREE
                        self._wheel.wake(w.src)
                    w.chain = w.chain[: k + 1]
                    w.chain_flits = kept
                    w.flits_at_source = 0
                    w.length = w.consumed + sum(kept)
                    w.corrupted = True
                    # truncation rewrote the buffer state: rescan, and
                    # the memoized header request may predate the cut
                    self._wake_worm(w)
                    w.hdr_req = None
                    self._req_cache = None
                    self._req_dirty_until = self.clock + self._hdr_latency
                    if self.tracer is not None:
                        self.tracer.record(
                            self.clock, "truncate", w.pid, w.src, w.dst
                        )
                    continue
            self._drop_worm(w)
            removed.append(w)
        return removed

    def _fault_restore_link(self, link: Tuple[int, int]) -> None:
        """Revive both channels of *link* (a flap's UP edge).

        The channels become *grantable* again immediately, but carry no
        traffic until a reconfiguration installs tables that reference
        them.
        """
        u, v = link
        self.dead_channels.discard(self.topology.channel_id(u, v))
        self.dead_channels.discard(self.topology.channel_id(v, u))

    def _fault_kill_switch(self, v: int, policy: str) -> List[Worm]:
        """Kill switch *v*: all incident links, plus traffic bound to it.

        Removes queued packets at *v*, active worms destined to *v*
        (their consumption port is gone for good), and active worms
        sourced at *v* that still have flits to feed.  Returns every
        worm removed, including those taken out by the incident-link
        kills.
        """
        removed: List[Worm] = []
        for nb in self.topology.neighbors(v):
            link = (v, nb) if v < nb else (nb, v)
            if self.topology.channel_id(link[0], link[1]) in self.dead_channels:
                continue
            removed.extend(self._fault_kill_link(link, policy))
        for w in self.queues[v]:
            self.worms.pop(w.pid, None)
            removed.append(w)
        self.queues[v].clear()
        for w in list(self.active):
            if w.dst == v or (w.src == v and w.flits_at_source > 0):
                self._drop_worm(w)
                removed.append(w)
        return removed

    def _fault_swap_routing(self, routing: RoutingFunction) -> None:
        """Atomically install reconfigured routing tables.

        *routing* must be remapped to this engine's (full) topology
        channel-id space — see
        :func:`repro.faults.controller.remap_routing`.
        """
        if routing.topology != self.topology:
            raise ValueError("swapped routing must be remapped to the full topology")
        self.routing = routing

    def _fault_eject_stranded(self) -> Tuple[List[Worm], List[Worm]]:
        """Drop worms and queued packets the new tables cannot carry.

        A worm survives the swap only if its *held chain* is a path the
        new routing function could itself have produced (each adjacent
        channel pair is an admissible new-epoch turn) and its head
        still has a way forward.  Ejecting nonconforming worms restores
        the Dally-Seitz induction for the new epoch — every remaining
        hold and every wait follows the new (verified acyclic) channel
        dependency graph, so the transition cannot introduce a deadlock
        through mixed-epoch ("ghost") dependencies.  Queued packets
        whose destination became unroutable (endpoint died) are
        cancelled.  Returns ``(ejected worms, cancelled packets)``.
        """
        ejected: List[Worm] = []
        for w in list(self.active):
            if w.consuming or not w.chain:
                continue
            if not self._chain_conforms(w):
                self._drop_worm(w)
                ejected.append(w)
        cancelled: List[Worm] = []
        for s, q in enumerate(self.queues):
            if not q:
                continue
            stranded = [w for w in q if not self.routing.first_hops[w.dst][s]]
            if stranded:
                kept = [w for w in q if self.routing.first_hops[w.dst][s]]
                q.clear()
                q.extend(kept)
                for w in stranded:
                    self.worms.pop(w.pid, None)
                cancelled.extend(stranded)
        return ejected, cancelled

    def _chain_conforms(self, w: Worm) -> bool:
        """Is *w*'s held chain a valid path under the current tables?"""
        nh = self.routing.next_hops[w.dst]
        for i in range(len(w.chain) - 1, 0, -1):
            if w.chain[i - 1] not in nh[w.chain[i]]:
                return False
        head = w.chain[0]
        if self._sink[head] == w.dst:
            return True
        return bool(nh[head])

    def _drop_worm(self, w: Worm) -> None:
        """Remove *w* from the network, freeing every held resource."""
        for c in w.chain:
            self.channel_occ[c] = FREE
        if w.consuming:
            self.consume_occ[w.dst] = FREE
        if self.injection_occ[w.src] == w.pid:
            self.injection_occ[w.src] = FREE
            self._wheel.wake(w.src)
        w.chain = []
        w.chain_flits = []
        self.active.remove(w)
        self.worms.pop(w.pid, None)
        w.quiet = True  # retire: evicts any stale live entry
        w.hdr_req = None
        self._req_cache = None
        self._req_dirty_until = self.clock + self._hdr_latency
        if self.tracer is not None:
            self.tracer.record(self.clock, "drop", w.pid, w.src, w.dst)

    def _fault_requeue(
        self, src: int, dst: int, length: int, logical_id: int,
        attempts: int, t_gen: int,
    ) -> Worm:
        """Re-enqueue a retried packet at its source (retry layer)."""
        w = Worm(self._next_pid, src, dst, length, t_gen)
        self._next_pid += 1
        w.logical_id = logical_id
        w.attempts = attempts
        w.head_ready_at = self.clock
        self.worms[w.pid] = w
        self.queues[src].append(w)
        if self.tracer is not None:
            self.tracer.record(self.clock, "retry", w.pid, src, dst)
        return w

    def _stall_report(self, stall: int) -> str:
        stuck = [
            (w.pid, w.src, w.dst, list(zip(w.chain, w.chain_flits)))
            for w in self.active[:6]
        ]
        queued = sum(len(q) for q in self.queues)
        return (
            f"no flit moved for {stall} clocks (clock {self.clock}, last "
            f"progress {self._last_progress}) with {len(self.active)} worms "
            f"active and {queued} packets queued; worm dump: {stuck}"
        )

    def _deadlock_report(self, dead: List[Worm]) -> str:
        held = [
            (w.pid, w.src, w.dst, list(zip(w.chain, w.chain_flits)))
            for w in dead
        ]
        return (
            f"wait-for analysis at clock {self.clock}: {len(dead)} worms "
            f"can never progress (cyclic channel wait), e.g. {held[:4]}"
        )


def simulate(
    routing: RoutingFunction,
    config: SimulationConfig,
    traffic: Optional[TrafficPattern] = None,
) -> SimulationStats:
    """Run one simulation and return its measurement-window statistics."""
    return WormholeSimulator(routing, config, traffic).run()
