"""Packet-event tracing.

IRFlexSim-style simulators emit per-packet event logs for debugging and
for post-hoc analyses the aggregate statistics cannot answer (where did
*this* packet wait?).  :class:`TraceRecorder` plugs into the engines as
an optional observer: the engine calls :meth:`record` on header events
and the recorder keeps a bounded, structured log.

Events
------
``gen``      packet generated (enters the source queue)
``inject``   header leaves the source into its first channel
``hop``      header acquires the next channel
``consume``  header reaches the destination's consumption port
``done``     last flit consumed

The recorder is deliberately engine-agnostic (events carry plain ints),
costs one method call per *header* event — body flits are not traced —
and drops the oldest packets once ``max_packets`` is reached.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

EVENTS = ("gen", "inject", "hop", "consume", "done")


@dataclass
class PacketTrace:
    """The event list of one packet."""

    pid: int
    src: int
    dst: int
    events: List[Tuple[int, str, Optional[int]]] = field(default_factory=list)
    # (clock, event, channel-or-None)

    def waiting_time(self) -> int:
        """Clocks between generation and injection (source queueing)."""
        t = {e: clock for clock, e, _c in self.events}
        if "gen" in t and "inject" in t:
            return t["inject"] - t["gen"]
        return 0

    def network_time(self) -> Optional[int]:
        """Clocks from injection to completion, if the packet finished."""
        t = {e: clock for clock, e, _c in self.events}
        if "inject" in t and "done" in t:
            return t["done"] - t["inject"]
        return None

    def path(self) -> List[int]:
        """Channels the header traversed, in order."""
        return [c for _clock, e, c in self.events if e in ("inject", "hop")]

    def per_hop_delays(self) -> List[int]:
        """Clocks between consecutive header acquisitions (stall profile)."""
        clocks = [
            clock for clock, e, _c in self.events if e in ("inject", "hop", "consume")
        ]
        return [b - a for a, b in zip(clocks, clocks[1:])]


class TraceRecorder:
    """Bounded per-packet event log.

    Attach to an engine with ``sim.tracer = TraceRecorder(...)``; both
    engines call :meth:`record` if a tracer is set.  Iterating the
    recorder yields :class:`PacketTrace` objects in insertion order.
    """

    def __init__(self, max_packets: int = 10_000) -> None:
        if max_packets < 1:
            raise ValueError("max_packets must be >= 1")
        self.max_packets = max_packets
        self._traces: "OrderedDict[int, PacketTrace]" = OrderedDict()

    def record(
        self,
        clock: int,
        event: str,
        pid: int,
        src: int,
        dst: int,
        channel: Optional[int] = None,
    ) -> None:
        """Append one event (unknown event names are rejected)."""
        if event not in EVENTS:
            raise ValueError(f"unknown trace event {event!r}")
        trace = self._traces.get(pid)
        if trace is None:
            trace = PacketTrace(pid=pid, src=src, dst=dst)
            self._traces[pid] = trace
            while len(self._traces) > self.max_packets:
                self._traces.popitem(last=False)
        trace.events.append((clock, event, channel))

    def get(self, pid: int) -> Optional[PacketTrace]:
        """The trace of packet *pid*, if still retained."""
        return self._traces.get(pid)

    def __iter__(self):
        return iter(self._traces.values())

    def __len__(self) -> int:
        return len(self._traces)

    def summary(self) -> Dict[str, float]:
        """Aggregates over completed traced packets."""
        finished = [t for t in self if t.network_time() is not None]
        if not finished:
            return {"packets": 0.0}
        waits = [t.waiting_time() for t in finished]
        nets = [t.network_time() for t in finished]
        return {
            "packets": float(len(finished)),
            "mean_wait": sum(waits) / len(waits),
            "mean_network_time": sum(nets) / len(nets),  # type: ignore[arg-type]
            "max_network_time": float(max(nets)),  # type: ignore[arg-type]
        }
