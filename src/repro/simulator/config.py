"""Simulation configuration.

One frozen dataclass holds every knob of the wormhole engine, with
defaults matching the paper's Section 5 setup (128-flit packets,
one-clock link/routing/transfer delays, uniform traffic).  Experiment
presets (paper / midscale / quick) build on top of this in
:mod:`repro.experiments.configs`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional

#: engines whose results are byte-identical for a fixed seed (same
#: ``canonical_digest``), enforced by the differential golden suite
BIT_EXACT_ENGINES = ("reference", "fast", "vectorized")
#: engines under the *relaxed* statistical contract: deterministic per
#: seed, but certified distributionally (``statistical_fingerprint`` +
#: the equivalence gate) instead of per-draw digest equality
RELAXED_ENGINES = ("batch",)
#: step implementations selectable via :attr:`SimulationConfig.engine`
ENGINES = BIT_EXACT_ENGINES + RELAXED_ENGINES


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of one wormhole simulation run.

    Attributes
    ----------
    packet_length:
        Flits per packet, header included (paper: 128).
    injection_rate:
        Offered load in flits/clock/node.  Each clock every node
        generates a packet with probability ``injection_rate /
        packet_length`` (Bernoulli process; expectation matches the
        offered load).
    warmup_clocks, measure_clocks:
        Statistics are reset after the warmup and collected for the
        measurement window; the run lasts their sum.
    buffer_flits:
        Input-buffer capacity per channel in flits.  The default 2 lets
        a steady worm stream at 1 flit/clock under the two-phase update
        (capacity 1 would model a bufferless pipeline at half rate).
    header_delay:
        Clocks between a header reaching the front of a buffer and the
        flit moving on: 1 clock routing/arbitration + 1 clock
        input-to-output transfer (paper's accounting).
    link_delay:
        Clocks a flit spends on the wire after leaving a switch.
    seed:
        Random seed for traffic, adaptive tie-breaks and arbitration.
    deadlock_interval:
        Watchdog: raise if no flit moves for this many consecutive
        clocks while worms hold channels.  ``0`` disables the check.
    max_stall_clocks:
        Livelock/stall watchdog: raise
        :class:`~repro.simulator.engine.LivelockSuspected` (with a dump
        of the stuck worms) when *no* flit anywhere has moved for this
        many consecutive clocks while traffic is pending.  Catches
        global stalls the exact wait-for deadlock analysis deliberately
        does not flag — e.g. worms waiting on a failed link during a
        fault's drain window that never get reconfigured.  ``None``
        (default) disables the check.
    max_queue:
        Optional cap on per-node injection queues (``None`` =
        unbounded); when capped, generation at a full queue is dropped
        and counted, modelling a finite-source experiment.
    selection_policy:
        How a header picks among several *free* admissible candidates:
        ``"random"`` (the paper: "one of them is selected randomly"),
        ``"first"`` (deterministic: lowest channel id), or
        ``"least-congested"`` (emptiest downstream buffer, ties random)
        — a common router heuristic, exposed for ablation.
    length_mix:
        Optional bimodal/multimodal packet-length distribution: a tuple
        of ``(length, weight)`` pairs sampled per packet.  ``None``
        (default) uses the fixed *packet_length*.  The offered load in
        flits/clock/node is preserved: the per-clock generation
        probability uses the *mean* length of the mix.
    fast_path:
        Select the engines' step implementation.  ``True`` (default)
        runs the active-set scheduler with the per-epoch
        routing-decision cache (:mod:`repro.simulator.fastpath`);
        ``False`` runs the seed reference implementation.  Both produce
        **byte-identical** statistics for a fixed seed — enforced by the
        differential golden suite — so this knob only trades speed for
        auditability.
    engine:
        Explicit step-implementation selector, superseding *fast_path*
        when set: ``"reference"`` (the seed golden model), ``"fast"``
        (active-set scheduler), ``"vectorized"`` (struct-of-arrays
        numpy core, :mod:`repro.simulator.vec_engine`) or ``"batch"``
        (fully batched relaxed-equivalence core,
        :mod:`repro.simulator.batch_engine`).  The first three are
        **bit-identical** for a fixed seed (same ``canonical_digest``),
        enforced by the differential golden suite; ``"batch"`` is
        deterministic per seed but satisfies a *statistical* contract —
        its aggregate distributions are certified against the bit-exact
        oracles by :mod:`repro.simulator.equivalence`, and its results
        carry a ``statistical_fingerprint`` instead of a canonical
        digest.  ``None`` (default) falls back to the ``REPRO_ENGINE``
        environment variable if set, else to *fast_path*.  The VC
        engine has no vectorized body phase (its body commits are
        RNG-ordered under shared link budgets); ``"vectorized"`` and
        ``"batch"`` there select the fast path.
    """

    packet_length: int = 128
    injection_rate: float = 0.1
    warmup_clocks: int = 5_000
    measure_clocks: int = 15_000
    buffer_flits: int = 2
    header_delay: int = 2
    link_delay: int = 1
    seed: Optional[int] = 0
    deadlock_interval: int = 2_000
    max_stall_clocks: Optional[int] = None
    max_queue: Optional[int] = None
    selection_policy: str = "random"
    length_mix: Optional[tuple] = None
    fast_path: bool = True
    engine: Optional[str] = None
    #: seed-replica count for the replica-batched driver
    #: (:func:`repro.simulator.replica_batch.run_replicated`).  ``None``
    #: or 1 means a plain single run; R > 1 stacks R seed-replicas of
    #: this scenario into one fused array sweep.  Only meaningful with
    #: ``engine="batch"`` — the scalar/bit-exact engines ignore it.
    replicas: Optional[int] = None

    def __post_init__(self) -> None:
        if self.packet_length < 1:
            raise ValueError("packet_length must be >= 1")
        if self.injection_rate < 0:
            raise ValueError("injection_rate must be >= 0")
        if self.injection_rate / self.packet_length > 1.0:
            raise ValueError(
                "injection_rate implies more than one packet per clock "
                "per node; raise packet_length or lower the rate"
            )
        if self.buffer_flits < 1:
            raise ValueError("buffer_flits must be >= 1")
        if self.header_delay < 0 or self.link_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.warmup_clocks < 0 or self.measure_clocks <= 0:
            raise ValueError("need a positive measurement window")
        if self.max_stall_clocks is not None and self.max_stall_clocks <= 0:
            raise ValueError("max_stall_clocks must be positive (or None)")
        if self.selection_policy not in ("random", "first", "least-congested"):
            raise ValueError(
                f"unknown selection policy {self.selection_policy!r}"
            )
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; pick one of {ENGINES}"
            )
        if self.replicas is not None and self.replicas < 1:
            raise ValueError("replicas must be >= 1 (or None)")
        if self.length_mix is not None:
            mix = tuple(self.length_mix)
            if not mix:
                raise ValueError("length_mix must be non-empty when given")
            for length, weight in mix:
                if int(length) < 1 or weight <= 0:
                    raise ValueError(
                        f"bad length_mix entry ({length}, {weight})"
                    )
            object.__setattr__(self, "length_mix", mix)

    @property
    def mean_packet_length(self) -> float:
        """Mean flits per packet (the mix mean, or *packet_length*)."""
        if self.length_mix is None:
            return float(self.packet_length)
        total_w = sum(w for _l, w in self.length_mix)
        return sum(int(l) * w for l, w in self.length_mix) / total_w

    def sample_length(self, rng) -> int:
        """Draw one packet length (fixed, or from the mix)."""
        if self.length_mix is None:
            return self.packet_length
        weights = [w for _l, w in self.length_mix]
        total = sum(weights)
        x = rng.random() * total
        acc = 0.0
        for length, weight in self.length_mix:
            acc += weight
            if x < acc:
                return int(length)
        return int(self.length_mix[-1][0])

    @property
    def total_clocks(self) -> int:
        """Run length: warmup plus measurement."""
        return self.warmup_clocks + self.measure_clocks

    @property
    def packet_probability(self) -> float:
        """Per-node, per-clock Bernoulli generation probability.

        Uses the mean packet length so the offered load (in
        flits/clock/node) is exactly *injection_rate* under any
        ``length_mix``.
        """
        return self.injection_rate / self.mean_packet_length

    def with_rate(self, injection_rate: float) -> "SimulationConfig":
        """Copy of this config at a different offered load."""
        return replace(self, injection_rate=injection_rate)

    def with_seed(self, seed: Optional[int]) -> "SimulationConfig":
        """Copy of this config with a different seed."""
        return replace(self, seed=seed)

    @property
    def resolved_engine(self) -> str:
        """The step implementation this config selects.

        Precedence: the explicit :attr:`engine` field, then the
        ``REPRO_ENGINE`` environment variable (lets CI and campaign
        operators route default-configured runs through a different
        engine without touching code), then :attr:`fast_path`.
        """
        if self.engine is not None:
            return self.engine
        env = os.environ.get("REPRO_ENGINE")
        if env:
            if env not in ENGINES:
                raise ValueError(
                    f"REPRO_ENGINE={env!r} is not one of {ENGINES}"
                )
            return env
        return "fast" if self.fast_path else "reference"

    def with_fast_path(self, fast_path: bool) -> "SimulationConfig":
        """Copy of this config selecting the engine step implementation.

        Pins :attr:`engine` explicitly (not just the boolean) so
        differential scenarios stay pinned even under a ``REPRO_ENGINE``
        environment override.
        """
        return replace(
            self,
            fast_path=fast_path,
            engine="fast" if fast_path else "reference",
        )

    def with_engine(self, engine: Optional[str]) -> "SimulationConfig":
        """Copy of this config pinned to a step implementation."""
        return replace(self, engine=engine)
