"""Traffic patterns.

The paper assumes "a uniform traffic pattern"; :class:`UniformTraffic`
is the default everywhere.  Two further classics are provided for the
extension studies: :class:`HotspotTraffic` (Pfister & Norton — the very
phenomenon the paper's "degree of hot spots" metric is named after) and
:class:`BitComplementTraffic` (a fixed permutation that stresses
specific paths).
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence

import numpy as np


class TrafficPattern(Protocol):
    """Destination sampler: one call per generated packet."""

    def destination(self, src: int, rng: np.random.Generator) -> int:
        """A destination switch for a packet injected at *src* (!= src)."""
        ...


class UniformTraffic:
    """Uniform random destinations over all switches except the source."""

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError("uniform traffic needs at least two switches")
        self.n = n

    def destination(self, src: int, rng: np.random.Generator) -> int:
        d = int(rng.integers(self.n - 1))
        return d if d < src else d + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformTraffic(n={self.n})"


class HotspotTraffic:
    """Uniform traffic with extra probability mass on hotspot switches.

    With probability *fraction* the destination is drawn uniformly from
    *hotspots*; otherwise uniformly from everyone else (source always
    excluded — a draw landing on the source is resampled from the
    uniform background).
    """

    def __init__(self, n: int, hotspots: Sequence[int], fraction: float = 0.2) -> None:
        if not hotspots:
            raise ValueError("need at least one hotspot switch")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        if any(not 0 <= h < n for h in hotspots):
            raise ValueError("hotspot out of range")
        self.n = n
        self.hotspots = tuple(hotspots)
        self.fraction = fraction
        self._uniform = UniformTraffic(n)

    def destination(self, src: int, rng: np.random.Generator) -> int:
        if rng.random() < self.fraction:
            d = int(self.hotspots[int(rng.integers(len(self.hotspots)))])
            if d != src:
                return d
        return self._uniform.destination(src, rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HotspotTraffic(n={self.n}, hotspots={self.hotspots}, "
            f"fraction={self.fraction})"
        )


class TornadoTraffic:
    """Fixed stride: node ``i`` sends to ``(i + n//2 - ...)`` — here the
    classic tornado offset ``(i + ceil(n/2) - 1) mod n``.

    Designed to defeat locality; on rings/tori it concentrates load on
    one rotational direction.  Falls back to uniform if the offset maps
    a node to itself (n == 1 edge case aside, it never does for n > 2).
    """

    def __init__(self, n: int) -> None:
        if n < 3:
            raise ValueError("tornado traffic needs at least 3 switches")
        self.n = n
        self.offset = (n + 1) // 2 - 1
        self._uniform = UniformTraffic(n)

    def destination(self, src: int, rng: np.random.Generator) -> int:
        d = (src + self.offset) % self.n
        if d == src:
            return self._uniform.destination(src, rng)
        return d

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TornadoTraffic(n={self.n}, offset={self.offset})"


class LocalTraffic:
    """Destination ids near the source: uniform over ``src ± radius``.

    Switch ids carry no physical locality in a random irregular
    network, but under the generator's id-agnostic sampling this still
    produces a *skewed, fixed* communication set per node — a stand-in
    for application locality.  ``radius`` counts id distance (wrapping).
    """

    def __init__(self, n: int, radius: int = 2) -> None:
        if n < 2:
            raise ValueError("local traffic needs at least two switches")
        if radius < 1:
            raise ValueError("radius must be >= 1")
        self.n = n
        self.radius = min(radius, (n - 1) // 2 if n > 2 else 1)

    def destination(self, src: int, rng: np.random.Generator) -> int:
        r = self.radius
        offset = int(rng.integers(1, 2 * r + 1))  # 1..2r
        delta = offset - r - 1 if offset <= r else offset - r
        return (src + delta) % self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalTraffic(n={self.n}, radius={self.radius})"


class BitComplementTraffic:
    """Fixed permutation: node ``i`` sends to ``n - 1 - i``.

    A node mapped to itself (odd ``n`` midpoint) falls back to uniform.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self._uniform = UniformTraffic(n)

    def destination(self, src: int, rng: np.random.Generator) -> int:
        d = self.n - 1 - src
        if d == src:
            return self._uniform.destination(src, rng)
        return d

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitComplementTraffic(n={self.n})"
