"""Struct-of-arrays flit state for the vectorized engine.

The scalar engines walk per-worm channel chains (Python lists) every
clock.  The vectorized engine keeps the same information as three flat
numpy arrays over a *unified channel id space* so one batched update
rule covers consumption, in-network advances and source feeds alike:

``k in [0, C)``
    the topology's real channels (``C = num_channels``);
``k in [C, C+S)``
    one *source pseudo-channel* per switch (``S = n``): the flits a
    worm still holds at its source processor.  Its downstream is the
    worm's tail channel, so "feed from source" is just an advance;
``k in [C+S, C+2S)``
    one *sink pseudo-channel* per switch: flits consumed at the
    destination.  Its capacity is unbounded (the consumption port
    never back-pressures a streaming worm), so "consume" is an advance
    into the sink;
``k = C+2S`` (the *dummy*)
    a parking target with capacity 0.  Every worm's head channel points
    here until a grant redirects it, which is exactly what blocks the
    header flit from advancing on its own.

Arrays:

* ``flits[k]`` — flit count buffered in channel *k* (monotone counter
  for sink slots);
* ``dn[k]`` — the downstream channel of *k*: the next channel toward
  the head for a held chain channel, the tail channel for a feeding
  source slot, the sink slot for a consuming head, the dummy for a
  parked head.  Only meaningful while ``flits[k] > 0`` or *k* is held;
* ``cap_at[k]`` — receive capacity of *k* (``buffer_flits`` for real
  channels, unbounded for sinks, 0 for the dummy);
* ``occ[k]`` — numpy mirror of the engine's ``channel_occ`` list over
  real channels (worm pid or ``FREE``), kept in lockstep at the scalar
  grant/release points so arbitration can gather occupancy in bulk.

One clock of body movement is then a single masked scatter::

    m = (flits > 0) & (flits[dn] < cap_at[dn])     # start-of-clock plan
    flits[m] -= 1; flits[dn[m]] += 1               # commit

The scatter targets are provably unique: channels of distinct worms
are disjoint, a chain is a simple path (one upstream per channel), a
source slot feeds only its worm's tail, and at most one worm consumes
per switch — so plain fancy-indexed ``+= 1`` is exact, with no
``np.add.at`` needed.

The arrays are *authoritative for flit counts* between rebuilds; worm
objects keep identity state (chain membership, timestamps, consuming)
maintained at the scalar grant/release paths.  :meth:`ArrayState.sync_worms`
writes counts back onto the objects (before fault hooks, invariant
checks and reports), and :meth:`ArrayState.rebuild` reconstructs every
array from the objects — the atomic epoch-invalidation contract after
a fault hook mutates worm state, mirroring the decision cache's epoch
semantics.
"""

from __future__ import annotations

import numpy as np

FREE = -1  # must match repro.simulator.engine.FREE


class ArrayState:
    """Flat flit/topology arrays over the unified channel id space."""

    __slots__ = (
        "C", "S", "SRC0", "SINK0", "D", "K",
        "flits", "dn", "cap_at", "cap_dn", "occ", "cap", "cap_sink",
    )

    def __init__(self, num_channels: int, n: int, buffer_flits: int) -> None:
        C, S = num_channels, n
        self.C = C
        self.S = S
        self.SRC0 = C
        self.SINK0 = C + S
        self.D = C + 2 * S
        self.K = self.D + 1
        #: the three capacity constants, for incremental cap_dn upkeep
        self.cap = buffer_flits
        self.cap_sink = np.iinfo(np.int64).max // 2
        self.flits = np.zeros(self.K, dtype=np.int64)
        self.dn = np.full(self.K, self.D, dtype=np.int64)
        cap_at = np.full(self.K, buffer_flits, dtype=np.int64)
        cap_at[self.SINK0 : self.D] = self.cap_sink
        cap_at[self.D] = 0
        self.cap_at = cap_at
        #: ``cap_at[dn]``, maintained incrementally at every ``dn``
        #: write — saves one length-K gather per clock in the hot mask
        self.cap_dn = cap_at[self.dn]
        self.occ = np.full(C, FREE, dtype=np.int64)

    # ------------------------------------------------------------------
    def rebuild(self, sim) -> None:
        """Reconstruct every array from the Worm objects (epoch swap).

        Called after any external mutation of worm/occupancy state (a
        fault hook dropping or truncating worms); the worm objects must
        be coherent first — the vectorized engine syncs them before
        running the hook, and the hook's own edits are by construction
        object-level.  One atomic rebuild replaces any incremental
        patching, so no array entry can ever mix pre- and post-event
        state.
        """
        f = self.flits
        dn = self.dn
        f[:] = 0
        dn[:] = self.D
        self.occ[:] = np.asarray(sim.channel_occ, dtype=np.int64)
        SRC0, SINK0, D = self.SRC0, self.SINK0, self.D
        inj = sim.injection_occ
        for w in sim.active:
            ch = w.chain
            if not ch:
                continue
            cf = w.chain_flits
            for i, c in enumerate(ch):
                f[c] = cf[i]
                if i:
                    dn[c] = ch[i - 1]
                else:
                    dn[c] = SINK0 + w.dst if w.consuming else D
            if inj[w.src] == w.pid and w.flits_at_source > 0:
                s = SRC0 + w.src
                f[s] = w.flits_at_source
                dn[s] = ch[-1]
        self.cap_dn[:] = self.cap_at[dn]

    def sync_worms(self, sim) -> None:
        """Write the array flit counts back onto the Worm objects.

        Restores the scalar engines' object contract (``chain_flits``,
        ``flits_at_source``, ``consumed``) so fault hooks, invariant
        checks and diagnostic reports can read worm state exactly as
        they do under the scalar engines.
        """
        f = self.flits
        SRC0 = self.SRC0
        inj = sim.injection_occ
        for w in sim.active:
            cf = [int(f[c]) for c in w.chain]
            w.chain_flits = cf
            fas = int(f[SRC0 + w.src]) if inj[w.src] == w.pid else 0
            w.flits_at_source = fas
            w.consumed = w.length - fas - sum(cf)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        held = int(np.count_nonzero(self.flits[: self.C]))
        return f"ArrayState(C={self.C}, S={self.S}, held_channels={held})"


def stack_states(states):
    """Re-home R per-replica :class:`ArrayState`s into stacked storage.

    Allocates C-contiguous ``(R, K)`` arrays holding every replica's
    ``flits`` / ``dn`` / ``cap_at`` / ``cap_dn``, copies the current
    per-replica contents in, and rebinds each state's attributes to its
    *row view* of the stack.  Because the rows are views, all existing
    scalar code paths (grant commits, drains, :meth:`ArrayState.rebuild`,
    which writes in place) keep working unchanged on the shared memory,
    while the replica driver sweeps all rows at once through the flat
    ``.reshape(-1)`` aliases.

    ``occ`` is *not* stacked: the batch core rebinds it as a view of
    its own extended-occupancy array, which stays per replica.

    All states must have identical geometry (same K); returns the four
    stacked arrays ``(flits, dn, cap_at, cap_dn)``.
    """
    K = states[0].K
    if any(st.K != K for st in states):
        raise ValueError("stack_states requires identical state geometry")
    flits = np.stack([st.flits for st in states])
    dn = np.stack([st.dn for st in states])
    cap_at = np.stack([st.cap_at for st in states])
    cap_dn = np.stack([st.cap_dn for st in states])
    for r, st in enumerate(states):
        st.flits = flits[r]
        st.dn = dn[r]
        st.cap_at = cap_at[r]
        st.cap_dn = cap_dn[r]
    return flits, dn, cap_at, cap_dn
