"""Generic per-switch prohibited-turn release engine.

This is the algorithmic core of the paper's Phase-3 ``cycle_detection``
(Section 4.3), factored so that any turn-model routing can reuse it: the
DOWN/UP wrapper with the paper's candidate turns lives in
:mod:`repro.core.cycle_detection`; the L-turn and Left-Right baselines
call it with their own candidates.

For every switch and every (input channel, output channel) pair whose
class pair is among the *candidates*, the engine releases the prohibited
turn unless doing so would close a turn cycle.  The safety test is plain
reachability in the channel dependency graph
(:func:`repro.routing.channel_graph.would_close_cycle`), and accepted
releases are added to the graph immediately, so the "no turn cycle"
invariant holds after every step regardless of iteration order.

Complexity matches the paper's ``O(d * |V|^2)``: each of the
``O(d * |V|)`` candidate pairs runs one DFS over the ``O(d * |V|)``
dependency graph.
"""

from __future__ import annotations

from typing import List, NamedTuple, Sequence, Tuple

from repro.routing.base import TurnModel
from repro.routing.channel_graph import dependency_adjacency, would_close_cycle

ClassPair = Tuple[int, int]


class Release(NamedTuple):
    """One accepted release: turn (e_in -> e_out) at *switch*.

    ``classes`` records the (input class, output class) pair the release
    belongs to, in the turn model's classification.
    """

    switch: int
    e_in: int
    e_out: int
    classes: ClassPair


def release_prohibited_turns(
    turn_model: TurnModel,
    candidates: Sequence[ClassPair],
) -> List[Release]:
    """Release every candidate turn that cannot close a cycle.

    Mutates *turn_model* (channel-pair exceptions) and returns the
    accepted releases in application order.  Candidate pairs already
    allowed at a switch are skipped silently.
    """
    topo = turn_model.topology
    cls = turn_model.channel_class
    pairs = [(int(a), int(b)) for a, b in candidates]
    adj = dependency_adjacency(turn_model)
    releases: List[Release] = []

    for v in range(topo.n):
        inputs = topo.input_channels(v)
        outputs = topo.output_channels(v)
        for frm, to in pairs:
            ins = [c for c in inputs if cls[c] == frm]
            outs = [c for c in outputs if cls[c] == to]
            for e_in in ins:
                for e_out in outs:
                    if e_out == (e_in ^ 1):
                        continue
                    if turn_model.is_turn_allowed(v, e_in, e_out):
                        continue  # already allowed (nothing to release)
                    if would_close_cycle(adj, e_in, e_out):
                        continue  # paper: "turn ... can not be released"
                    turn_model.allow_channel_pair(e_in, e_out)
                    adj[e_in].append(e_out)
                    releases.append(Release(v, e_in, e_out, (frm, to)))
    return releases


def count_prohibited_pairs(turn_model: TurnModel) -> Tuple[int, int]:
    """(prohibited, total) turn pairs across all switches.

    A diagnostic used by reports and tests: a release pass strictly
    reduces the prohibited count whenever any release was accepted.
    U-turns are excluded (never turns in the Definition-6 sense here).
    """
    topo = turn_model.topology
    prohibited = 0
    total = 0
    for v in range(topo.n):
        for e_in in topo.input_channels(v):
            for e_out in topo.output_channels(v):
                if e_out == (e_in ^ 1):
                    continue
                total += 1
                if not turn_model.is_turn_allowed(v, e_in, e_out):
                    prohibited += 1
    return prohibited, total
