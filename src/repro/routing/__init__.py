"""Routing functions, their construction, and their verification.

This package hosts the machinery shared by all tree-based routing
algorithms in the reproduction:

``base``
    :class:`TurnModel` (per-node allowed-turn state over a channel
    classification) and :class:`RoutingFunction` (the object the
    simulator and the static analysis consume).
``channel_graph``
    The channel dependency graph: turn-cycle search (Lemma 1/Theorem 1
    made executable) and turn-restricted shortest-path BFS.
``table``
    All-pairs adaptive routing tables over shortest admissible paths.
``updown``
    The up*/down* baseline (BFS and DFS spanning-tree variants).
``lturn``
    The L-turn baseline reconstruction and the Left-Right routing of the
    same 2-D turn-model family.
``verification``
    Deadlock-freedom (channel-dependency acyclicity) and turn-restricted
    connectivity assertions applied to every routing function we build.
"""

from repro.routing.base import RoutingFunction, TurnModel
from repro.routing.channel_graph import (
    dependency_adjacency,
    find_turn_cycle,
    would_close_cycle,
)
from repro.routing.table import build_routing_function
from repro.routing.updown import build_up_down_routing
from repro.routing.lturn import build_l_turn_routing, build_left_right_routing
from repro.routing.diagnostics import (
    adaptivity,
    compare_routings,
    path_length_stats,
    turn_usage,
)
from repro.routing.duato import (
    DuatoRouting,
    build_duato_routing,
    build_fully_adaptive_minimal,
)
from repro.routing.release import release_prohibited_turns
from repro.routing.serialization import (
    load_routing,
    routing_from_json,
    routing_to_json,
    save_routing,
)
from repro.routing.verification import (
    VerificationError,
    assert_connected,
    assert_deadlock_free,
    assert_progress,
    verify_routing,
)

__all__ = [
    "RoutingFunction",
    "TurnModel",
    "dependency_adjacency",
    "find_turn_cycle",
    "would_close_cycle",
    "build_routing_function",
    "build_up_down_routing",
    "build_l_turn_routing",
    "build_left_right_routing",
    "adaptivity",
    "compare_routings",
    "path_length_stats",
    "turn_usage",
    "DuatoRouting",
    "build_duato_routing",
    "build_fully_adaptive_minimal",
    "release_prohibited_turns",
    "routing_to_json",
    "routing_from_json",
    "save_routing",
    "load_routing",
    "VerificationError",
    "assert_connected",
    "assert_deadlock_free",
    "assert_progress",
    "verify_routing",
]
