"""Duato-style two-layer routing for virtual-channel networks.

Related work [8] (Silla & Duato, TPDS 2000) achieves high-performance
routing in irregular networks by pairing a fully adaptive layer with a
deadlock-free *escape* layer on dedicated virtual channels.  This
module builds that structure on top of any verified tree-based routing
from this repository:

* the **adaptive** layer routes over *all* minimal physical paths with
  no turn restriction (its dependency graph may contain cycles — that
  is allowed);
* the **escape** layer is one of the verified deadlock-free routings
  (up*/down*, DOWN/UP, L-turn); a blocked worm can always fall back to
  it, entered fresh at its current switch, and once on escape it stays
  on escape (the simple sufficient form of Duato's theorem).

The object is consumed by
:class:`repro.simulator.vc_engine.VirtualChannelSimulator`, which maps
the adaptive layer onto VC classes ``1..V-1`` and the escape layer onto
VC ``0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.routing.base import RoutingFunction, TurnModel
from repro.routing.table import build_routing_function
from repro.routing.verification import assert_connected, assert_progress
from repro.topology.graph import Topology


def _escape_builders() -> Dict[str, Callable[..., RoutingFunction]]:
    """Escape-layer builders, resolved lazily.

    ``down-up`` lives in :mod:`repro.core`, which itself imports the
    routing package — importing it at module load would close an import
    cycle, so the lookup happens on first use instead.
    """
    from repro.core.downup import build_down_up_routing
    from repro.routing.lturn import build_l_turn_routing
    from repro.routing.updown import build_up_down_routing

    return {
        "up-down": build_up_down_routing,
        "down-up": build_down_up_routing,
        "l-turn": build_l_turn_routing,
    }


@dataclass(frozen=True)
class DuatoRouting:
    """An (adaptive, escape) routing pair for a VC-equipped network.

    ``adaptive`` is minimal and unrestricted (not deadlock-free on its
    own); ``escape`` is verified deadlock-free and connected.  Both
    share one topology.
    """

    adaptive: RoutingFunction
    escape: RoutingFunction

    def __post_init__(self) -> None:
        if self.adaptive.topology is not self.escape.topology:
            raise ValueError("adaptive and escape layers must share a topology")

    @property
    def name(self) -> str:
        """Display name: ``duato(<escape name>)``."""
        return f"duato({self.escape.name})"

    @property
    def topology(self) -> Topology:
        """The shared network graph."""
        return self.escape.topology


def build_fully_adaptive_minimal(topology: Topology) -> RoutingFunction:
    """Minimal routing over *all* physical paths (no turn restriction).

    U-turns remain excluded.  The result is connected and makes
    progress but is **not** deadlock-free by itself — it is only safe
    as the adaptive layer above an escape layer.
    """
    tm = TurnModel(
        topology,
        [0] * topology.num_channels,
        np.ones((1, 1), dtype=bool),
        class_names=("ANY",),
    )
    routing = build_routing_function(tm, "fully-adaptive")
    assert_connected(routing)
    assert_progress(routing)
    return routing


def build_duato_routing(
    topology: Topology,
    escape: Union[str, RoutingFunction] = "up-down",
    **escape_kwargs,
) -> DuatoRouting:
    """Build the two-layer routing.

    *escape* is either a pre-built verified routing function or one of
    ``"up-down"``, ``"down-up"``, ``"l-turn"`` (built here with
    *escape_kwargs* forwarded — e.g. ``tree=...`` to share a
    coordinated tree).
    """
    if isinstance(escape, str):
        builders = _escape_builders()
        try:
            builder = builders[escape]
        except KeyError:
            raise KeyError(
                f"unknown escape routing {escape!r}; "
                f"available: {sorted(builders)}"
            ) from None
        escape_fn = builder(topology, **escape_kwargs)
    else:
        escape_fn = escape
    return DuatoRouting(
        adaptive=build_fully_adaptive_minimal(topology),
        escape=escape_fn,
    )
