"""Routing-function diagnostics.

Quantities that characterise a routing function beyond the four paper
metrics — used by the examples, the reports and the ablation benches:

* **path-length distribution** — the paper notes up*/down* suffers from
  long average paths; these histograms make the comparison direct;
* **adaptivity** — how many minimal admissible candidates a header has
  on average (more = more ways around congestion);
* **turn usage** — how many (input class → output class) turns each
  admissible dependency realises, exposing how restrictive a turn model
  is in practice.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.routing.base import RoutingFunction
from repro.routing.channel_graph import dependency_adjacency


@dataclass(frozen=True)
class PathStats:
    """All-pairs shortest-admissible-path statistics."""

    mean: float
    maximum: int
    histogram: Dict[int, int]  # path length -> number of ordered pairs

    @property
    def diameter(self) -> int:
        """Longest shortest admissible path (the routing's diameter)."""
        return self.maximum


def path_length_stats(routing: RoutingFunction) -> PathStats:
    """Exact all-pairs path-length distribution of *routing*."""
    n = routing.topology.n
    hist: Counter = Counter()
    total = 0
    worst = 0
    for s in range(n):
        for d in range(n):
            if s == d:
                continue
            length = routing.path_length(s, d)
            hist[length] += 1
            total += length
            worst = max(worst, length)
    pairs = n * (n - 1)
    return PathStats(
        mean=total / pairs if pairs else 0.0,
        maximum=worst,
        histogram=dict(sorted(hist.items())),
    )


def adaptivity(routing: RoutingFunction) -> float:
    """Mean number of minimal admissible candidates per decision.

    Averages the candidate-set size over every reachable decision point:
    all (source, destination) injections plus all (channel, destination)
    en-route states with finite remaining distance.  1.0 means fully
    deterministic; larger values mean more adaptive freedom.
    """
    n = routing.topology.n
    sizes: List[int] = []
    for d in range(n):
        fh = routing.first_hops[d]
        for s in range(n):
            if s != d and fh[s]:
                sizes.append(len(fh[s]))
        nh = routing.next_hops[d]
        row = routing.dist[d]
        for c, opts in enumerate(nh):
            if opts and 0 < row[c] < RoutingFunction.UNREACHABLE:
                sizes.append(len(opts))
    return float(np.mean(sizes)) if sizes else 0.0


def turn_usage(routing: RoutingFunction) -> Dict[Tuple[str, str], int]:
    """Count admissible channel dependencies per (class -> class) pair.

    Keys use the turn model's class names; the counts describe the
    dependency graph (topology-level freedom), independent of any
    destination.
    """
    tm = routing.turn_model
    names = tm.class_names
    counts: Counter = Counter()
    adj = dependency_adjacency(tm)
    for a, outs in enumerate(adj):
        for b in outs:
            counts[(names[tm.channel_class[a]], names[tm.channel_class[b]])] += 1
    return dict(counts)


def compare_routings(routings: List[RoutingFunction]) -> List[List[object]]:
    """Rows of headline diagnostics per routing (for ``format_table``).

    Columns: name, mean path, diameter, adaptivity, dependency count.
    """
    rows: List[List[object]] = []
    for r in routings:
        ps = path_length_stats(r)
        deps = sum(len(a) for a in dependency_adjacency(r.turn_model))
        rows.append(
            [r.name, round(ps.mean, 3), ps.maximum, round(adaptivity(r), 3), deps]
        )
    return rows
