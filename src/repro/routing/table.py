"""All-pairs adaptive routing tables (shortest admissible paths).

Builds the :class:`~repro.routing.base.RoutingFunction` for a turn model
by running the turn-restricted BFS of
:func:`repro.routing.channel_graph.shortest_path_dags` once per
destination.  Cost: ``O(|V| * |C| * d)`` — for the paper's largest
configuration (128 switches, 8 ports, ~1024 channels) well under a
second.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.routing.base import RoutingFunction, TurnModel
from repro.routing.channel_graph import (
    dependency_adjacency,
    reverse_adjacency,
    shortest_path_dags,
)


def build_routing_function(
    turn_model: TurnModel,
    name: str,
    meta: Optional[Dict[str, object]] = None,
) -> RoutingFunction:
    """Precompute shortest-admissible-path tables for every destination.

    The resulting routing function is *adaptive*: every minimal
    admissible candidate is retained, and the simulator picks among the
    free ones at run time (randomly on ties, per Section 5).
    """
    topo = turn_model.topology
    n = topo.n
    dist = np.full((n, topo.num_channels), RoutingFunction.UNREACHABLE, np.int32)
    next_hops = []
    first_hops = []
    # the dependency graph is destination-independent: classify once,
    # not once per destination (dominates construction time otherwise)
    adj = dependency_adjacency(turn_model)
    radj = reverse_adjacency(adj)
    for d in range(n):
        dd, nh, fh = shortest_path_dags(turn_model, d, adj=adj, radj=radj)
        dist[d, :] = dd
        next_hops.append(tuple(nh))
        first_hops.append(tuple(fh))
    dist.setflags(write=False)
    return RoutingFunction(
        topology=topo,
        name=name,
        turn_model=turn_model,
        dist=dist,
        next_hops=tuple(next_hops),
        first_hops=tuple(first_hops),
        meta=dict(meta or {}),
    )
