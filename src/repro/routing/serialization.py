"""Serialization of routing functions.

Archival experiment runs save the exact routing tables next to their
results so any number can be re-audited without re-running the
construction (and so non-Python consumers — e.g. a C simulator — can
load them).  The format is JSON:

```
{"format": "repro-routing-v1", "name": ..., "topology": {...},
 "channel_class": [...], "class_names": [...],
 "base_allowed": [[...]], "pair_exceptions": [[cin, cout], ...],
 "node_overrides": {"<switch>": [[...]]},
 "dist": [[...]], "next_hops": [[[...]]], "first_hops": [[[...]]]}
```

``load_routing`` rebuilds a fully functional
:class:`~repro.routing.base.RoutingFunction` (turn model included) and
re-verifies it, so a tampered file cannot smuggle in a deadlocking
table.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.coordinated_tree import CoordinatedTree
from repro.routing.base import RoutingFunction, TurnModel
from repro.routing.verification import verify_routing
from repro.topology.serialization import topology_from_json, topology_to_json

FORMAT = "repro-routing-v1"
TREE_FORMAT = "repro-tree-v1"


def routing_to_json(routing: RoutingFunction) -> str:
    """Serialize *routing* (tables + turn model + topology) to JSON."""
    tm = routing.turn_model
    payload = {
        "format": FORMAT,
        "name": routing.name,
        "topology": json.loads(topology_to_json(routing.topology)),
        "channel_class": [int(c) for c in tm.channel_class],
        "class_names": list(tm.class_names),
        "base_allowed": tm.base_matrix.tolist(),
        "node_overrides": {
            str(v): tm.allowed_matrix(v).tolist()
            for v in tm.overridden_switches()
        },
        "pair_exceptions": [list(p) for p in tm.released_channel_pairs()],
        "dist": np.asarray(routing.dist).tolist(),
        "next_hops": [
            [list(opts) for opts in per_dest] for per_dest in routing.next_hops
        ],
        "first_hops": [
            [list(opts) for opts in per_dest] for per_dest in routing.first_hops
        ],
    }
    return json.dumps(payload, separators=(",", ":"))


def routing_from_json(text: str, verify: bool = True) -> RoutingFunction:
    """Rebuild a routing function from :func:`routing_to_json` output.

    With *verify* (default) the result passes the full Theorem-1 checks
    before being returned.
    """
    data = json.loads(text)
    if data.get("format") != FORMAT:
        raise ValueError(
            f"unsupported routing format {data.get('format')!r}"
        )
    topology = topology_from_json(json.dumps(data["topology"]))
    tm = TurnModel(
        topology,
        data["channel_class"],
        np.asarray(data["base_allowed"], dtype=bool),
        class_names=data["class_names"],
    )
    for v_str, matrix in data.get("node_overrides", {}).items():
        v = int(v_str)
        m = np.asarray(matrix, dtype=bool)
        for i in range(tm.num_classes):
            for j in range(tm.num_classes):
                tm.set_turn(v, i, j, bool(m[i, j]))
    for cin, cout in data.get("pair_exceptions", []):
        tm.allow_channel_pair(int(cin), int(cout))
    dist = np.asarray(data["dist"], dtype=np.int32)
    dist.setflags(write=False)
    routing = RoutingFunction(
        topology=topology,
        name=data["name"],
        turn_model=tm,
        dist=dist,
        # map(tuple, ...) stays in C: these two fields are ~98% of the
        # decoded object (|V| x |C| inner tuples) and dominate load time
        next_hops=tuple(
            tuple(map(tuple, per_dest)) for per_dest in data["next_hops"]
        ),
        first_hops=tuple(
            tuple(map(tuple, per_dest)) for per_dest in data["first_hops"]
        ),
        meta={"loaded": True},
    )
    return verify_routing(routing) if verify else routing


def tree_to_json(tree: CoordinatedTree) -> str:
    """Serialize a coordinated tree (topology + structure + coordinates).

    Versioned (``repro-tree-v1``) so archived artefacts from a cache or
    results directory are rejected loudly when the layout changes
    instead of being misread.
    """
    payload = {
        "format": TREE_FORMAT,
        "topology": json.loads(topology_to_json(tree.topology)),
        "root": tree.root,
        "parent": [-1 if p is None else int(p) for p in tree.parent],
        "children": [list(kids) for kids in tree.children],
        "x": list(tree.x),
        "y": list(tree.y),
    }
    return json.dumps(payload, separators=(",", ":"))


def tree_from_json(text: str, validate: bool = True) -> CoordinatedTree:
    """Rebuild a coordinated tree from :func:`tree_to_json` output.

    With *validate* (default) the result passes the full Definition-2
    structural checks (:meth:`CoordinatedTree.validate`).
    """
    data = json.loads(text)
    if data.get("format") != TREE_FORMAT:
        raise ValueError(
            f"unsupported coordinated-tree format {data.get('format')!r}"
        )
    topology = topology_from_json(json.dumps(data["topology"]))
    tree = CoordinatedTree(
        topology=topology,
        root=int(data["root"]),
        parent=tuple(
            None if p < 0 else int(p) for p in data["parent"]
        ),
        children=tuple(
            tuple(int(k) for k in kids) for kids in data["children"]
        ),
        x=tuple(int(v) for v in data["x"]),
        y=tuple(int(v) for v in data["y"]),
    )
    if validate:
        tree.validate()
    return tree


def save_tree(tree: CoordinatedTree, path: Union[str, Path]) -> None:
    """Write *tree* to *path* as JSON."""
    Path(path).write_text(tree_to_json(tree) + "\n", encoding="utf-8")


def load_tree(path: Union[str, Path], validate: bool = True) -> CoordinatedTree:
    """Read a tree previously written by :func:`save_tree`."""
    return tree_from_json(Path(path).read_text(encoding="utf-8"), validate)


def save_routing(routing: RoutingFunction, path: Union[str, Path]) -> None:
    """Write *routing* to *path* as JSON."""
    Path(path).write_text(routing_to_json(routing) + "\n", encoding="utf-8")


def load_routing(path: Union[str, Path], verify: bool = True) -> RoutingFunction:
    """Read a routing previously written by :func:`save_routing`."""
    return routing_from_json(Path(path).read_text(encoding="utf-8"), verify)
