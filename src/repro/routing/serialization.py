"""Serialization of routing functions.

Archival experiment runs save the exact routing tables next to their
results so any number can be re-audited without re-running the
construction (and so non-Python consumers — e.g. a C simulator — can
load them).  The format is JSON:

```
{"format": "repro-routing-v1", "name": ..., "topology": {...},
 "channel_class": [...], "class_names": [...],
 "base_allowed": [[...]], "pair_exceptions": [[cin, cout], ...],
 "node_overrides": {"<switch>": [[...]]},
 "dist": [[...]], "next_hops": [[[...]]], "first_hops": [[[...]]]}
```

``load_routing`` rebuilds a fully functional
:class:`~repro.routing.base.RoutingFunction` (turn model included) and
re-verifies it, so a tampered file cannot smuggle in a deadlocking
table.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.routing.base import RoutingFunction, TurnModel
from repro.routing.verification import verify_routing
from repro.topology.serialization import topology_from_json, topology_to_json

FORMAT = "repro-routing-v1"


def routing_to_json(routing: RoutingFunction) -> str:
    """Serialize *routing* (tables + turn model + topology) to JSON."""
    tm = routing.turn_model
    payload = {
        "format": FORMAT,
        "name": routing.name,
        "topology": json.loads(topology_to_json(routing.topology)),
        "channel_class": [int(c) for c in tm.channel_class],
        "class_names": list(tm.class_names),
        "base_allowed": tm.base_matrix.tolist(),
        "node_overrides": {
            str(v): tm.allowed_matrix(v).tolist()
            for v in tm.overridden_switches()
        },
        "pair_exceptions": [list(p) for p in tm.released_channel_pairs()],
        "dist": np.asarray(routing.dist).tolist(),
        "next_hops": [
            [list(opts) for opts in per_dest] for per_dest in routing.next_hops
        ],
        "first_hops": [
            [list(opts) for opts in per_dest] for per_dest in routing.first_hops
        ],
    }
    return json.dumps(payload, separators=(",", ":"))


def routing_from_json(text: str, verify: bool = True) -> RoutingFunction:
    """Rebuild a routing function from :func:`routing_to_json` output.

    With *verify* (default) the result passes the full Theorem-1 checks
    before being returned.
    """
    data = json.loads(text)
    if data.get("format") != FORMAT:
        raise ValueError(
            f"unsupported routing format {data.get('format')!r}"
        )
    topology = topology_from_json(json.dumps(data["topology"]))
    tm = TurnModel(
        topology,
        data["channel_class"],
        np.asarray(data["base_allowed"], dtype=bool),
        class_names=data["class_names"],
    )
    for v_str, matrix in data.get("node_overrides", {}).items():
        v = int(v_str)
        m = np.asarray(matrix, dtype=bool)
        for i in range(tm.num_classes):
            for j in range(tm.num_classes):
                tm.set_turn(v, i, j, bool(m[i, j]))
    for cin, cout in data.get("pair_exceptions", []):
        tm.allow_channel_pair(int(cin), int(cout))
    dist = np.asarray(data["dist"], dtype=np.int32)
    dist.setflags(write=False)
    routing = RoutingFunction(
        topology=topology,
        name=data["name"],
        turn_model=tm,
        dist=dist,
        next_hops=tuple(
            tuple(tuple(opts) for opts in per_dest)
            for per_dest in data["next_hops"]
        ),
        first_hops=tuple(
            tuple(tuple(opts) for opts in per_dest)
            for per_dest in data["first_hops"]
        ),
        meta={"loaded": True},
    )
    return verify_routing(routing) if verify else routing


def save_routing(routing: RoutingFunction, path: Union[str, Path]) -> None:
    """Write *routing* to *path* as JSON."""
    Path(path).write_text(routing_to_json(routing) + "\n", encoding="utf-8")


def load_routing(path: Union[str, Path], verify: bool = True) -> RoutingFunction:
    """Read a routing previously written by :func:`save_routing`."""
    return routing_from_json(Path(path).read_text(encoding="utf-8"), verify)
