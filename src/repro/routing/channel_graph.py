"""The channel dependency graph and turn-cycle search.

Nodes are the directed channels; there is an edge ``a -> b`` when a worm
holding channel ``a`` may request channel ``b`` next, i.e. ``b`` starts
at ``a``'s sink, is not the reverse of ``a``, and the switch's turn model
allows the class pair.  A cycle in this graph is exactly a *turn cycle*
(Definition 7); its absence is the Dally-Seitz sufficient condition for
wormhole deadlock freedom, so :func:`find_turn_cycle` is the executable
form of the paper's Lemma 1 / Theorem 1.

:func:`would_close_cycle` is the reachability query at the heart of the
Phase-3 ``cycle_detection`` algorithm: releasing turn ``(e_in -> e_out)``
at a switch is unsafe iff ``e_in`` is already reachable from ``e_out``
(the released turn would then close the loop).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.routing.base import TurnModel
from repro.topology.graph import Topology


def dependency_adjacency(turn_model: TurnModel) -> List[List[int]]:
    """Adjacency list of the channel dependency graph under *turn_model*."""
    topo = turn_model.topology
    adj: List[List[int]] = [[] for _ in range(topo.num_channels)]
    for a in range(topo.num_channels):
        v = topo.channel(a).sink
        for b in topo.output_channels(v):
            if b != (a ^ 1) and turn_model.is_turn_allowed(v, a, b):
                adj[a].append(b)
    return adj


def find_cycle(adj: Sequence[Sequence[int]]) -> Optional[List[int]]:
    """Return some elementary cycle of the digraph *adj*, or ``None``.

    Iterative three-colour DFS; the returned list is the cycle's node
    sequence (first node repeated implicitly).
    """
    n = len(adj)
    WHITE, GRAY, BLACK = 0, 1, 2
    colour = [WHITE] * n
    parent: Dict[int, int] = {}
    for root in range(n):
        if colour[root] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        colour[root] = GRAY
        while stack:
            v, idx = stack[-1]
            if idx < len(adj[v]):
                stack[-1] = (v, idx + 1)
                w = adj[v][idx]
                if colour[w] == WHITE:
                    colour[w] = GRAY
                    parent[w] = v
                    stack.append((w, 0))
                elif colour[w] == GRAY:
                    cycle = [v]
                    while cycle[-1] != w:
                        cycle.append(parent[cycle[-1]])
                    cycle.reverse()
                    return cycle
            else:
                colour[v] = BLACK
                stack.pop()
    return None


def find_turn_cycle(turn_model: TurnModel) -> Optional[List[int]]:
    """A turn cycle (as a channel sequence) under *turn_model*, or ``None``.

    ``None`` certifies deadlock freedom of any routing that respects the
    turn model (acyclic channel dependencies — Dally & Seitz).
    """
    return find_cycle(dependency_adjacency(turn_model))


def reachable(
    adj: Sequence[Sequence[int]], source: int, target: int
) -> bool:
    """Is *target* reachable from *source* (possibly via a trivial path)?

    ``source == target`` counts as reachable only through an actual
    cycle; a zero-length path does **not** count, matching the Phase-3
    question "can the worm come back around?".
    """
    seen: Set[int] = set()
    stack = list(adj[source])
    while stack:
        v = stack.pop()
        if v == target:
            return True
        if v in seen:
            continue
        seen.add(v)
        stack.extend(adj[v])
    return False


def would_close_cycle(
    adj: Sequence[Sequence[int]], e_in: int, e_out: int
) -> bool:
    """Would additionally allowing the dependency ``e_in -> e_out`` close a cycle?

    True iff ``e_in`` is reachable from ``e_out`` in the current
    dependency graph *adj* — the candidate edge would then complete the
    loop ``e_in -> e_out ~~> e_in``.  (This is the DFS of the paper's
    ``cycle_detection`` algorithm, Section 4.3, expressed as plain
    reachability.)
    """
    return reachable(adj, e_out, e_in)


# ---------------------------------------------------------------------------
# turn-restricted shortest paths
# ---------------------------------------------------------------------------


def reverse_adjacency(adj: Sequence[Sequence[int]]) -> List[List[int]]:
    """Reverse adjacency: predecessors of channel ``b`` are the channels
    ``a`` with an allowed dependency ``a -> b``."""
    radj: List[List[int]] = [[] for _ in range(len(adj))]
    for a, outs in enumerate(adj):
        for b in outs:
            radj[b].append(a)
    return radj


def shortest_path_dags(
    turn_model: TurnModel,
    dest: int,
    adj: Optional[Sequence[Sequence[int]]] = None,
    radj: Optional[Sequence[Sequence[int]]] = None,
) -> Tuple[List[int], List[Tuple[int, ...]], List[Tuple[int, ...]]]:
    """Turn-restricted shortest-path data toward *dest*.

    Returns ``(dist, next_hops, first_hops)`` where

    * ``dist[c]`` — hops remaining after traversing channel ``c``
      (``0`` iff ``sink(c) == dest``; ``UNREACHABLE_INT`` if no
      admissible continuation reaches *dest*);
    * ``next_hops[c]`` — admissible outputs continuing a shortest path;
    * ``first_hops[s]`` — minimal admissible first channels for a packet
      injected at switch ``s`` (empty for ``s == dest``).

    Implemented as a reverse BFS over the channel dependency graph from
    the set of channels sinking at *dest* (all hops cost 1 clockless hop,
    so plain BFS yields exact distances).

    The dependency graph does not depend on *dest*; callers building
    tables for every destination pass a precomputed *adj* (and
    optionally its *radj* reversal) so classification runs once per
    turn model instead of once per destination.
    """
    topo = turn_model.topology
    n_ch = topo.num_channels
    UNREACH = 2**31 - 1

    if adj is None:
        adj = dependency_adjacency(turn_model)
    if radj is None:
        radj = reverse_adjacency(adj)

    dist = [UNREACH] * n_ch
    frontier = [c for c in range(n_ch) if topo.channel(c).sink == dest]
    for c in frontier:
        dist[c] = 0
    level = 0
    while frontier:
        level += 1
        nxt = []
        for b in frontier:
            for a in radj[b]:
                if dist[a] == UNREACH:
                    dist[a] = level
                    nxt.append(a)
        frontier = nxt

    next_hops: List[Tuple[int, ...]] = []
    for a in range(n_ch):
        if dist[a] == UNREACH or dist[a] == 0:
            next_hops.append(())
            continue
        want = dist[a] - 1
        next_hops.append(tuple(b for b in adj[a] if dist[b] == want))

    first_hops: List[Tuple[int, ...]] = []
    for s in range(topo.n):
        if s == dest:
            first_hops.append(())
            continue
        outs = topo.output_channels(s)
        finite = [c for c in outs if dist[c] != UNREACH]
        if not finite:
            first_hops.append(())
            continue
        best = min(dist[c] for c in finite)
        first_hops.append(tuple(c for c in finite if dist[c] == best))
    return dist, next_hops, first_hops
