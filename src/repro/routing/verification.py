"""Machine verification of routing functions (Theorem 1, executable).

Every routing function constructed anywhere in this repository is passed
through :func:`verify_routing`, which asserts the two halves of the
paper's Theorem 1:

* **deadlock freedom** — the channel dependency graph restricted to the
  turn model is acyclic (Dally-Seitz sufficient condition for wormhole
  networks; equivalently "no turn cycle", Lemma 1);
* **connectivity** — under the turn restrictions, every ordered switch
  pair has at least one admissible path (and the routing tables expose a
  minimal one).

Because the checks run on the *instance* (a concrete topology and tree),
they also validate constructions whose global argument is reconstructed
rather than quoted — notably the L-turn baseline — and they catch the
paper's Section 4.3 transcription error (see
:mod:`repro.core.direction_graph`).

Failures raise :class:`VerificationError`, which carries a *structured*
payload (the offending channel-id cycle, the full unroutable pair list,
or the stranded state) in addition to the formatted message, so the
independent certificate checker (:mod:`repro.statics.check`), the
diagnostics, and the fault-runtime logs can consume verdicts
programmatically.  For positive evidence rather than a pass/fail
verdict, see :func:`repro.statics.certificates.certify_routing`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.routing.base import RoutingFunction, TurnModel
from repro.routing.channel_graph import find_turn_cycle


class VerificationError(AssertionError):
    """A routing function violates deadlock freedom or connectivity.

    Besides the human-readable message, the exception exposes:

    ``routing_name``
        Name of the offending routing function (when known).
    ``kind``
        One of ``"cycle"``, ``"unroutable"``, ``"stranded"``,
        ``"no-progress"`` (or ``None`` for free-form failures).
    ``cycle``
        The offending channel-id cycle (``kind == "cycle"``).
    ``unroutable``
        The complete list of unroutable ``(src, dest)`` pairs
        (``kind == "unroutable"``) — not just the first few shown in
        the message.
    ``stranded``
        A dict describing the en-route state that cannot make progress
        (``kind in ("stranded", "no-progress")``): destination, channel,
        remaining distance, and — for ``"no-progress"`` — the
        non-decreasing candidate.
    """

    def __init__(
        self,
        message: str,
        *,
        routing_name: Optional[str] = None,
        kind: Optional[str] = None,
        cycle: Optional[Sequence[int]] = None,
        unroutable: Optional[Sequence[Tuple[int, int]]] = None,
        stranded: Optional[Dict[str, int]] = None,
    ) -> None:
        super().__init__(message)
        self.routing_name = routing_name
        self.kind = kind
        self.cycle: Optional[List[int]] = (
            [int(c) for c in cycle] if cycle is not None else None
        )
        self.unroutable: Optional[List[Tuple[int, int]]] = (
            [(int(s), int(d)) for s, d in unroutable]
            if unroutable is not None
            else None
        )
        self.stranded: Optional[Dict[str, int]] = (
            dict(stranded) if stranded is not None else None
        )

    def payload(self) -> Dict[str, object]:
        """The structured verdict as a JSON-able dict (for logs)."""
        out: Dict[str, object] = {
            "message": str(self),
            "routing": self.routing_name,
            "kind": self.kind,
        }
        if self.cycle is not None:
            out["cycle"] = list(self.cycle)
        if self.unroutable is not None:
            out["unroutable"] = [list(p) for p in self.unroutable]
        if self.stranded is not None:
            out["stranded"] = dict(self.stranded)
        return out


def assert_deadlock_free(turn_model: TurnModel, name: str = "routing") -> None:
    """Raise :class:`VerificationError` if a turn cycle exists.

    The error message includes the offending channel cycle (switch path
    and per-channel classes) so a failure is directly debuggable; the
    raw channel-id cycle rides along as ``err.cycle``.
    """
    cycle = find_turn_cycle(turn_model)
    if cycle is None:
        return
    topo = turn_model.topology
    names = turn_model.class_names
    pretty = " -> ".join(
        f"<{topo.channel(c).start},{topo.channel(c).sink}>"
        f"[{names[turn_model.channel_class[c]]}]"
        for c in cycle
    )
    raise VerificationError(
        f"{name}: channel dependency graph has a cycle: {pretty}",
        routing_name=name,
        kind="cycle",
        cycle=cycle,
    )


def assert_connected(routing: RoutingFunction) -> None:
    """Raise :class:`VerificationError` unless all pairs are routable.

    The exception's ``unroutable`` attribute carries the *complete*
    ``(src, dest)`` pair list (the message shows only the first five).
    """
    n = routing.topology.n
    missing: List[Tuple[int, int]] = []
    for d in range(n):
        fh = routing.first_hops[d]
        for s in range(n):
            if s != d and not fh[s]:
                missing.append((s, d))
    if missing:
        raise VerificationError(
            f"{routing.name}: {len(missing)} unroutable pairs, e.g. "
            f"{missing[:5]}",
            routing_name=routing.name,
            kind="unroutable",
            unroutable=missing,
        )


def assert_progress(routing: RoutingFunction) -> None:
    """Raise unless every en-route state keeps a next hop (no stranding).

    For every destination ``d`` and channel ``c`` with finite remaining
    distance > 0, the candidate set must be non-empty and each candidate
    must strictly decrease the distance — together with acyclicity this
    rules out livelock for the adaptive simulator.  The exception's
    ``stranded`` dict identifies the offending state.
    """
    dist = routing.dist
    for d in range(routing.topology.n):
        nh = routing.next_hops[d]
        row = dist[d]
        for c, opts in enumerate(nh):
            rem = int(row[c])
            if rem in (0, RoutingFunction.UNREACHABLE):
                continue
            if not opts:
                raise VerificationError(
                    f"{routing.name}: dest {d}, channel {c} at distance "
                    f"{rem} has no admissible next hop",
                    routing_name=routing.name,
                    kind="stranded",
                    stranded={"dest": d, "channel": c, "remaining": rem},
                )
            for b in opts:
                if int(row[b]) != rem - 1:
                    raise VerificationError(
                        f"{routing.name}: dest {d}, hop {c}->{b} does not "
                        f"decrease distance ({rem} -> {int(row[b])})",
                        routing_name=routing.name,
                        kind="no-progress",
                        stranded={
                            "dest": d,
                            "channel": c,
                            "remaining": rem,
                            "candidate": int(b),
                            "candidate_remaining": int(row[b]),
                        },
                    )


def verify_routing(routing: RoutingFunction) -> RoutingFunction:
    """Run all checks on *routing*; return it unchanged on success.

    Intended to be used in-line by builders::

        return verify_routing(build_routing_function(tm, name="down-up"))
    """
    assert_deadlock_free(routing.turn_model, routing.name)
    assert_connected(routing)
    assert_progress(routing)
    return routing
