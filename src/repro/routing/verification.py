"""Machine verification of routing functions (Theorem 1, executable).

Every routing function constructed anywhere in this repository is passed
through :func:`verify_routing`, which asserts the two halves of the
paper's Theorem 1:

* **deadlock freedom** — the channel dependency graph restricted to the
  turn model is acyclic (Dally-Seitz sufficient condition for wormhole
  networks; equivalently "no turn cycle", Lemma 1);
* **connectivity** — under the turn restrictions, every ordered switch
  pair has at least one admissible path (and the routing tables expose a
  minimal one).

Because the checks run on the *instance* (a concrete topology and tree),
they also validate constructions whose global argument is reconstructed
rather than quoted — notably the L-turn baseline — and they catch the
paper's Section 4.3 transcription error (see
:mod:`repro.core.direction_graph`).
"""

from __future__ import annotations

from typing import List, Optional

from repro.routing.base import RoutingFunction, TurnModel
from repro.routing.channel_graph import find_turn_cycle


class VerificationError(AssertionError):
    """A routing function violates deadlock freedom or connectivity."""


def assert_deadlock_free(turn_model: TurnModel, name: str = "routing") -> None:
    """Raise :class:`VerificationError` if a turn cycle exists.

    The error message includes the offending channel cycle (switch path
    and per-channel classes) so a failure is directly debuggable.
    """
    cycle = find_turn_cycle(turn_model)
    if cycle is None:
        return
    topo = turn_model.topology
    names = turn_model.class_names
    pretty = " -> ".join(
        f"<{topo.channel(c).start},{topo.channel(c).sink}>"
        f"[{names[turn_model.channel_class[c]]}]"
        for c in cycle
    )
    raise VerificationError(
        f"{name}: channel dependency graph has a cycle: {pretty}"
    )


def assert_connected(routing: RoutingFunction) -> None:
    """Raise :class:`VerificationError` unless all pairs are routable."""
    n = routing.topology.n
    missing: List[tuple] = []
    for d in range(n):
        fh = routing.first_hops[d]
        for s in range(n):
            if s != d and not fh[s]:
                missing.append((s, d))
    if missing:
        raise VerificationError(
            f"{routing.name}: {len(missing)} unroutable pairs, e.g. "
            f"{missing[:5]}"
        )


def assert_progress(routing: RoutingFunction) -> None:
    """Raise unless every en-route state keeps a next hop (no stranding).

    For every destination ``d`` and channel ``c`` with finite remaining
    distance > 0, the candidate set must be non-empty and each candidate
    must strictly decrease the distance — together with acyclicity this
    rules out livelock for the adaptive simulator.
    """
    dist = routing.dist
    for d in range(routing.topology.n):
        nh = routing.next_hops[d]
        row = dist[d]
        for c, opts in enumerate(nh):
            rem = int(row[c])
            if rem in (0, RoutingFunction.UNREACHABLE):
                continue
            if not opts:
                raise VerificationError(
                    f"{routing.name}: dest {d}, channel {c} at distance "
                    f"{rem} has no admissible next hop"
                )
            for b in opts:
                if int(row[b]) != rem - 1:
                    raise VerificationError(
                        f"{routing.name}: dest {d}, hop {c}->{b} does not "
                        f"decrease distance ({rem} -> {int(row[b])})"
                    )


def verify_routing(routing: RoutingFunction) -> RoutingFunction:
    """Run all checks on *routing*; return it unchanged on success.

    Intended to be used in-line by builders::

        return verify_routing(build_routing_function(tm, name="down-up"))
    """
    assert_deadlock_free(routing.turn_model, routing.name)
    assert_connected(routing)
    assert_progress(routing)
    return routing
