"""The up*/down* routing baseline (Schroeder et al., DEC Autonet).

Every channel is labelled **up** or **down** from a spanning tree: the
"up" end of a link is the end closer to the root, ties (links inside one
tree level) broken toward the smaller switch id.  A packet may use zero
or more up channels followed by zero or more down channels — i.e. the
single prohibited turn is *down -> up*.  This guarantees deadlock
freedom (up channels are ordered by decreasing ``(level, id)``, down
channels by increasing, so no dependency cycle survives) and
connectivity (the tree path itself is up*-then-down*), but concentrates
traffic near the root — the hot-spot problem motivating both L-turn and
DOWN/UP.

Two spanning-tree variants are provided:

* ``bfs`` — the classic breadth-first tree (the paper's comparison
  basis; reuses the coordinated tree when one is supplied);
* ``dfs`` — the depth-first tree of Sancho/Robles/Duato, whose deeper
  trees shorten average up*/down* paths (related-work extension [6]).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.coordinated_tree import CoordinatedTree, build_coordinated_tree
from repro.routing.base import RoutingFunction, TurnModel
from repro.routing.table import build_routing_function
from repro.routing.verification import verify_routing
from repro.topology.graph import Topology
from repro.util.rng import RngLike

UP, DOWN = 0, 1
_CLASS_NAMES = ("UP", "DOWN")


def _dfs_order(topology: Topology, root: int) -> List[int]:
    """DFS preorder ranks (``rank[v]``) from *root*, smaller-id-first."""
    rank = [-1] * topology.n
    counter = 0
    stack = [root]
    while stack:
        v = stack.pop()
        if rank[v] != -1:
            continue
        rank[v] = counter
        counter += 1
        # reversed so the smallest-id neighbour is popped first
        for w in sorted(topology.neighbors(v), reverse=True):
            if rank[w] == -1:
                stack.append(w)
    if counter != topology.n:
        raise ValueError("topology is disconnected")
    return rank


def up_down_channel_classes(
    topology: Topology,
    tree: Optional[CoordinatedTree] = None,
    variant: str = "bfs",
    root: int = 0,
) -> List[int]:
    """Label every channel UP or DOWN.

    For ``bfs`` the ordering key is ``(tree level, switch id)`` — a
    channel is *up* iff its sink precedes its start.  For ``dfs`` the
    key is the DFS preorder rank.  Keys are total orders, so exactly one
    channel of every link is up and the reverse is down.
    """
    if variant == "bfs":
        ct = tree if tree is not None else build_coordinated_tree(topology, root=root)
        key = [(ct.y[v], v) for v in range(topology.n)]
    elif variant == "dfs":
        rank = _dfs_order(topology, root)
        key = [(rank[v],) for v in range(topology.n)]
    else:
        raise ValueError(f"unknown up*/down* variant {variant!r}")

    classes = []
    for ch in topology.channels:
        classes.append(UP if key[ch.sink] < key[ch.start] else DOWN)
    return classes


def up_down_turn_model(
    topology: Topology,
    tree: Optional[CoordinatedTree] = None,
    variant: str = "bfs",
    root: int = 0,
) -> TurnModel:
    """The up*/down* turn state: everything allowed except down -> up."""
    allowed = np.ones((2, 2), dtype=bool)
    allowed[DOWN, UP] = False
    return TurnModel(
        topology,
        up_down_channel_classes(topology, tree, variant, root),
        allowed,
        class_names=_CLASS_NAMES,
    )


def build_up_down_routing(
    topology: Topology,
    tree: Optional[CoordinatedTree] = None,
    variant: str = "bfs",
    root: int = 0,
    rng: RngLike = None,
    verify: bool = True,
) -> RoutingFunction:
    """Construct the up*/down* routing function.

    *tree* lets experiments reuse the coordinated tree built for
    DOWN/UP so all algorithms are compared "under the same coordinated
    tree" (Section 5); *rng* is accepted for interface symmetry and
    unused (the construction is deterministic).
    """
    del rng  # deterministic construction; parameter kept for symmetry
    tm = up_down_turn_model(topology, tree, variant, root)
    routing = build_routing_function(
        tm,
        name=f"up-down/{variant}",
        meta={"variant": variant, "root": root, "tree": tree},
    )
    return verify_routing(routing) if verify else routing
