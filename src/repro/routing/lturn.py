"""L-turn and Left-Right routing — the 2-D turn-model baselines.

The paper compares DOWN/UP against the *L-turn routing* of Jouraku,
Funahashi, Amano and Koibuchi (ICPP 2001 / I-SPAN 2002).  Those papers
route on the *L-R tree*: a BFS spanning tree with preorder/level
coordinates — structurally the same object as the coordinated tree — in
which, crucially, **tree links and cross links share one direction
definition**.  The original prohibited-turn tables are not available in
this environment, so this module implements a documented reconstruction
(see DESIGN.md, "Substitutions") that preserves the properties the
DOWN/UP paper's comparison rests on:

* four direction classes over *all* links — up-left, down-left,
  up-right, down-right — where a channel is "up" when its sink precedes
  its start in ``(level, preorder-x)`` lexicographic order and
  left/right follows the x comparison (horizontal-left folds into UL,
  horizontal-right into DR, keeping each class strictly monotone);
* deadlock freedom by a phase ordering ``UL < DL < UR < DR``: a turn is
  allowed iff it does not decrease the phase.  Any allowed turn cycle
  would have to stay inside one class, and every class strictly
  increases or decreases a coordinate measure — so no turn cycle exists
  in any communication graph (machine-verified per instance);
* connectivity: the tree path is ``UL* -> DR*`` and ``UL -> DR`` is
  allowed;
* a per-node redundant-prohibition release pass (the DOWN/UP paper
  notes its Phase-3 cycle detection is "similar to that in [4]", i.e.
  L-turn performs one as well), run over all six prohibited class pairs
  in a fixed down-flow-first preference order.

Unlike DOWN/UP, the reconstruction cannot treat an up-*tree* channel
differently from an up-*cross* channel — exactly the limitation the
paper identifies — so traffic toward the root is restricted no more
than cross traffic, and root hot spots persist under unfavourable
trees.

``build_left_right_routing`` implements the simpler sibling from the
same papers (two classes: every channel is *left* or *right* by the x
comparison; prohibited: right -> left), included as an extra baseline
and as a sanity anchor for the family.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.coordinated_tree import (
    CoordinatedTree,
    TreeMethod,
    build_coordinated_tree,
)
from repro.routing.release import release_prohibited_turns
from repro.routing.base import RoutingFunction, TurnModel
from repro.routing.table import build_routing_function
from repro.routing.verification import verify_routing
from repro.topology.graph import Topology
from repro.util.rng import RngLike

# the four 2-D classes, in phase order
UL, DL, UR, DR = 0, 1, 2, 3
_LTURN_NAMES = ("UL", "DL", "UR", "DR")

#: Per-node release candidates for the reconstruction, down-flow first.
LTURN_RELEASE_CANDIDATES: Tuple[Tuple[int, int], ...] = (
    (DR, DL),
    (UR, DL),
    (DL, UL),
    (UR, UL),
    (DR, UL),
    (DR, UR),
)


def l_turn_channel_classes(tree: CoordinatedTree) -> List[int]:
    """Classify every channel of ``tree.topology`` into UL/DL/UR/DR.

    Up/down compares ``(Y, X)`` lexicographically (so horizontal
    channels fold into UL or DR); left/right compares ``X``.  Tree and
    cross links are deliberately *not* distinguished — that is the
    L-R-tree trait the DOWN/UP paper contrasts itself against.
    """
    topo = tree.topology
    classes: List[int] = []
    for ch in topo.channels:
        x1, y1 = tree.coordinate(ch.start)
        x2, y2 = tree.coordinate(ch.sink)
        left = x2 < x1
        if (y2, x2) < (y1, x1):  # upward (or horizontal-left)
            classes.append(UL if left else UR)
        else:  # downward (or horizontal-right)
            classes.append(DL if left else DR)
    return classes


def l_turn_turn_model(
    tree: CoordinatedTree, apply_release: bool = True
) -> TurnModel:
    """The L-turn per-switch turn state for *tree*.

    The base matrix allows a turn iff the phase does not decrease
    (``UL < DL < UR < DR``); *apply_release* then releases per-node
    redundant prohibitions via the shared cycle-detection engine.
    """
    allowed = np.zeros((4, 4), dtype=bool)
    for a in range(4):
        for b in range(4):
            allowed[a, b] = a <= b
    tm = TurnModel(
        tree.topology,
        l_turn_channel_classes(tree),
        allowed,
        class_names=_LTURN_NAMES,
    )
    if apply_release:
        release_prohibited_turns(tm, LTURN_RELEASE_CANDIDATES)
    return tm


def build_l_turn_routing(
    topology: Topology,
    method: TreeMethod = TreeMethod.M1,
    rng: RngLike = None,
    tree: Optional[CoordinatedTree] = None,
    apply_release: bool = True,
    verify: bool = True,
) -> RoutingFunction:
    """Construct the L-turn routing function (reconstruction).

    Mirrors :func:`repro.core.downup.build_down_up_routing`: the same
    coordinated tree can be shared via *tree*, ``M1``/``M2``/``M3``
    select the construction variant otherwise, and the result is
    machine-verified deadlock-free and connected.
    """
    ct = tree if tree is not None else build_coordinated_tree(
        topology, method=method, rng=rng
    )
    tm = l_turn_turn_model(ct, apply_release=apply_release)
    routing = build_routing_function(
        tm,
        name="l-turn" if apply_release else "l-turn/no-release",
        meta={
            "tree_method": method.name,
            "release": apply_release,
            "releases": len(tm.released_channel_pairs()),
            "tree": ct,
        },
    )
    return verify_routing(routing) if verify else routing


# ---------------------------------------------------------------------------
# Left-Right routing
# ---------------------------------------------------------------------------

LEFT, RIGHT = 0, 1


def left_right_channel_classes(tree: CoordinatedTree) -> List[int]:
    """Every channel is *left* (sink has smaller x) or *right*."""
    topo = tree.topology
    return [
        LEFT if tree.x[ch.sink] < tree.x[ch.start] else RIGHT
        for ch in topo.channels
    ]


def build_left_right_routing(
    topology: Topology,
    method: TreeMethod = TreeMethod.M1,
    rng: RngLike = None,
    tree: Optional[CoordinatedTree] = None,
    apply_release: bool = True,
    verify: bool = True,
) -> RoutingFunction:
    """Left-Right routing: prohibit every right -> left turn.

    Left channels strictly decrease x and right channels strictly
    increase it, so with right -> left turns prohibited no dependency
    cycle can close; the tree path is left* -> right*, so connectivity
    holds.  The optional release pass relaxes (right -> left) per node.
    """
    ct = tree if tree is not None else build_coordinated_tree(
        topology, method=method, rng=rng
    )
    allowed = np.ones((2, 2), dtype=bool)
    allowed[RIGHT, LEFT] = False
    tm = TurnModel(
        topology,
        left_right_channel_classes(ct),
        allowed,
        class_names=("LEFT", "RIGHT"),
    )
    if apply_release:
        release_prohibited_turns(tm, [(RIGHT, LEFT)])
    routing = build_routing_function(
        tm,
        name="left-right",
        meta={"tree_method": method.name, "tree": ct},
    )
    return verify_routing(routing) if verify else routing
