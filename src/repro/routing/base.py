"""Turn models and routing functions.

Every algorithm in this reproduction is a *turn-model* routing: channels
are classified into a small number of direction classes and each switch
carries a boolean "allowed" matrix over class pairs.  A packet arriving
on input channel ``a`` may leave on output channel ``b`` iff the switch's
matrix allows the class pair ``(class(a), class(b))`` — and never back
out of the link it came in on (no U-turns).  Injection from the local
processor is unrestricted.

:class:`TurnModel` stores this state with copy-on-write per-switch
matrices so that Phase-3-style per-node releases stay cheap, and
:class:`RoutingFunction` packages the final adaptive routing tables
(shortest admissible paths, per the paper's simulation methodology) for
the simulator and the static analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.topology.graph import Topology


class TurnModel:
    """Per-switch allowed-turn state over a channel classification.

    Parameters
    ----------
    topology:
        The network graph.
    channel_class:
        ``channel_class[cid]`` — integer class (0..K-1) of each channel.
    base_allowed:
        ``K x K`` boolean matrix applied at every switch initially.
        ``base_allowed[i, j]`` is True iff a turn from a class-``i``
        input to a class-``j`` output is allowed.  The diagonal is
        normally all-True (continuing in the same class is not a turn in
        the Definition-8 sense and is never prohibited by the paper's
        algorithms).
    class_names:
        Optional names for reporting (e.g. the Direction enum names).
    """

    __slots__ = (
        "topology",
        "channel_class",
        "num_classes",
        "class_names",
        "_base",
        "_overrides",
        "_pair_exceptions",
    )

    def __init__(
        self,
        topology: Topology,
        channel_class: Sequence[int],
        base_allowed: np.ndarray,
        class_names: Optional[Sequence[str]] = None,
    ) -> None:
        if len(channel_class) != topology.num_channels:
            raise ValueError(
                f"channel_class has {len(channel_class)} entries for "
                f"{topology.num_channels} channels"
            )
        base = np.asarray(base_allowed, dtype=bool)
        if base.ndim != 2 or base.shape[0] != base.shape[1]:
            raise ValueError("base_allowed must be a square matrix")
        k = base.shape[0]
        cls = np.asarray(channel_class, dtype=np.int16)
        if cls.size and (cls.min() < 0 or cls.max() >= k):
            raise ValueError(
                f"channel classes must lie in [0, {k}); got "
                f"[{cls.min()}, {cls.max()}]"
            )
        self.topology = topology
        self.channel_class = cls
        self.num_classes = k
        self.class_names = (
            tuple(class_names)
            if class_names is not None
            else tuple(f"class{i}" for i in range(k))
        )
        self._base = base
        self._base.setflags(write=False)
        self._overrides: Dict[int, np.ndarray] = {}
        # channel-pair-granular releases (Phase 3 operates per input /
        # output channel pair, not per class pair): (cid_in, cid_out)
        # entries are allowed regardless of the class matrices.
        self._pair_exceptions: set = set()

    # ------------------------------------------------------------------
    @property
    def base_matrix(self) -> np.ndarray:
        """The shared (pre-override) allowed matrix, read-only."""
        return self._base

    def allowed_matrix(self, v: int) -> np.ndarray:
        """The (read-only view of the) allowed matrix at switch *v*."""
        return self._overrides.get(v, self._base)

    def is_turn_allowed(self, v: int, cid_in: int, cid_out: int) -> bool:
        """May a packet turn from input *cid_in* to output *cid_out* at *v*?

        U-turns (back out of the same link) are always denied; otherwise
        the switch's matrix decides by channel classes.  The caller is
        responsible for *cid_in* sinking at ``v`` and *cid_out* starting
        there.
        """
        if cid_out == (cid_in ^ 1):
            return False
        if (cid_in, cid_out) in self._pair_exceptions:
            return True
        m = self._overrides.get(v, self._base)
        return bool(m[self.channel_class[cid_in], self.channel_class[cid_out]])

    def allow_channel_pair(self, cid_in: int, cid_out: int) -> None:
        """Release the single turn (cid_in -> cid_out), Phase-3 style.

        The two channels must meet at a switch (``sink(cid_in) ==
        start(cid_out)``); the release applies to this exact channel pair
        only, leaving the class-level prohibition in force for every
        other pair at the switch.
        """
        a = self.topology.channel(cid_in)
        b = self.topology.channel(cid_out)
        if a.sink != b.start:
            raise ValueError(
                f"channels {cid_in} and {cid_out} do not meet at a switch"
            )
        if cid_out == (cid_in ^ 1):
            raise ValueError("cannot release a U-turn")
        self._pair_exceptions.add((cid_in, cid_out))

    def released_channel_pairs(self) -> List[Tuple[int, int]]:
        """All channel-pair releases, sorted (Phase-3 audit trail)."""
        return sorted(self._pair_exceptions)

    def set_turn(self, v: int, cls_in: int, cls_out: int, allowed: bool) -> None:
        """Set the (cls_in -> cls_out) entry of switch *v*'s matrix.

        Installs a per-switch copy on first modification (copy-on-write).
        """
        m = self._overrides.get(v)
        if m is None:
            m = self._base.copy()
            m.setflags(write=True)
            self._overrides[v] = m
        m[cls_in, cls_out] = allowed

    def overridden_switches(self) -> List[int]:
        """Switches whose matrix differs from the base (Phase-3 releases)."""
        return sorted(
            v
            for v, m in self._overrides.items()
            if not np.array_equal(m, self._base)
        )

    def released_turns(self) -> List[Tuple[int, int, int]]:
        """All per-switch relaxations: (switch, cls_in, cls_out) triples
        that are allowed locally but prohibited by the base matrix."""
        out = []
        for v, m in sorted(self._overrides.items()):
            extra = np.argwhere(m & ~self._base)
            out.extend((v, int(i), int(j)) for i, j in extra)
        return out

    # ------------------------------------------------------------------
    # introspection (consumed by the turn-optimality auditor in
    # repro.statics.audit and by reporting code; none of these mutate)
    # ------------------------------------------------------------------
    def prohibited_class_turns(self) -> List[Tuple[int, int]]:
        """Class pairs the *base* matrix prohibits, sorted.

        These are the prohibited-turn set PT at class granularity —
        per-switch overrides and channel-pair releases are deliberately
        not folded in (they are *local* relaxations; see
        :meth:`released_turns` / :meth:`released_channel_pairs`).
        """
        out = np.argwhere(~self._base)
        return [(int(i), int(j)) for i, j in out]

    def realized_class_turns(self) -> set:
        """Class pairs realized by at least one channel pair somewhere.

        A class turn ``(i, j)`` is *realized* when some switch has an
        input channel of class ``i`` and an output channel of class
        ``j`` forming a legal (non-U-turn) pair — i.e. prohibiting it
        actually removes a dependency edge.  A prohibited class turn
        that is never realized is *vacuous* on this topology.
        """
        topo = self.topology
        cls = self.channel_class
        realized: set = set()
        for v in range(topo.n):
            ins = topo.input_channels(v)
            outs = topo.output_channels(v)
            for a in ins:
                for b in outs:
                    if b != (a ^ 1):
                        realized.add((int(cls[a]), int(cls[b])))
        return realized

    def allowed_channel_pairs(self) -> List[Tuple[int, int]]:
        """Every admissible (cid_in, cid_out) pair, sorted.

        The edge list of the full allowed-turn dependency digraph this
        model induces — the object whose acyclicity Theorem 1 certifies.
        """
        topo = self.topology
        pairs: List[Tuple[int, int]] = []
        for v in range(topo.n):
            for a in topo.input_channels(v):
                for b in topo.output_channels(v):
                    if self.is_turn_allowed(v, a, b):
                        pairs.append((a, b))
        return sorted(pairs)

    def turn_census(self) -> Dict[str, int]:
        """Summary counts over the realized channel-pair relation."""
        topo = self.topology
        total = 0
        allowed = 0
        for v in range(topo.n):
            for a in topo.input_channels(v):
                for b in topo.output_channels(v):
                    if b == (a ^ 1):
                        continue
                    total += 1
                    if self.is_turn_allowed(v, a, b):
                        allowed += 1
        prohibited_cls = self.prohibited_class_turns()
        realized = self.realized_class_turns()
        vacuous = [t for t in prohibited_cls if t not in realized]
        return {
            "channel_pairs": total,
            "allowed_pairs": allowed,
            "prohibited_pairs": total - allowed,
            "released_pairs": len(self._pair_exceptions),
            "prohibited_class_turns": len(prohibited_cls),
            "vacuous_prohibited_class_turns": len(vacuous),
        }

    def copy(self) -> "TurnModel":
        """Deep copy (used by ablations toggling Phase 3)."""
        clone = TurnModel(
            self.topology, self.channel_class, self._base.copy(), self.class_names
        )
        clone._overrides = {v: m.copy() for v, m in self._overrides.items()}
        clone._pair_exceptions = set(self._pair_exceptions)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TurnModel(classes={self.num_classes}, "
            f"overrides={len(self._overrides)})"
        )


@dataclass(frozen=True)
class RoutingFunction:
    """An adaptive routing function over shortest admissible paths.

    The simulation methodology of Section 5 routes every packet along
    *shortest possible paths* under the algorithm's turn restrictions,
    choosing randomly when several minimal options exist.  This object
    precomputes, for every destination:

    ``dist[d][c]``
        Remaining hops (channels still to traverse) after arriving over
        channel ``c``, on a shortest admissible path to ``d``
        (``UNREACHABLE`` when none exists; ``0`` iff ``sink(c) == d``).
    ``next_hops[d][c]``
        The minimal admissible output channels for a packet that arrived
        over ``c`` and still heads to ``d``.
    ``first_hops[d][s]``
        The minimal output channels for a packet injected at ``s``.

    All candidate sets are *complete* (every minimal admissible choice is
    listed), which is what makes the routing adaptive.
    """

    topology: Topology
    name: str
    turn_model: TurnModel
    dist: np.ndarray  # (n_dest, n_channels) int32
    next_hops: Tuple[Tuple[Tuple[int, ...], ...], ...]
    first_hops: Tuple[Tuple[Tuple[int, ...], ...], ...]
    meta: Dict[str, object] = field(default_factory=dict)

    UNREACHABLE = np.iinfo(np.int32).max

    def candidates(
        self, input_channel: Optional[int], node: int, dest: int
    ) -> Tuple[int, ...]:
        """Admissible minimal output channels at *node* toward *dest*.

        *input_channel* is ``None`` for a freshly injected packet.  An
        empty tuple with ``node == dest`` means "consume locally".
        """
        if node == dest:
            return ()
        if input_channel is None:
            return self.first_hops[dest][node]
        return self.next_hops[dest][input_channel]

    def path_length(self, src: int, dest: int) -> int:
        """Hops (channels) on a shortest admissible path from *src* to *dest*."""
        if src == dest:
            return 0
        opts = self.first_hops[dest][src]
        if not opts:
            raise ValueError(f"{self.name}: no admissible path {src}->{dest}")
        return 1 + min(int(self.dist[dest][c]) for c in opts)

    def average_path_length(self) -> float:
        """Mean shortest admissible path length over all ordered pairs."""
        n = self.topology.n
        total = 0
        pairs = 0
        for s in range(n):
            for d in range(n):
                if s != d:
                    total += self.path_length(s, d)
                    pairs += 1
        return total / pairs if pairs else 0.0

    def deterministic(self, rng=None) -> "RoutingFunction":
        """A deterministic variant: one fixed choice per decision point.

        Related work [6] (Sancho/Robles/Duato) studies *deterministic
        source routing* on irregular networks; this derives the
        deterministic counterpart of any adaptive routing here by
        fixing, per decision point, a single candidate (chosen with
        *rng*, defaulting to the first).  Distances, deadlock freedom
        and connectivity are untouched — only the adaptive freedom is
        removed — so the pair isolates the value of adaptivity in
        benchmarks.
        """
        from repro.util.rng import as_generator

        gen = None if rng is None else as_generator(rng)

        def pick(options: Tuple[int, ...]) -> Tuple[int, ...]:
            if len(options) <= 1:
                return options
            if gen is None:
                return (options[0],)
            return (options[int(gen.integers(len(options)))],)

        next_hops = tuple(
            tuple(pick(opts) for opts in per_dest) for per_dest in self.next_hops
        )
        first_hops = tuple(
            tuple(pick(opts) for opts in per_dest) for per_dest in self.first_hops
        )
        return RoutingFunction(
            topology=self.topology,
            name=f"{self.name}/deterministic",
            turn_model=self.turn_model,
            dist=self.dist,
            next_hops=next_hops,
            first_hops=first_hops,
            meta={**self.meta, "deterministic": True},
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RoutingFunction({self.name!r}, n={self.topology.n})"
