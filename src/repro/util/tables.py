"""Plain-text table rendering for experiment reports.

The paper reports its results as small tables (Tables 1-4).  Since the
evaluation environment is terminal-only, the harness prints the
regenerated tables in a monospace layout that mirrors the paper's rows
(coordinated-tree method) and columns (algorithm x port configuration).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def _cell(value: object, width: int, numeric: bool) -> str:
    text = value if isinstance(value, str) else _format_value(value)
    return text.rjust(width) if numeric else text.ljust(width)


def _format_value(value: object) -> str:
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render *rows* under *headers* as an ASCII table.

    Columns are sized to their widest entry; numeric columns (those whose
    body cells are all int/float) are right-aligned.  Returns the table as
    a single string (no trailing newline).
    """
    body = [[_format_value(c) for c in row] for row in rows]
    ncols = len(headers)
    for row in body:
        if len(row) != ncols:
            raise ValueError(f"row {row} does not match {ncols} headers")
    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    numeric = [
        all(_is_numeric_text(row[i]) for row in body) if body else False
        for i in range(ncols)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in body:
        lines.append(
            " | ".join(_cell(c, w, n) for c, w, n in zip(row, widths, numeric))
        )
    return "\n".join(lines)


def _is_numeric_text(text: str) -> bool:
    try:
        float(text)
        return True
    except ValueError:
        return False


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render the same data as CSV (for machine-readable experiment output)."""
    out = [",".join(str(h) for h in headers)]
    for row in rows:
        out.append(",".join(_format_value(c) for c in row))
    return "\n".join(out)
