"""Terminal scatter/line plots for latency-vs-throughput curves.

Figure 8 of the paper plots average message latency against accepted
traffic for each routing algorithm and coordinated-tree method.  With no
graphics stack available offline, the harness renders those curves on a
character grid: one glyph per series, points mapped onto an ``x``/``y``
grid with linear scales and labelled axes.  The same data is also written
as CSV so it can be re-plotted elsewhere.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence, Tuple

Series = Dict[str, Sequence[Tuple[float, float]]]

_GLYPHS = "*o+x#@%&$"


def ascii_xy_plot(
    series: Series,
    width: int = 72,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
) -> str:
    """Render *series* (name -> [(x, y), ...]) on a character grid.

    Each series gets a distinct glyph; overlapping points show the glyph
    of the later series.  Axis extremes are annotated with their numeric
    values.  Returns the plot as a single string.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return f"{title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        legend.append(f"{glyph} = {name}")
        for x, y in pts:
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(round((y - y_lo) / y_span * (height - 1)))
            if math.isfinite(x) and math.isfinite(y):
                grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}  (top={y_hi:.4g}, bottom={y_lo:.4g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: left={x_lo:.4g}, right={x_hi:.4g}")
    lines.extend(legend)
    return "\n".join(lines)
