"""Crash-safe filesystem primitives shared by the durability layers.

The ledger, the artifact cache and the distributed executor all publish
files that other processes read concurrently — possibly on another host
through a shared filesystem.  The one safe publication idiom is
write-to-temp + ``os.replace``: readers only ever observe a missing
file or a complete one, never a torn prefix.  This module is the single
home of that idiom so every campaign artefact (CSV, ASCII plot,
manifest, lease, poison marker) uses exactly the same discipline.
"""

from __future__ import annotations

import itertools
import os
import socket
from pathlib import Path
from typing import Union

#: per-process sequence in the temp-file name: pids alone can collide
#: across hosts sharing one filesystem, host+pid+seq cannot (within a
#: process's lifetime)
_SEQ = itertools.count()


def _tmp_name(name: str) -> str:
    token = f"{socket.gethostname()}-{os.getpid()}-{next(_SEQ)}"
    return f"tmp-{name}-{token}"


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Publish *text* at *path* atomically (tmp + fsync + ``os.replace``).

    Concurrent writers may race; the loser's content simply replaces the
    winner's, and a reader never sees a partial file.  Campaign artefact
    writers rely on this when several distributed workers finish a stage
    near-simultaneously and each publishes the (byte-identical) result.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / _tmp_name(path.name)
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
