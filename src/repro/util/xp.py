"""Thin array-backend seam for the stacked (replica-batched) kernels.

The replica-batched simulation core (:mod:`repro.simulator.replica_batch`)
writes its fused per-clock kernels against this module instead of
importing :mod:`numpy` directly, so the stacked array work — the only
part of the clock loop that is pure bulk arithmetic — has a single
place where an accelerator backend could be swapped in.

Backend selection is by the ``REPRO_ARRAY_BACKEND`` environment
variable, read once at import:

``numpy`` (default, and the only *certified* backend)
    Everything in CI, every committed benchmark and every equivalence
    certificate runs on numpy.  The determinism contract (replica
    packing is fingerprint-invariant) is only asserted here.
``cupy`` / ``torch``
    Feature-gated experiments: selected only explicitly, never by
    auto-detection, and refused with a clear error when the library is
    not installed.  Results produced on these backends are *not*
    covered by the equivalence certificates — floating-point
    reductions, RNG bit streams and integer overflow semantics may all
    differ — so they must be re-certified before feeding any paper
    artefact (see docs/simulator.md, "the array-backend seam").

The seam is deliberately *thin*: it exposes the array namespace
(``xp``), the handful of helpers the stacked kernels need, and
explicit host/device transfer points (:func:`to_device` /
:func:`to_host`).  Scalar bookkeeping (worm objects, queues,
arbitration fallbacks) always stays on the host in numpy/Python —
the seam covers the stacked bulk phases only.
"""

from __future__ import annotations

import os
from typing import Any, Tuple

import numpy

#: environment variable naming the backend (read once at import)
BACKEND_ENV = "REPRO_ARRAY_BACKEND"

#: backends this seam knows how to load
KNOWN_BACKENDS: Tuple[str, ...] = ("numpy", "cupy", "torch")


class BackendUnavailable(RuntimeError):
    """The requested array backend is not importable in this environment."""


def _load_backend(name: str) -> Any:
    """Import and return the array namespace for *name*.

    ``torch`` is wrapped in a tiny adapter exposing the numpy-style
    subset the kernels use; ``cupy`` is numpy-compatible as-is.
    """
    if name == "numpy":
        return numpy
    if name == "cupy":
        try:
            import cupy  # type: ignore[import-not-found]
        except ImportError as exc:  # pragma: no cover - optional dep
            raise BackendUnavailable(
                f"{BACKEND_ENV}=cupy but cupy is not installed; install "
                "cupy matching your CUDA toolkit, or unset the variable"
            ) from exc
        return cupy  # pragma: no cover - optional dep
    if name == "torch":
        try:
            import torch  # type: ignore[import-not-found]  # noqa: F401
        except ImportError as exc:  # pragma: no cover - optional dep
            raise BackendUnavailable(
                f"{BACKEND_ENV}=torch but torch is not installed; "
                "install pytorch, or unset the variable"
            ) from exc
        # torch's numpy-compat namespace covers the kernel subset
        # (zeros/full/concatenate/searchsorted/...) in recent releases
        return torch  # pragma: no cover - optional dep
    raise ValueError(
        f"{BACKEND_ENV}={name!r} is not one of {KNOWN_BACKENDS}"
    )


#: the selected backend's name (``numpy`` unless overridden)
BACKEND_NAME: str = os.environ.get(BACKEND_ENV, "numpy").strip() or "numpy"

#: the array namespace the stacked kernels import (``from repro.util.xp
#: import xp``); numpy-compatible by contract
xp: Any = _load_backend(BACKEND_NAME)


def is_numpy() -> bool:
    """True when the seam resolves to plain numpy (the certified path).

    The replica core consults this to decide whether zero-copy row
    views into engine state are legal: only the numpy backend shares
    memory with the per-replica scalar bookkeeping.
    """
    return BACKEND_NAME == "numpy"


def to_device(arr: "numpy.ndarray") -> Any:
    """Move a host (numpy) array onto the selected backend."""
    if BACKEND_NAME == "numpy":
        return arr
    if BACKEND_NAME == "cupy":  # pragma: no cover - optional dep
        return xp.asarray(arr)
    return xp.from_numpy(arr)  # pragma: no cover - optional dep


def to_host(arr: Any) -> "numpy.ndarray":
    """Return *arr* as a host numpy array (copying off-device if needed)."""
    if BACKEND_NAME == "numpy":
        return arr
    if BACKEND_NAME == "cupy":  # pragma: no cover - optional dep
        return xp.asnumpy(arr)
    return arr.cpu().numpy()  # pragma: no cover - optional dep
