"""Deterministic random-number plumbing.

Every stochastic component in the reproduction (topology generation, the
``M2`` coordinated-tree ordering, adaptive tie-breaking in the simulator,
traffic generation) takes an explicit random source.  This module
normalises what callers may pass — an integer seed, ``None``, or an
existing :class:`numpy.random.Generator` — into a ``Generator`` and offers
a cheap way to derive independent child streams, so that an experiment
seeded once is reproducible end to end while its sub-components stay
statistically independent.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Things accepted wherever a random source is expected.
RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *rng*.

    ``None`` yields a fresh OS-seeded generator; an ``int`` or a
    :class:`numpy.random.SeedSequence` seeds a new PCG64 stream; an
    existing ``Generator`` is returned as-is (shared, not copied).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(rng))
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot interpret {rng!r} as a random source")


def spawn_child(rng: RngLike, key: int) -> np.random.Generator:
    """Derive an independent child generator from *rng* and an integer *key*.

    The derivation is deterministic: the same ``(rng seed, key)`` pair
    always produces the same child stream.  When *rng* is already a
    ``Generator`` the child is seeded from the parent's bit stream (which
    advances the parent — callers who need full determinism should pass
    seeds, not shared generators).
    """
    if isinstance(rng, (int, np.integer)):
        return np.random.Generator(
            np.random.PCG64(np.random.SeedSequence(entropy=int(rng), spawn_key=(int(key),)))
        )
    if isinstance(rng, np.random.SeedSequence):
        return np.random.Generator(np.random.PCG64(rng.spawn(1)[0]))
    gen = as_generator(rng)
    seed = int(gen.integers(0, 2**63 - 1)) ^ (int(key) * 0x9E3779B97F4A7C15 % 2**63)
    return np.random.default_rng(seed)


def derive_seed(seed: Optional[int], *keys: int) -> int:
    """Mix *seed* with *keys* into a new 63-bit seed (splitmix-style).

    Used by experiment configs to give each (sample, algorithm, load
    point) its own reproducible seed without threading generators through
    every layer.
    """
    h = (seed if seed is not None else 0x51AB_DEAD_BEEF) & (2**64 - 1)
    for k in keys:
        h = (h ^ (int(k) & (2**64 - 1))) * 0x9E3779B97F4A7C15 % 2**64
        h ^= h >> 29
        h = h * 0xBF58476D1CE4E5B9 % 2**64
        h ^= h >> 32
    return h & (2**63 - 1)
