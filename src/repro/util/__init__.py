"""Shared utilities: deterministic RNG plumbing, ASCII tables and plots.

Nothing in this package knows about networks or routing; it exists so that
the domain packages (:mod:`repro.topology`, :mod:`repro.core`,
:mod:`repro.simulator`, ...) can stay focused on the paper's concepts.
"""

from repro.util.rng import RngLike, as_generator, spawn_child
from repro.util.tables import format_table
from repro.util.ascii_plot import ascii_xy_plot

__all__ = [
    "RngLike",
    "as_generator",
    "spawn_child",
    "format_table",
    "ascii_xy_plot",
]
