"""The one sanctioned wall-clock source.

Simulation, routing, and fault code must never read the wall clock —
results have to be a pure function of the seed and the engine clock
(invariant-linter rule ``STA001``).  The few places that legitimately
measure elapsed *real* time (campaign stage timings, benchmark
harnesses) take an injectable ``Clock`` and default it through this
module, mirroring how :mod:`repro.util.rng` is the one sanctioned
randomness source.  Tests inject a fake clock and get deterministic
timings.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

#: A zero-argument callable returning seconds as a float.
Clock = Callable[[], float]


def wall_clock() -> float:
    """Monotonic wall-clock seconds (the default stage timer)."""
    return time.perf_counter()


def utc_stamp() -> str:
    """Human-readable UTC timestamp for *diagnostic* sidecars only.

    Never feeds a correctness decision: the distributed lease protocol
    compares monotonic heartbeat counters, not timestamps, precisely so
    that clock skew between hosts cannot cause double-execution
    decisions.  This exists for operators reading lock-owner sidecars.
    """
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


def resolve_clock(clock: Optional[Clock]) -> Clock:
    """*clock* itself, or the real wall clock when ``None``."""
    return clock if clock is not None else wall_clock
