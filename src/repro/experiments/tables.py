"""Tables 1-4 — saturation-regime utilization statistics.

The paper measures node utilization, traffic load, degree of hot spots
and leaves utilization "when both routing algorithms reach their
maximal throughputs".  ``run_tables`` reproduces this with saturated
sources (offered load 1 flit/clock/node, queues never drain): for every
sample, tree method and algorithm one saturated run provides all four
metrics, which are then averaged over samples — one run feeds all four
tables, as in the paper.

``run_static_tables`` computes the same four metrics from the exact
static path analysis instead (:mod:`repro.analysis`) — no simulation,
full paper scale in seconds.  Absolute values differ from the dynamic
run (no queueing, normalised loads); the paper's *orderings* (DOWN/UP
vs L-turn, M1 vs M2 vs M3) are what it cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.static_load import static_utilization_report
from repro.experiments.configs import ExperimentPreset
from repro.experiments.harness import (
    PAPER_ALGORITHMS,
    PAPER_METHODS,
    build_routings,
    make_topology,
)
from repro.metrics.saturation import measure_at_saturation
from repro.metrics.utilization import utilization_report
from repro.util.fsio import atomic_write_text
from repro.util.rng import derive_seed
from repro.util.tables import format_csv

if TYPE_CHECKING:  # import cycle-free annotation only
    from repro.experiments.distributed import WorkerConfig
    from repro.experiments.parallel import UnitFailure

#: metric key -> (paper table number, pretty title)
TABLE_METRICS: Dict[str, Tuple[int, str]] = {
    "node_utilization": (1, "node utilization"),
    "traffic_load": (2, "traffic load (stddev of node utilization)"),
    "hot_spot_degree": (3, "degree of hot spots (%)"),
    "leaves_utilization": (4, "leaves utilization"),
}


@dataclass
class TablesResult:
    """Aggregated Tables 1-4 data.

    ``values[(metric, algorithm, method, ports)]`` is the mean over
    samples; ``throughput[(algorithm, method, ports)]`` records the
    accepted traffic of the saturated runs (context for EXPERIMENTS.md).
    ``failures`` lists every work unit that exhausted its retry budget
    (empty on a clean run); when non-empty the means cover fewer
    samples than requested and the CLI exits nonzero.
    """

    preset: str
    kind: str  # "simulated" or "static"
    samples: int
    values: Dict[Tuple[str, str, str, int], float] = field(default_factory=dict)
    throughput: Dict[Tuple[str, str, int], float] = field(default_factory=dict)
    raw: List[Tuple[str, str, str, int, int, float]] = field(
        default_factory=list
    )  # (metric, algorithm, method, ports, sample, value)
    failures: List["UnitFailure"] = field(default_factory=list)

    def value(self, metric: str, algorithm: str, method: str, ports: int) -> float:
        """Mean value of one cell of a paper table."""
        return self.values[(metric, algorithm, method, ports)]

    def to_csv(self) -> str:
        """Every per-sample metric value as CSV."""
        return format_csv(
            ("metric", "algorithm", "method", "ports", "sample", "value"),
            self.raw,
        )


def _metric_order(report: Dict[str, float]) -> List[str]:
    """CSV row order for one unit's metrics.

    Canonical (:data:`TABLE_METRICS` first, extras after) rather than
    the report dict's iteration order, so a unit merged back from a
    JSON-round-tripped ledger record emits its rows exactly like a
    freshly simulated one — byte-identity of ``tables_simulated.csv``
    between resumed and uninterrupted runs depends on it.
    """
    ordered = [m for m in TABLE_METRICS if m in report]
    return ordered + [m for m in report if m not in TABLE_METRICS]


def _aggregate(result: TablesResult) -> None:
    sums: Dict[Tuple[str, str, str, int], List[float]] = {}
    for metric, alg, method, ports, _sample, value in result.raw:
        sums.setdefault((metric, alg, method, ports), []).append(value)
    for key, vals in sums.items():
        result.values[key] = sum(vals) / len(vals)


def run_tables(
    preset: ExperimentPreset,
    ports_list: Optional[Sequence[int]] = None,
    methods: Sequence[str] = PAPER_METHODS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    out_dir: Optional[Path] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
    ledger_path: Optional[Path] = None,
    resume: bool = True,
    retries: Optional[int] = None,
    clock=None,
    artifact_cache: Optional[Path] = None,
    distributed: Optional["WorkerConfig"] = None,
    unit_timeout: Optional[float] = None,
) -> TablesResult:
    """Regenerate Tables 1-4 by simulation at saturation.

    ``workers > 1`` distributes the saturated runs over a process pool
    (:mod:`repro.experiments.parallel`).  *ledger_path* streams every
    completed unit to a durable
    :class:`~repro.experiments.ledger.ResultLedger` and (with *resume*)
    skips units already recorded, merging them back in input order —
    the aggregation keys on the unit tuple, so records are accepted in
    any order and a resumed run reproduces an uninterrupted one
    byte-identically.  *retries*/*clock*/*artifact_cache* as in
    :func:`~repro.experiments.figure8.run_figure8` — the cache reuses
    the (topology, tree, routing) constructions a Figure-8 run of the
    same preset already published.  *distributed* joins a shared
    multi-host campaign as one lease-claiming worker
    (:mod:`repro.experiments.distributed`); *unit_timeout* bounds each
    unit's wall time — both as in
    :func:`~repro.experiments.figure8.run_figure8`.
    """
    ports_list = tuple(ports_list if ports_list is not None else preset.ports)
    result = TablesResult(preset=preset.name, kind="simulated", samples=preset.samples)
    thr: Dict[Tuple[str, str, int], List[float]] = {}

    records: Optional[List[Dict[str, object]]] = None
    if distributed is not None:
        from repro.experiments.distributed import run_distributed
        from repro.experiments.parallel import tables_units

        units = tables_units(preset, ports_list, methods, algorithms)
        records = run_distributed(
            units,
            distributed.stage_dir("tables"),
            distributed,
            progress=progress,
            retries=retries,
            unit_timeout=unit_timeout,
            cache_path=artifact_cache,
            failures=result.failures,
        )
    elif workers > 1 or ledger_path is not None or preset.replicas > 1:
        # replicated presets must expand into per-replica work units even
        # on the serial path — the inline sweep below knows nothing about
        # replicas and would silently run each cell once
        from repro.experiments.ledger import ResultLedger
        from repro.experiments.parallel import run_parallel, tables_units

        units = tables_units(preset, ports_list, methods, algorithms)
        ledger = (
            ResultLedger(ledger_path, resume=resume)
            if ledger_path is not None
            else None
        )
        kwargs = {} if retries is None else {"retries": retries}
        try:
            records = run_parallel(
                units,
                max_workers=workers,
                progress=progress,
                ledger=ledger,
                clock=clock,
                failures=result.failures,
                cache_path=artifact_cache,
                unit_timeout=unit_timeout,
                **kwargs,
            )
        finally:
            if ledger is not None:
                ledger.close()

    if records is not None:
        for res in records:
            # replicated presets append a replica index to the unit key;
            # each replica aggregates as one more independent observation
            alg, method, ports, sample, _rate = res["key"][:5]
            report = dict(res["report"])
            for metric in _metric_order(report):
                result.raw.append(
                    (metric, alg, method, ports, sample, report[metric])
                )
            thr.setdefault((alg, method, ports), []).append(res["accepted"])
        _aggregate(result)
        for key, vals in thr.items():
            result.throughput[key] = sum(vals) / len(vals)
        if out_dir is not None:
            atomic_write_text(
                Path(out_dir) / "tables_simulated.csv", result.to_csv() + "\n"
            )
        return result

    cache = None
    if artifact_cache is not None:
        from repro.experiments.artifacts import ArtifactCache

        cache = ArtifactCache(artifact_cache)
    for ports in ports_list:
        for sample in range(preset.samples):
            topology = make_topology(preset, ports, sample, cache=cache)
            routings = build_routings(
                topology,
                preset,
                sample,
                methods=methods,
                algorithms=algorithms,
                cache=cache,
            )
            if cache is not None:
                cache.flush_counters()
            for (alg, method), (routing, tree) in routings.items():
                seed = derive_seed(preset.seed, 0x7AB, ports, sample)
                cfg = preset.sim_config(seed)
                stats = measure_at_saturation(routing, cfg)
                report = utilization_report(stats.channel_utilization(), tree)
                for metric in _metric_order(report):
                    result.raw.append(
                        (metric, alg, method, ports, sample, report[metric])
                    )
                thr.setdefault((alg, method, ports), []).append(
                    stats.accepted_traffic
                )
                if progress is not None:
                    progress(
                        f"[tables/{ports}p] sample {sample} {alg}/{method}: "
                        f"throughput={stats.accepted_traffic:.4f} "
                        f"hotspots={report['hot_spot_degree']:.2f}%"
                    )
    _aggregate(result)
    for key, vals in thr.items():
        result.throughput[key] = sum(vals) / len(vals)

    if out_dir is not None:
        atomic_write_text(
            Path(out_dir) / "tables_simulated.csv", result.to_csv() + "\n"
        )
    return result


def run_static_tables(
    preset: ExperimentPreset,
    ports_list: Optional[Sequence[int]] = None,
    methods: Sequence[str] = PAPER_METHODS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    out_dir: Optional[Path] = None,
    progress: Optional[Callable[[str], None]] = None,
    artifact_cache: Optional[Path] = None,
) -> TablesResult:
    """Tables 1-4 metrics from the exact static path analysis."""
    ports_list = tuple(ports_list if ports_list is not None else preset.ports)
    result = TablesResult(preset=preset.name, kind="static", samples=preset.samples)

    cache = None
    if artifact_cache is not None:
        from repro.experiments.artifacts import ArtifactCache

        cache = ArtifactCache(artifact_cache)
    for ports in ports_list:
        for sample in range(preset.samples):
            topology = make_topology(preset, ports, sample, cache=cache)
            routings = build_routings(
                topology,
                preset,
                sample,
                methods=methods,
                algorithms=algorithms,
                cache=cache,
            )
            if cache is not None:
                cache.flush_counters()
            for (alg, method), (routing, tree) in routings.items():
                report = static_utilization_report(routing, tree)
                for metric in _metric_order(report):
                    result.raw.append(
                        (metric, alg, method, ports, sample, report[metric])
                    )
                if progress is not None:
                    progress(
                        f"[static/{ports}p] sample {sample} {alg}/{method}: "
                        f"hotspots={report['hot_spot_degree']:.2f}%"
                    )
    _aggregate(result)

    if out_dir is not None:
        atomic_write_text(
            Path(out_dir) / "tables_static.csv", result.to_csv() + "\n"
        )
    return result
