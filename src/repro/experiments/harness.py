"""Shared experiment plumbing.

The paper's methodology (Section 5) compares algorithms *under the same
coordinated tree* on *the same test samples*: for each random topology
and each tree-construction method (M1/M2/M3) one tree is built, and
every algorithm routes on it.  ``build_routings`` reproduces exactly
that pairing; ``make_topology`` derives each sample's topology
deterministically from the preset seed, so every experiment (and every
re-run) sees identical inputs.
"""

from __future__ import annotations

import zlib
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.artifacts import ArtifactCache

from repro.core.coordinated_tree import (
    CoordinatedTree,
    TreeMethod,
    build_coordinated_tree,
)
from repro.core.downup import build_down_up_routing
from repro.experiments.configs import ExperimentPreset
from repro.routing.base import RoutingFunction
from repro.routing.lturn import build_l_turn_routing, build_left_right_routing
from repro.routing.updown import build_up_down_routing
from repro.topology.generator import random_irregular_topology
from repro.topology.graph import Topology
from repro.util.rng import derive_seed

#: Routing builders by harness name.  Each accepts
#: ``(topology, tree=..., rng=...)`` and returns a verified
#: :class:`RoutingFunction`.
ALGORITHMS: Dict[str, Callable[..., RoutingFunction]] = {
    "down-up": lambda topo, tree, rng: build_down_up_routing(topo, tree=tree, rng=rng),
    "down-up/no-release": lambda topo, tree, rng: build_down_up_routing(
        topo, tree=tree, rng=rng, apply_phase3=False
    ),
    "l-turn": lambda topo, tree, rng: build_l_turn_routing(topo, tree=tree, rng=rng),
    "l-turn/no-release": lambda topo, tree, rng: build_l_turn_routing(
        topo, tree=tree, rng=rng, apply_release=False
    ),
    "up-down": lambda topo, tree, rng: build_up_down_routing(topo, tree=tree),
    "up-down/dfs": lambda topo, tree, rng: build_up_down_routing(
        topo, tree=None, variant="dfs"
    ),
    "left-right": lambda topo, tree, rng: build_left_right_routing(
        topo, tree=tree, rng=rng
    ),
}

#: Tree-construction methods by paper name.
TREE_METHODS: Dict[str, TreeMethod] = {
    "M1": TreeMethod.M1,
    "M2": TreeMethod.M2,
    "M3": TreeMethod.M3,
}

#: The two algorithms the paper's tables and figures compare.
PAPER_ALGORITHMS: Tuple[str, ...] = ("l-turn", "down-up")
#: All three tree methods of Section 5.
PAPER_METHODS: Tuple[str, ...] = ("M1", "M2", "M3")


def make_topology(
    preset: ExperimentPreset,
    ports: int,
    sample: int,
    cache: Optional["ArtifactCache"] = None,
) -> Topology:
    """Sample topology #*sample* for a port count, deterministically.

    With *cache*, the generated topology is fetched from / published to
    the content-addressed artifact store, keyed by its full input
    closure ``(n, ports, derived seed)``.
    """
    seed = derive_seed(preset.seed, ports, sample)
    build = lambda: random_irregular_topology(
        n=preset.n_switches, ports=ports, rng=seed
    )
    if cache is None:
        return build()
    return cache.topology(preset.n_switches, ports, seed, build)


def make_tree(
    topology: Topology,
    method: str,
    preset: ExperimentPreset,
    sample: int,
    cache: Optional["ArtifactCache"] = None,
) -> CoordinatedTree:
    """The coordinated tree for (*topology*, *method*), deterministic."""
    tm = TREE_METHODS[method]
    seed = derive_seed(preset.seed, 0xC7, sample, ord(method[-1]))
    build = lambda: build_coordinated_tree(topology, method=tm, rng=seed)
    if cache is None:
        return build()
    return cache.tree(topology, method, seed, build)


def build_routings(
    topology: Topology,
    preset: ExperimentPreset,
    sample: int,
    methods: Iterable[str] = PAPER_METHODS,
    algorithms: Iterable[str] = PAPER_ALGORITHMS,
    cache: Optional["ArtifactCache"] = None,
) -> Dict[Tuple[str, str], Tuple[RoutingFunction, CoordinatedTree]]:
    """All (algorithm, method) routing functions for one test sample.

    One coordinated tree per method, shared by every algorithm — the
    paper's "under the same coordinated tree" comparison.  Returns
    ``{(algorithm, method): (routing, tree)}``; every routing has been
    verified deadlock-free and connected by its builder.

    With *cache* every constructed artifact is fetched from / published
    to the content-addressed store: across a campaign, each
    (tree, routing) pair is built once instead of once per work unit.
    The cached path is bit-identical to the built one (asserted by the
    equivalence suite).
    """
    out: Dict[Tuple[str, str], Tuple[RoutingFunction, CoordinatedTree]] = {}
    for method in methods:
        tree = make_tree(topology, method, preset, sample, cache=cache)
        tree_key = ""
        if cache is not None:
            from repro.experiments.artifacts import tree_key_digest

            tree_key = tree_key_digest(
                topology,
                method,
                derive_seed(preset.seed, 0xC7, sample, ord(method[-1])),
            )
        for alg in algorithms:
            builder = ALGORITHMS[alg]
            seed = derive_seed(
                preset.seed, 0xA19, sample, zlib.crc32(alg.encode())
            )
            build = lambda: builder(topology, tree=tree, rng=seed)
            if cache is None:
                routing = build()
            else:
                routing = cache.routing(topology, tree_key, alg, seed, build)
            out[(alg, method)] = (routing, tree)
    return out
