"""Experiment scale presets.

The paper's configuration (128 switches, 10 random samples per port
count, 128-flit packets, simulation to saturation) is expensive for a
pure-Python flit-level simulator, so every experiment takes a preset:

``paper``
    The verbatim Section-5 scale.  Hours of CPU; use for final archival
    runs.
``midscale``
    64 switches, 3 samples, 32-flit packets — the scale EXPERIMENTS.md
    records; preserves every qualitative comparison at ~1/50 the cost.
``quick``
    32 switches, 2 samples, 16-flit packets, short windows — minutes;
    used by the ``benchmarks/`` harness.
``tiny``
    16 switches, 1 sample — seconds; integration tests.

All presets exercise identical code paths; only sizes differ.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.simulator.config import SimulationConfig


@dataclass(frozen=True)
class ExperimentPreset:
    """Scale parameters shared by the figure and table harnesses.

    ``rates`` are the offered loads (flits/clock/node) swept for
    Figure 8 on 4-port networks; 8-port networks offer roughly double
    the bisection, so the sweep is scaled by ``rate_scale_8port``.
    """

    name: str
    n_switches: int
    ports: Tuple[int, ...]
    samples: int
    packet_length: int
    warmup_clocks: int
    measure_clocks: int
    rates: Tuple[float, ...]
    rate_scale_8port: float
    seed: int
    #: step-engine override for every run in the campaign; ``None``
    #: defers to the config default (``REPRO_ENGINE`` env, else the
    #: fast path).  Bit-exact engines ("reference" / "fast" /
    #: "vectorized") give bit-identical results — choosing among them
    #: only trades speed.  The relaxed engine ("batch") is
    #: deterministic per seed but certified only distributionally
    #: (``repro.simulator.equivalence``): its units get engine-variant
    #: ledger digests and results tagged ``equivalence: statistical``,
    #: and it must be pinned here, not via ``REPRO_ENGINE``.
    engine: Optional[str] = None
    #: seed-replicas per work unit.  1 (default) keeps the classic one
    #: -run-per-unit shape.  R > 1 expands every (sample, algorithm,
    #: method, rate) cell into R units whose seeds follow the
    #: replica-derivation scheme of
    #: :func:`repro.simulator.replica_batch.replica_seeds`; with a
    #: relaxed ``engine`` the runner folds sibling replicas into one
    #: fused :func:`~repro.simulator.replica_batch.run_replicated`
    #: sweep — per-seed results and ledger records are unchanged
    #: (packing invariance), only the wall clock drops.
    replicas: int = 1

    def sim_config(self, seed: int) -> SimulationConfig:
        """Base simulator config (rate is set per sweep point)."""
        return SimulationConfig(
            packet_length=self.packet_length,
            injection_rate=0.0,
            warmup_clocks=self.warmup_clocks,
            measure_clocks=self.measure_clocks,
            seed=seed,
            engine=self.engine,
        )

    def rates_for(self, ports: int) -> Tuple[float, ...]:
        """The Figure-8 offered-load grid for a port count."""
        scale = self.rate_scale_8port if ports >= 8 else 1.0
        return tuple(r * scale for r in self.rates)

    def scaled(self, **overrides) -> "ExperimentPreset":
        """Copy with some fields replaced (CLI ``--samples`` etc.)."""
        return replace(self, **overrides)


PRESETS: Dict[str, ExperimentPreset] = {
    "paper": ExperimentPreset(
        name="paper",
        n_switches=128,
        ports=(4, 8),
        samples=10,
        packet_length=128,
        warmup_clocks=20_000,
        measure_clocks=40_000,
        rates=(0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.20, 0.25),
        rate_scale_8port=2.0,
        seed=20040815,
    ),
    "paperlite": ExperimentPreset(
        name="paperlite",
        n_switches=128,
        ports=(4, 8),
        samples=3,
        packet_length=64,
        warmup_clocks=8_000,
        measure_clocks=16_000,
        rates=(0.01, 0.02, 0.035, 0.05, 0.065, 0.08, 0.10, 0.13),
        rate_scale_8port=3.0,
        seed=20040815,
    ),
    "midscale": ExperimentPreset(
        name="midscale",
        n_switches=64,
        ports=(4, 8),
        samples=3,
        packet_length=32,
        warmup_clocks=4_000,
        measure_clocks=10_000,
        rates=(0.02, 0.05, 0.09, 0.13, 0.17, 0.22),
        rate_scale_8port=2.0,
        seed=20040815,
    ),
    "quick": ExperimentPreset(
        name="quick",
        n_switches=32,
        ports=(4, 8),
        samples=2,
        packet_length=16,
        warmup_clocks=1_500,
        measure_clocks=3_500,
        rates=(0.03, 0.08, 0.14, 0.22),
        rate_scale_8port=1.8,
        seed=20040815,
    ),
    "tiny": ExperimentPreset(
        name="tiny",
        n_switches=16,
        ports=(4,),
        samples=1,
        packet_length=8,
        warmup_clocks=400,
        measure_clocks=1_200,
        rates=(0.05, 0.20),
        rate_scale_8port=1.8,
        seed=20040815,
    ),
}


def get_preset(name: str) -> ExperimentPreset:
    """Look up a preset by name with a helpful error."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(PRESETS)}"
        ) from None
