"""Experiment harness: one entry point per paper table and figure.

* :mod:`repro.experiments.configs` — scale presets (``paper``,
  ``midscale``, ``quick``, ``tiny``) sharing one code path;
* :mod:`repro.experiments.harness` — topology/tree/routing plumbing
  shared by all experiments (same coordinated tree per sample and
  method across algorithms, exactly as the paper compares);
* :mod:`repro.experiments.figure8` — latency vs accepted traffic
  sweeps (Figure 8a/8b);
* :mod:`repro.experiments.tables` — the four saturation-regime tables
  (Tables 1-4), simulated and in fast static-analysis form;
* :mod:`repro.experiments.report` — paper-layout rendering;
* :mod:`repro.experiments.ledger` /
  :mod:`repro.experiments.parallel` — durable, crash-tolerant,
  resumable execution of the independent simulation units;
* :mod:`repro.experiments.distributed` — coordinator-less multi-host
  execution over a shared campaign directory (lease-based work claims,
  per-worker ledger shards, deterministic bit-identical merge);
* ``python -m repro.experiments`` — the CLI.
"""

from repro.experiments.configs import PRESETS, ExperimentPreset, get_preset
from repro.experiments.harness import (
    ALGORITHMS,
    TREE_METHODS,
    build_routings,
    make_topology,
)
from repro.experiments.figure8 import Figure8Result, run_figure8
from repro.experiments.live_resilience import (
    LIVE_FAULT_ALGORITHMS,
    LiveFaultResult,
    render_live_fault_table,
    run_live_fault_campaign,
)
from repro.experiments.tables import TablesResult, run_static_tables, run_tables
from repro.experiments.distributed import (
    WorkerConfig,
    canonical_digest,
    default_worker_id,
    merge_stage,
    run_distributed,
)
from repro.experiments.ledger import (
    LedgerLockedError,
    ResultLedger,
    read_records,
    unit_digest,
)
from repro.experiments.parallel import (
    UnitFailure,
    WorkUnit,
    default_max_workers,
    figure8_units,
    run_parallel,
    tables_units,
)
from repro.experiments.statistics import (
    PairedComparison,
    Summary,
    paired_compare,
    paired_table_comparison,
    summarize,
    summarize_table_result,
)

__all__ = [
    "PRESETS",
    "ExperimentPreset",
    "get_preset",
    "ALGORITHMS",
    "TREE_METHODS",
    "make_topology",
    "build_routings",
    "Figure8Result",
    "run_figure8",
    "LIVE_FAULT_ALGORITHMS",
    "LiveFaultResult",
    "run_live_fault_campaign",
    "render_live_fault_table",
    "TablesResult",
    "run_tables",
    "run_static_tables",
    "WorkUnit",
    "UnitFailure",
    "figure8_units",
    "tables_units",
    "run_parallel",
    "default_max_workers",
    "WorkerConfig",
    "run_distributed",
    "merge_stage",
    "canonical_digest",
    "default_worker_id",
    "ResultLedger",
    "LedgerLockedError",
    "read_records",
    "unit_digest",
    "Summary",
    "PairedComparison",
    "summarize",
    "paired_compare",
    "summarize_table_result",
    "paired_table_comparison",
]
