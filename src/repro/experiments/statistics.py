"""Sample statistics for experiment aggregation.

The paper reports plain means over 10 random networks.  With fewer
samples (the ``paperlite``/``midscale`` presets) the uncertainty
matters, so the harness can attach confidence intervals and perform
*paired* comparisons — pairing by test sample, exactly the structure
the paper's "same coordinated tree, same sample" methodology induces —
which is far more sensitive than comparing two independent means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

# two-sided Student-t 97.5% quantiles for small dof (index = dof);
# dof > 30 uses the normal 1.96.  Hard-coded: scipy is available in this
# environment but a table keeps the core dependency-light.
_T975 = [
    float("nan"), 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
    2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048,
    2.045, 2.042,
]


def t_quantile_975(dof: int) -> float:
    """Two-sided 95% Student-t quantile for *dof* degrees of freedom."""
    if dof < 1:
        raise ValueError("need at least 1 degree of freedom")
    return _T975[dof] if dof < len(_T975) else 1.96


@dataclass(frozen=True)
class Summary:
    """Mean with a 95% confidence interval."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.6g} ± {self.half_width:.2g} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Mean and 95% CI of *values* (t-based; half-width 0 for n == 1)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if arr.size == 1:
        return Summary(float(arr[0]), 0.0, 1)
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return Summary(
        float(arr.mean()), t_quantile_975(arr.size - 1) * sem, int(arr.size)
    )


@dataclass(frozen=True)
class PairedComparison:
    """Result of a paired comparison A vs B (positive mean: A larger)."""

    mean_difference: float
    half_width: float
    n: int
    wins_a: int
    wins_b: int

    @property
    def significant(self) -> bool:
        """True when the 95% CI of the difference excludes zero."""
        return abs(self.mean_difference) > self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "significant" if self.significant else "not significant"
        return (
            f"Δ = {self.mean_difference:.6g} ± {self.half_width:.2g} "
            f"({self.wins_a}:{self.wins_b} wins, n={self.n}, {verdict})"
        )


def paired_compare(
    a: Sequence[float], b: Sequence[float]
) -> PairedComparison:
    """Paired-t comparison of two per-sample metric vectors.

    *a* and *b* must be aligned by test sample (the harness guarantees
    this).  Returns the mean difference ``a - b`` with its 95% CI and
    the per-sample win counts.
    """
    va = np.asarray(list(a), dtype=float)
    vb = np.asarray(list(b), dtype=float)
    if va.shape != vb.shape or va.size == 0:
        raise ValueError("paired samples must be non-empty and aligned")
    diff = va - vb
    s = summarize(diff)
    return PairedComparison(
        mean_difference=s.mean,
        half_width=s.half_width,
        n=s.n,
        wins_a=int((diff > 0).sum()),
        wins_b=int((diff < 0).sum()),
    )


def summarize_table_result(
    raw: Sequence[Tuple[str, str, str, int, int, float]]
) -> Dict[Tuple[str, str, str, int], Summary]:
    """Per-cell CI summaries from a ``TablesResult.raw`` record list."""
    groups: Dict[Tuple[str, str, str, int], List[float]] = {}
    for metric, alg, method, ports, _sample, value in raw:
        groups.setdefault((metric, alg, method, ports), []).append(value)
    return {key: summarize(vals) for key, vals in groups.items()}


def paired_table_comparison(
    raw: Sequence[Tuple[str, str, str, int, int, float]],
    metric: str,
    alg_a: str,
    alg_b: str,
) -> Dict[Tuple[str, int], PairedComparison]:
    """Paired comparisons of two algorithms per (method, ports) cell."""
    values: Dict[Tuple[str, str, int, int], float] = {}
    for m, alg, method, ports, sample, value in raw:
        if m == metric and alg in (alg_a, alg_b):
            values[(alg, method, ports, sample)] = value
    out: Dict[Tuple[str, int], PairedComparison] = {}
    cells = {(method, ports) for (_a, method, ports, _s) in values}
    for method, ports in sorted(cells):
        samples = sorted(
            s for (alg, mth, pts, s) in values
            if alg == alg_a and mth == method and pts == ports
        )
        a = [values[(alg_a, method, ports, s)] for s in samples]
        b = [values[(alg_b, method, ports, s)] for s in samples]
        if a and len(a) == len(b):
            out[(method, ports)] = paired_compare(a, b)
    return out
