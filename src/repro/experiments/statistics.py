"""Sample statistics for experiment aggregation.

The paper reports plain means over 10 random networks.  With fewer
samples (the ``paperlite``/``midscale`` presets) the uncertainty
matters, so the harness can attach confidence intervals and perform
*paired* comparisons — pairing by test sample, exactly the structure
the paper's "same coordinated tree, same sample" methodology induces —
which is far more sensitive than comparing two independent means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

# two-sided Student-t 97.5% quantiles for small dof (index = dof);
# larger dof uses the Cornish-Fisher tail expansion below, which agrees
# with the table to 3 decimals at the seam (dof=30: 2.0423 vs 2.042).
# Hard-coded: scipy is available in this environment but a table keeps
# the core dependency-light.
_T975 = [
    float("nan"), 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
    2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
    2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048,
    2.045, 2.042,
]

# Acklam's rational approximation of the standard normal quantile
# (inverse CDF), |relative error| < 1.15e-9 over the open unit interval.
_ACKLAM_A = (
    -3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
    1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00,
)
_ACKLAM_B = (
    -5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
    6.680131188771972e+01, -1.328068155288572e+01,
)
_ACKLAM_C = (
    -7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
    -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00,
)
_ACKLAM_D = (
    7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
    3.754408661907416e+00,
)


def normal_quantile(p: float) -> float:
    """Standard normal quantile (inverse CDF) at *p* in ``(0, 1)``.

    Acklam's closed-form rational approximation — accurate to ~1e-9,
    good enough for every confidence bound in this repo without
    dragging in scipy.
    """
    if not 0.0 < p < 1.0:
        raise ValueError("quantile probability must be in (0, 1)")
    a, b, c, d = _ACKLAM_A, _ACKLAM_B, _ACKLAM_C, _ACKLAM_D
    p_low, p_high = 0.02425, 1 - 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p > p_high:
        q = math.sqrt(-2 * math.log(1 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                 + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
            + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r
                            + b[4]) * r + 1)


def _cornish_fisher_t(z: float, dof: float) -> float:
    """Student-t quantile from the normal quantile *z* via the
    Cornish-Fisher tail expansion in ``1/dof`` (Fisher 1925).

    Monotone decreasing in *dof* for ``z >= 1`` (every correction term
    is positive and scales by a negative power of *dof*) and converges
    to *z* — exactly the shape a CI half-width must have.  Accurate to
    <1% for ``dof >= 4`` at the quantiles used here; the small-dof
    97.5% cases stay on the exact table instead.
    """
    z2 = z * z
    g1 = z * (z2 + 1.0) / 4.0
    g2 = z * ((5.0 * z2 + 16.0) * z2 + 3.0) / 96.0
    g3 = z * (((3.0 * z2 + 19.0) * z2 + 17.0) * z2 - 15.0) / 384.0
    return z + g1 / dof + g2 / dof**2 + g3 / dof**3


def t_quantile_975(dof: float) -> float:
    """Two-sided 95% Student-t quantile for *dof* degrees of freedom.

    Exact table for integral ``dof <= 30``, Cornish-Fisher expansion
    beyond — monotone decreasing everywhere (the old implementation
    jumped discontinuously from 2.042 at dof=30 to a flat 1.96 at
    dof=31, silently narrowing every CI past the table edge).
    Fractional *dof* (Welch-Satterthwaite) is accepted.
    """
    if dof < 1:
        raise ValueError("need at least 1 degree of freedom")
    idof = int(dof)
    if idof == dof and idof < len(_T975):
        return _T975[idof]
    return _cornish_fisher_t(1.959963984540054, dof)


def t_quantile(dof: float, p: float) -> float:
    """Upper Student-t quantile at probability *p* for *dof* dof.

    Cornish-Fisher everywhere (no table): intended for the
    non-standard confidence levels the equivalence gate's
    Bonferroni-corrected tests need.  Accuracy degrades below
    ``dof < 4`` in the far tail — the gate enforces enough paired
    seeds to stay inside the good region.
    """
    if dof < 1:
        raise ValueError("need at least 1 degree of freedom")
    z = normal_quantile(p)
    if abs(z) < 1.0:
        # the expansion's monotonicity argument needs |z| >= 1; central
        # quantiles are never used for CI bounds, fall back to normal
        return z
    return math.copysign(_cornish_fisher_t(abs(z), dof), z)


@dataclass(frozen=True)
class Summary:
    """Mean with a 95% confidence interval."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.6g} ± {self.half_width:.2g} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Mean and 95% CI of *values* (t-based; half-width 0 for n == 1)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if arr.size == 1:
        return Summary(float(arr[0]), 0.0, 1)
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    return Summary(
        float(arr.mean()), t_quantile_975(arr.size - 1) * sem, int(arr.size)
    )


@dataclass(frozen=True)
class PairedComparison:
    """Result of a paired comparison A vs B (positive mean: A larger)."""

    mean_difference: float
    half_width: float
    n: int
    wins_a: int
    wins_b: int

    @property
    def significant(self) -> bool:
        """True when the 95% CI of the difference excludes zero."""
        return abs(self.mean_difference) > self.half_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "significant" if self.significant else "not significant"
        return (
            f"Δ = {self.mean_difference:.6g} ± {self.half_width:.2g} "
            f"({self.wins_a}:{self.wins_b} wins, n={self.n}, {verdict})"
        )


def paired_compare(
    a: Sequence[float], b: Sequence[float]
) -> PairedComparison:
    """Paired-t comparison of two per-sample metric vectors.

    *a* and *b* must be aligned by test sample (the harness guarantees
    this).  Returns the mean difference ``a - b`` with its 95% CI and
    the per-sample win counts.
    """
    va = np.asarray(list(a), dtype=float)
    vb = np.asarray(list(b), dtype=float)
    if va.shape != vb.shape or va.size == 0:
        raise ValueError("paired samples must be non-empty and aligned")
    diff = va - vb
    s = summarize(diff)
    return PairedComparison(
        mean_difference=s.mean,
        half_width=s.half_width,
        n=s.n,
        wins_a=int((diff > 0).sum()),
        wins_b=int((diff < 0).sum()),
    )


@dataclass(frozen=True)
class WelchComparison:
    """Unpaired Welch comparison A vs B (positive mean: A larger)."""

    mean_difference: float
    half_width: float
    dof: float
    n_a: int
    n_b: int

    @property
    def significant(self) -> bool:
        """True when the CI of the difference excludes zero."""
        return abs(self.mean_difference) > self.half_width


def welch_compare(
    a: Sequence[float], b: Sequence[float], alpha: float = 0.05
) -> WelchComparison:
    """Welch's unequal-variance t comparison of two independent samples.

    Returns the mean difference ``a - b`` with a two-sided
    ``(1 - alpha)`` CI using the Welch-Satterthwaite effective degrees
    of freedom.  Zero-variance samples are legal: the CI half-width is
    0 and significance reduces to exact inequality of the means (the
    equivalence gate hits this on saturated delivered-fraction
    metrics, where every run reports exactly 1.0).
    """
    va = np.asarray(list(a), dtype=float)
    vb = np.asarray(list(b), dtype=float)
    if va.size < 2 or vb.size < 2:
        raise ValueError("welch comparison needs >= 2 samples per side")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    sa = float(va.var(ddof=1)) / va.size
    sb = float(vb.var(ddof=1)) / vb.size
    se2 = sa + sb
    diff = float(va.mean() - vb.mean())
    if se2 <= 0.0:
        return WelchComparison(diff, 0.0, float("inf"),
                               int(va.size), int(vb.size))
    dof = se2 * se2 / (
        sa * sa / (va.size - 1) + sb * sb / (vb.size - 1)
    )
    dof = max(dof, 1.0)
    half = t_quantile(dof, 1.0 - alpha / 2.0) * math.sqrt(se2)
    return WelchComparison(diff, half, dof, int(va.size), int(vb.size))


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic ``sup |F_a - F_b|``."""
    va = np.sort(np.asarray(list(a), dtype=float))
    vb = np.sort(np.asarray(list(b), dtype=float))
    if va.size == 0 or vb.size == 0:
        raise ValueError("KS distance needs non-empty samples")
    grid = np.concatenate((va, vb))
    cdf_a = np.searchsorted(va, grid, side="right") / va.size
    cdf_b = np.searchsorted(vb, grid, side="right") / vb.size
    return float(np.abs(cdf_a - cdf_b).max())


def ks_threshold(n: int, m: int, alpha: float = 0.01) -> float:
    """Asymptotic two-sample KS rejection threshold at level *alpha*.

    ``c(alpha) * sqrt((n + m) / (n * m))`` with
    ``c(alpha) = sqrt(-ln(alpha / 2) / 2)`` — the classical
    large-sample critical value (c(0.05) = 1.358, c(0.01) = 1.628).
    Distances *above* this reject "same distribution" at level *alpha*.
    """
    if n <= 0 or m <= 0:
        raise ValueError("KS threshold needs positive sample sizes")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    c = math.sqrt(-math.log(alpha / 2.0) / 2.0)
    return c * math.sqrt((n + m) / (n * m))


def summarize_table_result(
    raw: Sequence[Tuple[str, str, str, int, int, float]]
) -> Dict[Tuple[str, str, str, int], Summary]:
    """Per-cell CI summaries from a ``TablesResult.raw`` record list."""
    groups: Dict[Tuple[str, str, str, int], List[float]] = {}
    for metric, alg, method, ports, _sample, value in raw:
        groups.setdefault((metric, alg, method, ports), []).append(value)
    return {key: summarize(vals) for key, vals in groups.items()}


def paired_table_comparison(
    raw: Sequence[Tuple[str, str, str, int, int, float]],
    metric: str,
    alg_a: str,
    alg_b: str,
) -> Dict[Tuple[str, int], PairedComparison]:
    """Paired comparisons of two algorithms per (method, ports) cell."""
    values: Dict[Tuple[str, str, int, int], float] = {}
    for m, alg, method, ports, sample, value in raw:
        if m == metric and alg in (alg_a, alg_b):
            values[(alg, method, ports, sample)] = value
    out: Dict[Tuple[str, int], PairedComparison] = {}
    cells = {(method, ports) for (_a, method, ports, _s) in values}
    for method, ports in sorted(cells):
        samples = sorted(
            s for (alg, mth, pts, s) in values
            if alg == alg_a and mth == method and pts == ports
        )
        a = [values[(alg_a, method, ports, s)] for s in samples]
        b = [values[(alg_b, method, ports, s)] for s in samples]
        if a and len(a) == len(b):
            out[(method, ports)] = paired_compare(a, b)
    return out
