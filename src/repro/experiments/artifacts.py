"""Content-addressed construction-artifact cache.

The paper's methodology (Section 5) evaluates every algorithm on the
*same* coordinated tree and the *same* test samples, which means a
campaign re-derives identical shared state — topology generation, tree
construction, Phase 1-3 routing construction, Theorem-1 verification —
inside every work unit: a Figure-8 sweep rebuilds the identical
(topology, tree, routing) tuple once per offered load.  With the
simulation hot loop ≥2x faster since the engine fast path landed,
construction is the dominant fixed cost of short and mid-length runs.

This module amortizes it across the whole campaign, treating routing
construction the way the up*/down* literature treats route computation:
a precomputed, distributable artifact.

Two layers:

* **On-disk store** — every artifact is serialized (via the versioned
  codecs in :mod:`repro.topology.serialization` and
  :mod:`repro.routing.serialization`) into a file named by the SHA-256
  digest of its *full input closure*: generator/tree/builder seeds
  (derived from the preset seed), port count, sample, tree method,
  algorithm name and a builder version tag.  Anything that could change
  the artifact changes the key, so a stale preset or code bump can
  never alias a cached entry.  Entries carry a header line with a
  SHA-256 checksum of the payload bytes; publication is
  write-to-temp-then-``os.replace`` (atomic on POSIX) guarded by a
  non-blocking ``fcntl.flock`` single-writer lock — the same discipline
  as :class:`~repro.experiments.ledger.ResultLedger`.  A torn or
  corrupted entry (e.g. left by a SIGKILLed worker) fails its checksum,
  is counted and treated as a miss, and is overwritten by the next
  successful publication; it can never poison results.

* **In-process LRU** — pool workers keep a bounded map from entry
  digest to the *decoded* object, so the many work units that share one
  routing (every offered load of a Figure-8 sweep; all four table
  metrics) pay construction or deserialization once per process, not
  once per unit.

Integrity discipline: cache entries are the only place this codebase
deserializes routing state with the builder's Theorem-1 re-verification
disabled — the payload checksum plus the input-closure key guarantee
the bytes are exactly what a verified builder produced.  The invariant
linter's STA005 rule forbids checksum-free ``verify=False`` /
``validate=False`` deserialization anywhere else.

Results are bit-identical with the cache on or off: a decoded routing
round-trips to the same tables, turn model and distances the builder
produced (asserted by the equivalence suite via
:meth:`~repro.simulator.stats.SimulationStats.canonical_digest`).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

try:  # advisory single-writer locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

from repro.core.coordinated_tree import CoordinatedTree
from repro.routing.base import RoutingFunction
from repro.routing.serialization import (
    routing_from_json,
    routing_to_json,
    tree_from_json,
    tree_to_json,
)
from repro.topology.graph import Topology
from repro.topology.serialization import topology_from_json, topology_to_json

#: on-disk entry layout version; mismatched entries are treated as misses
ARTIFACT_FORMAT = "repro-artifact-v1"

#: version tag of the construction pipeline baked into every key.  Bump
#: whenever a builder's *output* changes (new phase, different
#: tie-breaking, ...) so stale entries miss instead of aliasing.
BUILDER_VERSION = "construction-v1"

#: default bound of the in-process decoded-object LRU (a 128-switch
#: 8-port routing is tens of MB decoded; one Figure-8 sample's working
#: set is ~10 objects)
DEFAULT_MEMORY_ENTRIES = 16

_COUNTER_FIELDS = (
    "hits",
    "memory_hits",
    "shared_hits",
    "misses",
    "corrupt",
    "publish_skipped",
    "bytes_written",
)


def artifact_digest(kind: str, key: Dict[str, object]) -> str:
    """Canonical SHA-256 content address of one artifact's input closure."""
    payload = {"format": ARTIFACT_FORMAT, "kind": kind, **key}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _payload_checksum(payload: str) -> str:
    """SHA-256 over the raw payload bytes (cheap to re-verify on read)."""
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _validated_entry_raw(
    path: Path, kind: str
) -> Tuple[Optional[str], Optional[str], bool]:
    """Validate one entry file: ``(raw, payload, suspect)``.

    ``raw`` is the exact byte-for-byte text that passed validation
    (what a shared-tier import republishes), ``payload`` the body after
    the header line; both are ``None`` when the entry is missing or
    fails any check.  ``suspect`` distinguishes "file exists but is
    unreadable/torn/mismatched" (counted ``corrupt`` by callers) from a
    plain miss.
    """
    try:
        raw = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None, None, False
    except OSError:
        return None, None, True
    nl = raw.find("\n")
    if nl < 0:
        return None, None, True
    try:
        header = json.loads(raw[:nl])
    except json.JSONDecodeError:
        return None, None, True
    payload = raw[nl + 1 :]
    if (
        not isinstance(header, dict)
        or header.get("format") != ARTIFACT_FORMAT
        or header.get("kind") != kind
        or header.get("payload_sha256") != _payload_checksum(payload)
    ):
        return None, None, True
    return raw, payload, False


def topology_digest(topology: Topology) -> str:
    """Content digest of a topology (keys trees/routings built on it)."""
    return hashlib.sha256(
        topology_to_json(topology).encode("utf-8")
    ).hexdigest()


def tree_key_digest(topology: Topology, method: str, seed: int) -> str:
    """Digest of a tree's input closure — chains routing keys to trees."""
    return artifact_digest(
        "tree",
        {
            "topology": topology_digest(topology),
            "method": method,
            "seed": seed,
            "builder": BUILDER_VERSION,
        },
    )


@dataclass
class CacheCounters:
    """Hit/miss tallies of one :class:`ArtifactCache` instance."""

    hits: int = 0  # disk hits (checksum-verified, decoded)
    memory_hits: int = 0  # served from the in-process LRU
    shared_hits: int = 0  # imported from the multi-host shared tier
    misses: int = 0  # built from scratch
    corrupt: int = 0  # entries dropped for a failed checksum/decode
    publish_skipped: int = 0  # lock was busy; built but not published
    bytes_written: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {f: getattr(self, f) for f in _COUNTER_FIELDS}

    def delta_since(self, other: Dict[str, int]) -> Dict[str, int]:
        return {f: getattr(self, f) - other.get(f, 0) for f in _COUNTER_FIELDS}

    @property
    def total_hits(self) -> int:
        return self.hits + self.memory_hits


class ArtifactCache:
    """Process-safe, content-addressed construction cache.

    One instance per process per store directory.  All reads verify the
    per-entry payload checksum; all writes publish atomically under a
    non-blocking single-writer lock.  ``max_memory_entries`` bounds the
    in-process decoded-object LRU (0 disables it).

    *shared_root* adds an optional multi-host **read-through tier** (a
    store directory on a shared filesystem): a local miss consults the
    shared store, verifies the entry's payload checksum *before*
    import, copies it into the local store and serves it (counted as
    ``shared_hits``); local builds are additionally published to the
    shared tier so peers benefit.  A corrupted shared entry fails its
    checksum on import and is ignored — a bad peer can slow this host
    down (it rebuilds), but can never poison its results.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_memory_entries: int = DEFAULT_MEMORY_ENTRIES,
        shared_root: Optional[Union[str, Path]] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.shared_root = Path(shared_root) if shared_root else None
        if self.shared_root is not None:
            self.shared_root.mkdir(parents=True, exist_ok=True)
        self.counters = CacheCounters()
        self._flushed: Dict[str, int] = {}
        self._memory: "OrderedDict[str, object]" = OrderedDict()
        self._max_memory = max(0, max_memory_entries)

    # -- paths ---------------------------------------------------------
    def entry_path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    @property
    def _counters_path(self) -> Path:
        return self.root / "counters.jsonl"

    # -- in-process LRU ------------------------------------------------
    def _memory_get(self, digest: str) -> Optional[object]:
        obj = self._memory.get(digest)
        if obj is not None:
            self._memory.move_to_end(digest)
        return obj

    def _memory_put(self, digest: str, obj: object) -> None:
        if self._max_memory <= 0:
            return
        self._memory[digest] = obj
        self._memory.move_to_end(digest)
        while len(self._memory) > self._max_memory:
            self._memory.popitem(last=False)

    # -- on-disk store -------------------------------------------------
    def _read(self, digest: str, kind: str) -> Optional[str]:
        """Checksum-verified payload of one local entry, or ``None``.

        Anything suspect — unreadable file, malformed header, format or
        kind mismatch, checksum failure (a torn write SIGKILL'd
        mid-publication, bit rot) — counts as ``corrupt`` and is treated
        as a miss; the next successful publication atomically replaces
        the bad file.
        """
        _raw, payload, suspect = _validated_entry_raw(
            self.entry_path(digest), kind
        )
        if suspect:
            self.counters.corrupt += 1
        return payload

    def _import_shared(self, digest: str, kind: str) -> Optional[str]:
        """Read-through: verified import of one shared-tier entry.

        The entry's bytes are checksum-verified *before* anything is
        copied into the local store, and the exact verified bytes are
        what gets published (atomically, under the local writer lock) —
        so a corrupted or half-written peer entry can never enter the
        local tier, and a reader never observes a torn import.
        """
        if self.shared_root is None:
            return None
        raw, payload, suspect = _validated_entry_raw(
            self.shared_root / f"{digest}.json", kind
        )
        if suspect:
            self.counters.corrupt += 1
        if payload is None or raw is None:
            return None
        # re-publish the verified bytes locally; a busy lock just skips
        # (the payload itself is already safe to serve either way)
        self._publish_to(self.root, digest, raw)
        return payload

    def _publish_to(self, root: Path, digest: str, data: str) -> bool:
        """Atomically publish one entry file into *root*.

        Write-to-temp + ``os.replace``: readers only ever see a complete
        entry under the final name.  The per-store flock keeps
        concurrent pools from duplicating serialization work; a busy
        lock just skips the publish (the artifact was built anyway, and
        whoever holds the lock is publishing its own copy of identical
        content).
        """
        lock_fh = open(root / "writer.lock", "a")
        try:
            if fcntl is not None:
                try:
                    fcntl.flock(lock_fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    self.counters.publish_skipped += 1
                    return False
            tmp = root / f"tmp-{digest}-{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, root / f"{digest}.json")
            self.counters.bytes_written += len(data)
            return True
        finally:
            lock_fh.close()  # closing drops the flock

    def _publish(
        self, digest: str, kind: str, key: Dict[str, object], payload: str
    ) -> bool:
        """Publish one entry locally and, when configured, to the
        shared tier (each atomically, each skipping on a busy lock)."""
        header = json.dumps(
            {
                "format": ARTIFACT_FORMAT,
                "kind": kind,
                "key": key,
                "builder": BUILDER_VERSION,
                "payload_sha256": _payload_checksum(payload),
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        data = header + "\n" + payload
        published = self._publish_to(self.root, digest, data)
        if self.shared_root is not None:
            self._publish_to(self.shared_root, digest, data)
        return published

    # -- generic get-or-build ------------------------------------------
    def get_or_build(
        self,
        kind: str,
        key: Dict[str, object],
        build: Callable[[], object],
        encode: Callable[[object], str],
        decode: Callable[[str], object],
    ):
        """The cache protocol: memory LRU, local disk, shared tier,
        then build+publish."""
        digest = artifact_digest(kind, key)
        obj = self._memory_get(digest)
        if obj is not None:
            self.counters.memory_hits += 1
            return obj
        payload = self._read(digest, kind)
        shared = payload is None
        if shared:
            payload = self._import_shared(digest, kind)
        if payload is not None:
            try:
                obj = decode(payload)
            except (ValueError, KeyError, TypeError):
                # decodable-but-wrong content (e.g. hand-edited entry
                # with a refreshed checksum): drop and rebuild
                self.counters.corrupt += 1
            else:
                if shared:
                    self.counters.shared_hits += 1
                else:
                    self.counters.hits += 1
                self._memory_put(digest, obj)
                return obj
        obj = build()
        if not self._publish(digest, kind, key, encode(obj)):
            pass  # built locally; another writer owns publication
        self.counters.misses += 1
        self._memory_put(digest, obj)
        return obj

    # -- typed wrappers ------------------------------------------------
    def topology(
        self, n: int, ports: int, seed: int, build: Callable[[], Topology]
    ) -> Topology:
        """The generated topology for ``(n, ports, seed)``."""
        return self.get_or_build(
            "topology",
            {"n": n, "ports": ports, "seed": seed},
            build,
            lambda t: topology_to_json(t),
            lambda s: topology_from_json(s),
        )

    def tree(
        self,
        topology: Topology,
        method: str,
        seed: int,
        build: Callable[[], CoordinatedTree],
    ) -> CoordinatedTree:
        """The coordinated tree for ``(topology, method, seed)``."""
        return self.get_or_build(
            "tree",
            {
                "topology": topology_digest(topology),
                "method": method,
                "seed": seed,
                "builder": BUILDER_VERSION,
            },
            build,
            lambda t: tree_to_json(t),
            # checksum + input-closure key substitute for re-validation
            lambda s: tree_from_json(s, validate=False),
        )

    def routing(
        self,
        topology: Topology,
        tree_key: str,
        algorithm: str,
        seed: int,
        build: Callable[[], RoutingFunction],
    ) -> RoutingFunction:
        """The verified routing for ``(topology, tree, algorithm, seed)``.

        *tree_key* is the digest of the tree's input closure (or ``""``
        for builders that ignore the tree), chaining the routing's
        content address through the tree's.
        """
        return self.get_or_build(
            "routing",
            {
                "topology": topology_digest(topology),
                "tree": tree_key,
                "algorithm": algorithm,
                "seed": seed,
                "builder": BUILDER_VERSION,
            },
            build,
            lambda r: routing_to_json(r),
            # checksum + input-closure key substitute for Theorem-1
            # re-verification of bytes a verified builder produced
            lambda s: routing_from_json(s, verify=False),
        )

    def certificate(
        self, routing_key: Dict[str, object], build: Callable[[], object]
    ):
        """A digest-stamped certificate bundle keyed like its routing."""
        from repro.statics.certificates import CertificateBundle

        return self.get_or_build(
            "certificate",
            dict(routing_key),
            build,
            lambda b: b.to_json(),
            lambda s: CertificateBundle.from_json(s),
        )

    # -- counters ------------------------------------------------------
    def flush_counters(self) -> None:
        """Append this instance's counter delta to the shared tally.

        Safe across concurrent (even multi-host) writers: one JSON line
        per flush, appended under a blocking flock on the counters file
        — and, first, the same torn-tail truncation discipline as the
        ledger: if a previous writer was SIGKILLed mid-append and left
        a line without its newline, the torn tail is truncated away
        *before* this append, so the new record starts on its own line
        instead of fusing with (and destroying) the torn one.  No-op
        when nothing changed.
        """
        delta = self.counters.delta_since(self._flushed)
        if not any(delta.values()):
            return
        with open(self._counters_path, "ab") as fh:
            if fcntl is not None:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            size = os.fstat(fh.fileno()).st_size
            if size > 0:
                with open(self._counters_path, "rb") as read_fh:
                    raw = read_fh.read(size)
                if not raw.endswith(b"\n"):
                    good_end = raw.rfind(b"\n") + 1  # 0 when no newline
                    os.ftruncate(fh.fileno(), good_end)
            fh.write(
                (json.dumps(delta, sort_keys=True) + "\n").encode("utf-8")
            )
            fh.flush()
        self._flushed = self.counters.as_dict()


# ---------------------------------------------------------------------------
# store-level inspection (CLI `cache` subcommand, campaign manifests)
# ---------------------------------------------------------------------------


def _entry_files(root: Union[str, Path]) -> List[Path]:
    root = Path(root)
    if not root.is_dir():
        return []
    return sorted(
        p
        for p in root.iterdir()
        if p.name.endswith(".json") and not p.name.startswith("tmp-")
    )


def read_counters(root: Union[str, Path]) -> Dict[str, int]:
    """Aggregate every flushed counter delta of a store (all processes)."""
    totals = {f: 0 for f in _COUNTER_FIELDS}
    path = Path(root) / "counters.jsonl"
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except (FileNotFoundError, OSError):
        return totals
    for line in lines:
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail of a killed flush
        if isinstance(rec, dict):
            for f in _COUNTER_FIELDS:
                v = rec.get(f, 0)
                if isinstance(v, int):
                    totals[f] += v
    return totals


def store_stats(root: Union[str, Path]) -> Dict[str, object]:
    """Entry/byte counts plus aggregated hit/miss counters of a store."""
    files = _entry_files(root)
    kinds: Dict[str, int] = {}
    total = 0
    for p in files:
        total += p.stat().st_size
        with open(p, "r", encoding="utf-8") as fh:
            head = fh.readline()
        try:
            kind = json.loads(head).get("kind", "?")
        except (json.JSONDecodeError, AttributeError):
            kind = "?"
        kinds[kind] = kinds.get(kind, 0) + 1
    return {
        "entries": len(files),
        "bytes": total,
        "by_kind": dict(sorted(kinds.items())),
        "counters": read_counters(root),
    }


def verify_store(root: Union[str, Path]) -> Tuple[int, List[str]]:
    """Re-checksum every entry; returns ``(checked, corrupt_names)``.

    Also audits ``counters.jsonl``: a torn tail (a flush SIGKILLed
    mid-append) or garbage line is *reported* as a corrupt name — never
    a crash — so an operator inspecting a store that survived a worker
    death sees exactly what the crash cost.
    """
    corrupt: List[str] = []
    files = _entry_files(root)
    for p in files:
        try:
            raw = p.read_text(encoding="utf-8")
        except OSError:
            corrupt.append(p.name)
            continue
        nl = raw.find("\n")
        ok = False
        if nl >= 0:
            try:
                header = json.loads(raw[:nl])
                ok = (
                    isinstance(header, dict)
                    and header.get("format") == ARTIFACT_FORMAT
                    and header.get("payload_sha256")
                    == _payload_checksum(raw[nl + 1 :])
                )
            except json.JSONDecodeError:
                ok = False
        if not ok:
            corrupt.append(p.name)
    counters_path = Path(root) / "counters.jsonl"
    try:
        raw_bytes = counters_path.read_bytes()
    except (FileNotFoundError, OSError):
        raw_bytes = b""
    if raw_bytes:
        bad = 0
        if not raw_bytes.endswith(b"\n"):
            bad += 1  # torn tail awaiting the next flush's truncation
        # drop the final fragment: the trailing empty split on a clean
        # file, the already-counted torn fragment otherwise
        for line in raw_bytes.split(b"\n")[:-1]:
            try:
                if not isinstance(json.loads(line.decode("utf-8")), dict):
                    bad += 1
            except (UnicodeDecodeError, json.JSONDecodeError):
                bad += 1
        if bad:
            corrupt.append(f"counters.jsonl ({bad} unreadable line(s))")
    return len(files), corrupt


def clear_store(root: Union[str, Path]) -> int:
    """Delete every entry, temp file and counter record; keep the dir."""
    root = Path(root)
    if not root.is_dir():
        return 0
    removed = 0
    for p in root.iterdir():
        if (
            p.name.endswith(".json")
            or p.name.startswith("tmp-")
            or p.name in ("counters.jsonl", "writer.lock")
        ):
            p.unlink(missing_ok=True)
            removed += 1
    return removed


# ---------------------------------------------------------------------------
# per-process cache (pool workers, serial runners)
# ---------------------------------------------------------------------------

_PROCESS_CACHE: Optional[ArtifactCache] = None


def set_process_cache(
    path: Optional[Union[str, Path]],
    shared: Optional[Union[str, Path]] = None,
) -> None:
    """(Re)bind the process-wide cache.  ``None`` disables it.

    Also the :class:`~concurrent.futures.ProcessPoolExecutor`
    initializer: workers receive the store path once at pool start and
    every :func:`~repro.experiments.parallel.run_unit` in the process
    shares one instance (and therefore one decoded-object LRU).
    *shared* names the optional multi-host read-through tier behind
    the local store.
    """
    global _PROCESS_CACHE
    if path is None:
        _PROCESS_CACHE = None
        return
    shared_root = Path(shared) if shared is not None else None
    if (
        _PROCESS_CACHE is None
        or _PROCESS_CACHE.root != Path(path)
        or _PROCESS_CACHE.shared_root != shared_root
    ):
        _PROCESS_CACHE = ArtifactCache(path, shared_root=shared)


def process_cache() -> Optional[ArtifactCache]:
    """The cache bound to this process, or ``None``."""
    return _PROCESS_CACHE
