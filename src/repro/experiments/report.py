"""Paper-layout rendering of experiment results.

Reproduces the visual structure of the paper's Tables 1-4 — rows are
the coordinated-tree methods (M1/M2/M3), columns are algorithm x port
configuration — and a summary block for Figure 8 (saturation
throughputs and minimal latencies per series).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.figure8 import Figure8Result
from repro.experiments.tables import TABLE_METRICS, TablesResult
from repro.util.tables import format_table


def render_paper_table(
    result: TablesResult,
    metric: str,
    algorithms: Sequence[str],
    ports_list: Sequence[int],
    methods: Sequence[str] = ("M1", "M2", "M3"),
) -> str:
    """One paper table (rows: methods; columns: algorithm x ports)."""
    number, title = TABLE_METRICS[metric]
    headers = [""] + [
        f"{alg} {ports}-port" for alg in algorithms for ports in ports_list
    ]
    rows: List[List[object]] = []
    for method in methods:
        row: List[object] = [method]
        for alg in algorithms:
            for ports in ports_list:
                try:
                    row.append(round(result.value(metric, alg, method, ports), 6))
                except KeyError:
                    row.append("-")
        rows.append(row)
    return format_table(
        headers,
        rows,
        title=(
            f"Table {number} ({result.kind}, preset={result.preset}, "
            f"{result.samples} samples): {title}"
        ),
    )


def render_all_tables(
    result: TablesResult,
    algorithms: Sequence[str],
    ports_list: Sequence[int],
    methods: Sequence[str] = ("M1", "M2", "M3"),
) -> str:
    """Tables 1-4 in paper order, separated by blank lines."""
    metrics = sorted(TABLE_METRICS, key=lambda m: TABLE_METRICS[m][0])
    return "\n\n".join(
        render_paper_table(result, m, algorithms, ports_list, methods)
        for m in metrics
    )


def render_figure8_summary(result: Figure8Result) -> str:
    """Per-series saturation throughput and unloaded latency."""
    headers = ["series", "saturation throughput", "min latency"]
    rows = []
    for name, pts in sorted(result.series.items()):
        if not pts:
            rows.append([name, "-", "-"])
            continue
        rows.append(
            [
                name,
                round(max(x for x, _ in pts), 6),
                round(min(y for _, y in pts), 2),
            ]
        )
    return format_table(
        headers,
        rows,
        title=(
            f"Figure 8 summary ({result.ports}-port, preset={result.preset})"
        ),
    )


def winners(result: TablesResult, ports_list: Sequence[int]) -> Dict[str, str]:
    """Which algorithm wins each metric (paper Remark 2 check).

    For hot spots and traffic load smaller is better; for node and
    leaves utilization larger is better.  Returns
    ``{metric: "down-up" | "l-turn" | "tie"}`` judged on the mean over
    methods and port configurations.
    """
    smaller_better = {"traffic_load", "hot_spot_degree"}
    out: Dict[str, str] = {}
    for metric in TABLE_METRICS:
        means: Dict[str, List[float]] = {}
        for (m, alg, method, ports), value in result.values.items():
            if m == metric and ports in ports_list:
                means.setdefault(alg, []).append(value)
        if len(means) < 2:
            continue
        avg = {alg: sum(v) / len(v) for alg, v in means.items()}
        best = min(avg, key=avg.get) if metric in smaller_better else max(
            avg, key=avg.get
        )
        vals = sorted(avg.values())
        out[metric] = "tie" if abs(vals[0] - vals[-1]) < 1e-12 else best
    return out
