"""Durable campaign execution: the append-only result ledger.

The paper's evaluation is thousands of independent simulations; an
archival run takes hours.  Before this module, one worker crash in the
process pool aborted the whole campaign and discarded every completed
unit.  The ledger makes unit execution itself durable:

* every completed :class:`~repro.experiments.parallel.WorkUnit` is
  appended to a JSONL file as soon as it finishes, flushed and
  ``fsync``'d so a SIGKILL of the whole run loses at most the units
  still in flight;
* records are keyed by :func:`unit_digest` — a canonical SHA-256 over
  the unit *and its preset* (seed included), so a ledger can never
  silently resume a run with different parameters;
* every record carries its own checksum; on re-open the ledger replays
  the file and recovers the longest valid prefix, truncating a torn or
  corrupted tail exactly like a write-ahead log;
* on resume, completed digests are skipped and their recorded results
  are merged back in input order, so a resumed campaign produces
  byte-identical final artefacts.

The ledger is deliberately dumb: it knows nothing about figures or
tables, only ``(digest, key, attempt, result)`` tuples.  The retry and
pool-rebuild machinery lives in :mod:`repro.experiments.parallel`; the
aggregators in :mod:`~repro.experiments.figure8` /
:mod:`~repro.experiments.tables` accept records in any order.

Float fidelity: results round-trip through ``json`` ``repr``-based
float serialisation, which is exact for finite floats; non-finite
sentinels (``nan`` latency of a zero-delivery run) use the Python JSON
dialect's ``NaN`` token and survive the round trip too.  Records are
written with their dict insertion order *preserved* (only the
checksums canonicalise): a result decoded from the ledger iterates in
exactly the order the worker produced, so consumers that serialise
dict iteration order verbatim (the tables CSV) stay byte-identical
between a fresh and a resumed run.

A ledger has exactly one writer.  Opening takes a non-blocking
advisory lock (``fcntl.flock`` where available) held until ``close``;
a second process pointed at the same file fails fast with
:class:`LedgerLockedError` instead of interleaving fsync'd lines and
tearing each other's records.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import socket
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.simulator.config import RELAXED_ENGINES
from repro.util.fsio import atomic_write_text
from repro.util.wallclock import utc_stamp

try:  # advisory single-writer locking; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None  # type: ignore[assignment]

#: bump when the record layout changes; old versions are rejected on load
LEDGER_VERSION = 1

#: characters of the per-record integrity checksum kept in each line
_CHECK_LEN = 16


class LedgerLockedError(RuntimeError):
    """The ledger file is already locked by another live writer.

    The message names the owner (pid/host/start time, from the sidecar
    the lock holder published) and — when the owner is on this host —
    whether that process is still alive, so "ledger is locked" tells
    the operator whom to look at instead of leaving them to guess.
    """


def _owner_sidecar(path: Path) -> Path:
    """The lock-owner sidecar published next to a locked ledger."""
    return path.with_name(path.name + ".owner.json")


def _describe_owner(path: Path) -> str:
    """Operator-facing description of whoever holds a ledger's lock."""
    try:
        info = json.loads(_owner_sidecar(path).read_text(encoding="utf-8"))
        pid, host = int(info["pid"]), str(info["host"])
        started = str(info.get("started", "?"))
    except (OSError, ValueError, KeyError, TypeError):
        return "owner unknown (no readable owner sidecar)"
    desc = f"owned by pid {pid} on {host} since {started}"
    if host == socket.gethostname():
        try:
            os.kill(pid, 0)
            alive = "still alive"
        except ProcessLookupError:
            alive = "no longer running - a stale lock should not " \
                    "happen with flock; check for a copied file"
        except OSError:
            alive = "liveness unknown"
        desc += f" ({alive})"
    return desc


def _canonical(obj: object) -> str:
    """Canonical JSON: sorted keys, no whitespace — digest-stable."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _encode(record: Dict[str, object]) -> str:
    """On-disk form: compact JSON with insertion order *preserved*.

    Only :func:`_canonical` (digests, checksums) sorts keys; the stored
    line keeps the order the record was built in, so nested result
    dicts iterate identically before and after a ledger round trip.
    """
    return json.dumps(record, separators=(",", ":"))


def unit_digest(unit) -> str:
    """Canonical SHA-256 identity of one work unit.

    Hashes the unit's full dataclass payload — algorithm, method,
    ports, sample, rate, seed salt *and every preset field including
    the seed* — so two units collide only when they would simulate the
    exact same thing.  Used as the ledger key for skip-on-resume.

    A *bit-exact* preset ``engine`` override is deliberately
    *excluded*: those engines produce bit-identical results (enforced
    by ``tests/test_engine_equivalence.py``), so a ledger written with
    one may resume cleanly under another, and distributed workers of
    one campaign may mix them.  A *relaxed* engine
    (:data:`repro.simulator.config.RELAXED_ENGINES`, e.g. ``"batch"``)
    stays **in** the digest: its results satisfy only a statistical
    contract, so a batch result must never be mistaken for — or resume
    — a bit-exact unit, and vice versa.
    """
    payload = dataclasses.asdict(unit)
    preset = payload.get("preset")
    if isinstance(preset, dict) and preset.get("engine") not in RELAXED_ENGINES:
        preset.pop("engine", None)
    # replication fields at their defaults are stripped so every ledger
    # written before replicas existed keeps its unit identities: a
    # replica-0 unit of an unreplicated preset is byte-for-byte the
    # classic unit and must resume classic records
    if payload.get("replica") == 0:
        payload.pop("replica", None)
    if isinstance(preset, dict) and preset.get("replicas") == 1:
        preset.pop("replicas", None)
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def _checksum(record: Dict[str, object]) -> str:
    """Integrity checksum of a record (its canonical form sans ``check``)."""
    body = {k: v for k, v in record.items() if k != "check"}
    return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()[:_CHECK_LEN]


def _decode_result(result: Dict[str, object]) -> Dict[str, object]:
    """Undo the JSON round trip: the unit key is a tuple, not a list."""
    out = dict(result)
    if isinstance(out.get("key"), list):
        out["key"] = tuple(out["key"])
    return out


class ResultLedger:
    """Append-only, fsync'd, corruption-tolerant JSONL result store.

    ``resume=True`` (the default) replays an existing file: every line
    must parse, carry the current version and verify its checksum; the
    first bad line and everything after it are treated as a torn tail
    and truncated away (classic WAL recovery — records past a torn
    region are suspect, and re-running a unit is always safe).
    ``resume=False`` truncates the file and starts fresh.

    Attributes after open:

    * ``completed`` — ``{digest: result dict}`` of every ``ok`` record;
    * ``failed`` — ``{digest: error string}`` of units whose retry
      budget was exhausted (these are *re-run* on resume, not skipped);
    * ``attempts`` — ``{digest: attempt}`` of the last record per unit;
    * ``dropped_lines`` — lines lost to tail truncation on recovery.

    The open handle holds an exclusive advisory lock (where the
    platform provides ``fcntl``) until :meth:`close`: two runs pointed
    at the same ledger would interleave appends and tear each other's
    records, so the second opener fails fast with
    :class:`LedgerLockedError` instead.
    """

    def __init__(self, path, resume: bool = True) -> None:
        self.path = Path(path)
        self.completed: Dict[str, Dict[str, object]] = {}
        self.failed: Dict[str, str] = {}
        self.attempts: Dict[str, int] = {}
        self.dropped_lines = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # open + lock before recovery/truncation so two concurrent
        # openers cannot both rewrite the file
        self._fh = open(self.path, "a", encoding="utf-8")
        try:
            self._lock()
            if resume:
                self._recover()
            else:
                os.truncate(self.path, 0)
        except BaseException:
            self._fh.close()
            raise

    def _lock(self) -> None:
        """Exclusive, non-blocking advisory lock on the open handle.

        On success, publishes an owner sidecar (pid/host/start time) so
        a later contender's :class:`LedgerLockedError` can say *who*
        holds the lock and whether that process is still alive.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        try:
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            raise LedgerLockedError(
                f"ledger {self.path} is locked by another process "
                f"({_describe_owner(self.path)}); a ledger has exactly "
                "one writer (is another run resuming from the same "
                "file?)"
            ) from exc
        atomic_write_text(
            _owner_sidecar(self.path),
            json.dumps(
                {
                    "pid": os.getpid(),
                    "host": socket.gethostname(),
                    "started": utc_stamp(),
                },
                sort_keys=True,
            )
            + "\n",
        )

    # -- recovery ------------------------------------------------------
    def _recover(self) -> None:
        """Replay the longest valid prefix; truncate the bad tail."""
        raw = self.path.read_bytes()
        good_end = 0
        pos = 0
        while pos < len(raw):
            nl = raw.find(b"\n", pos)
            if nl < 0:
                break  # final line never got its newline: torn append
            line = raw[pos:nl]
            record = self._parse(line)
            if record is None:
                break  # corrupted: drop this line and everything after
            self._absorb(record)
            good_end = nl + 1
            pos = good_end
        if good_end < len(raw):
            tail = raw[good_end:]
            self.dropped_lines = sum(1 for ln in tail.split(b"\n") if ln)
            with open(self.path, "r+b") as fh:
                fh.truncate(good_end)

    @staticmethod
    def _parse(line: bytes) -> Optional[Dict[str, object]]:
        """One verified record, or ``None`` for anything suspect."""
        try:
            record = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(record, dict):
            return None
        if record.get("v") != LEDGER_VERSION:
            return None
        if record.get("check") != _checksum(record):
            return None
        if record.get("status") not in ("ok", "failed"):
            return None
        return record

    def _absorb(self, record: Dict[str, object]) -> None:
        digest = record["digest"]
        self.attempts[digest] = int(record.get("attempt", 1))
        if record["status"] == "ok":
            self.completed[digest] = _decode_result(record["result"])
            self.failed.pop(digest, None)
        elif digest not in self.completed:
            self.failed[digest] = str(record.get("error", ""))

    # -- appending -----------------------------------------------------
    def _append(self, record: Dict[str, object]) -> None:
        record["check"] = _checksum(record)
        self._fh.write(_encode(record) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._absorb(record)

    def append_ok(
        self,
        digest: str,
        key: Tuple,
        attempt: int,
        result: Dict[str, object],
    ) -> None:
        """Record one completed unit (durable once this returns)."""
        payload = dict(result)
        payload["key"] = list(key)
        self._append(
            {
                "v": LEDGER_VERSION,
                "digest": digest,
                "key": list(key),
                "status": "ok",
                "attempt": attempt,
                "result": payload,
            }
        )

    def append_failed(
        self, digest: str, key: Tuple, attempt: int, error: str
    ) -> None:
        """Record a unit whose retry budget is exhausted.

        Failed units are reported, not resumed-over: a later run with
        the same ledger retries them from scratch.
        """
        self._append(
            {
                "v": LEDGER_VERSION,
                "digest": digest,
                "key": list(key),
                "status": "failed",
                "attempt": attempt,
                "error": error,
            }
        )

    # -- bookkeeping ---------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Compact counts for progress reporting and manifests."""
        return {
            "completed": len(self.completed),
            "failed": len(self.failed),
            "dropped_lines": self.dropped_lines,
        }

    def close(self) -> None:
        if not self._fh.closed:
            # retire the owner sidecar *before* dropping the lock so a
            # contender never reads our record after we released
            try:
                _owner_sidecar(self.path).unlink(missing_ok=True)
            except OSError:  # pragma: no cover - best-effort cleanup
                pass
            self._fh.close()

    def __enter__(self) -> "ResultLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_records(path) -> List[Dict[str, object]]:
    """Every verified record of a ledger file, in file order.

    Read-only inspection helper (examples, tests, post-mortems); does
    not truncate anything.
    """
    out: List[Dict[str, object]] = []
    raw = Path(path).read_bytes()
    for line in raw.split(b"\n"):
        if not line:
            continue
        record = ResultLedger._parse(line)
        if record is None:
            break
        out.append(record)
    return out
