"""Figure 8 — average message latency vs accepted traffic.

For each test sample, each coordinated-tree method (M1/M2/M3) and each
algorithm (L-turn, DOWN/UP), the simulator sweeps the preset's offered
loads; the figure reports, per (algorithm, method, offered load), the
mean over samples of accepted traffic (x) and average message latency
(y).  ``run_figure8(..., ports=4)`` regenerates Figure 8(a) and
``ports=8`` Figure 8(b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.experiments.configs import ExperimentPreset

if TYPE_CHECKING:  # import cycle-free annotation only
    from repro.experiments.parallel import UnitFailure
from repro.experiments.harness import (
    PAPER_ALGORITHMS,
    PAPER_METHODS,
    build_routings,
    make_topology,
)
from repro.metrics.saturation import sweep_injection_rates
from repro.util.ascii_plot import ascii_xy_plot
from repro.util.fsio import atomic_write_text
from repro.util.rng import derive_seed
from repro.util.tables import format_csv

if TYPE_CHECKING:  # import cycle-free annotation only
    from repro.experiments.distributed import WorkerConfig


@dataclass
class Figure8Result:
    """Aggregated latency/throughput curves for one port configuration.

    ``series`` maps ``"<algorithm>/<method>"`` to a list of
    ``(accepted_traffic, average_latency)`` points averaged over
    samples, ordered by offered load.  ``raw`` keeps every per-sample
    point for statistical post-processing.  ``failures`` lists every
    work unit that exhausted its retry budget (empty on a clean run):
    when non-empty the aggregates cover fewer samples than requested
    and callers must surface that — the CLI exits nonzero.
    """

    ports: int
    preset: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    raw: List[Tuple[str, str, int, float, float, float]] = field(
        default_factory=list
    )  # (algorithm, method, sample, offered, accepted, latency)
    failures: List["UnitFailure"] = field(default_factory=list)

    def saturation_throughput(self, key: str) -> float:
        """Max mean accepted traffic of one series."""
        return max(x for x, _ in self.series[key])

    def to_csv(self) -> str:
        """All raw points as CSV."""
        return format_csv(
            ("algorithm", "method", "sample", "offered", "accepted", "latency"),
            self.raw,
        )

    def to_ascii(self, max_latency_factor: float = 20.0) -> str:
        """Figure-8-style ASCII plot (post-saturation blowup clipped).

        Latency diverges beyond saturation; points above
        ``max_latency_factor x`` the minimum latency are dropped from
        the plot (they remain in the CSV).
        """
        floor = min(
            (y for pts in self.series.values() for _, y in pts if math.isfinite(y)),
            default=1.0,
        )
        clipped = {
            name: [
                (x, y)
                for x, y in pts
                if math.isfinite(y) and y <= max_latency_factor * floor
            ]
            for name, pts in self.series.items()
        }
        return ascii_xy_plot(
            clipped,
            x_label="accepted traffic (flits/clock/node)",
            y_label="avg message latency (clocks)",
            title=(
                f"Figure 8 ({self.ports}-port, preset={self.preset}): "
                "latency vs accepted traffic"
            ),
        )


def run_figure8(
    preset: ExperimentPreset,
    ports: int,
    methods: Sequence[str] = PAPER_METHODS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    out_dir: Optional[Path] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: int = 1,
    ledger_path: Optional[Path] = None,
    resume: bool = True,
    retries: Optional[int] = None,
    clock=None,
    artifact_cache: Optional[Path] = None,
    distributed: Optional["WorkerConfig"] = None,
    unit_timeout: Optional[float] = None,
) -> Figure8Result:
    """Regenerate Figure 8 for one port configuration.

    Writes ``figure8_<ports>port.csv`` (raw points) and ``.txt`` (ASCII
    plot) into *out_dir* when given.  ``workers > 1`` fans the
    independent simulations over a process pool
    (:mod:`repro.experiments.parallel`); results are bit-identical to
    the serial run.

    *ledger_path* makes the run durable: every completed unit streams
    to an append-only :class:`~repro.experiments.ledger.ResultLedger`,
    and (with *resume*, the default) units already recorded there are
    skipped — an interrupted run continues where it stopped and the
    final artefacts are byte-identical to an uninterrupted one.  The
    aggregation below keys on the unit tuple, so it accepts ledger
    records in any order.  *retries* bounds per-unit re-attempts after
    a crash (default :data:`~repro.experiments.parallel.DEFAULT_RETRIES`);
    units that exhaust it are collected in ``result.failures`` (the
    CLI turns a non-empty list into a nonzero exit).  *clock* injects
    the progress/ETA timer.

    *artifact_cache* points the run at a content-addressed construction
    cache (:mod:`repro.experiments.artifacts`): each (topology, tree,
    routing) is built once and reused by every offered load and every
    subsequent run.  Results are bit-identical with it on or off.

    *distributed* joins a shared multi-host campaign instead of running
    alone: this process becomes one worker of
    :func:`~repro.experiments.distributed.run_distributed` (lease-based
    claims, per-worker ledger shards in the stage directory under the
    config's campaign dir, deterministic merge).  The aggregates — and
    therefore the artefacts — are byte-identical to a single-host run.
    *unit_timeout* bounds each unit's wall time (hung simulations are
    charged a failed attempt instead of stalling the run) on both the
    pooled and distributed paths.
    """
    result = Figure8Result(ports=ports, preset=preset.name)
    rates = preset.rates_for(ports)
    acc: Dict[Tuple[str, str, float], List[float]] = {}
    lat: Dict[Tuple[str, str, float], List[float]] = {}

    records: Optional[List[Dict[str, object]]] = None
    if distributed is not None:
        from repro.experiments.distributed import run_distributed
        from repro.experiments.parallel import figure8_units

        units = figure8_units(preset, ports, methods, algorithms)
        records = run_distributed(
            units,
            distributed.stage_dir(f"figure8-{ports}port"),
            distributed,
            progress=progress,
            retries=retries,
            unit_timeout=unit_timeout,
            cache_path=artifact_cache,
            failures=result.failures,
        )
    elif workers > 1 or ledger_path is not None or preset.replicas > 1:
        # replicated presets must expand into per-replica work units even
        # on the serial path — the inline sweep below knows nothing about
        # replicas and would silently run each cell once
        from repro.experiments.ledger import ResultLedger
        from repro.experiments.parallel import figure8_units, run_parallel

        units = figure8_units(preset, ports, methods, algorithms)
        ledger = (
            ResultLedger(ledger_path, resume=resume)
            if ledger_path is not None
            else None
        )
        kwargs = {} if retries is None else {"retries": retries}
        try:
            records = run_parallel(
                units,
                max_workers=workers,
                progress=progress,
                ledger=ledger,
                clock=clock,
                failures=result.failures,
                cache_path=artifact_cache,
                unit_timeout=unit_timeout,
                **kwargs,
            )
        finally:
            if ledger is not None:
                ledger.close()

    if records is not None:
        for res in records:
            # replicated presets append a replica index to the unit key;
            # each replica aggregates as one more independent observation
            alg, method, _ports, sample, rate = res["key"][:5]
            accepted, latency = res["accepted"], res["latency"]
            result.raw.append((alg, method, sample, rate, accepted, latency))
            acc.setdefault((alg, method, rate), []).append(accepted)
            lat.setdefault((alg, method, rate), []).append(latency)
    else:
        cache = None
        if artifact_cache is not None:
            from repro.experiments.artifacts import ArtifactCache

            cache = ArtifactCache(artifact_cache)
        for sample in range(preset.samples):
            topology = make_topology(preset, ports, sample, cache=cache)
            routings = build_routings(
                topology,
                preset,
                sample,
                methods=methods,
                algorithms=algorithms,
                cache=cache,
            )
            if cache is not None:
                cache.flush_counters()
            for (alg, method), (routing, _tree) in routings.items():
                seed = derive_seed(preset.seed, 0xF18, ports, sample)
                cfg = preset.sim_config(seed)
                points = sweep_injection_rates(routing, cfg, rates, progress=None)
                for p in points:
                    result.raw.append(
                        (alg, method, sample, p.offered, p.accepted, p.latency)
                    )
                    acc.setdefault((alg, method, p.offered), []).append(p.accepted)
                    lat.setdefault((alg, method, p.offered), []).append(p.latency)
                if progress is not None:
                    sat = max(p.accepted for p in points)
                    progress(
                        f"[fig8/{ports}p] sample {sample} {alg}/{method}: "
                        f"saturation ~{sat:.4f} flits/clock/node"
                    )

    # aggregate: mean accepted and mean latency per (alg, method, rate)
    for alg in algorithms:
        for method in methods:
            pts: List[Tuple[float, float]] = []
            for rate in rates:
                a = acc.get((alg, method, rate))
                l = lat.get((alg, method, rate))
                if a:
                    pts.append((sum(a) / len(a), sum(l) / len(l)))
            result.series[f"{alg}/{method}"] = pts

    if out_dir is not None:
        out_dir = Path(out_dir)
        # atomic publication: concurrent distributed workers finishing
        # the stage together each publish the (byte-identical) artefact
        atomic_write_text(
            out_dir / f"figure8_{ports}port.csv", result.to_csv() + "\n"
        )
        atomic_write_text(
            out_dir / f"figure8_{ports}port.txt", result.to_ascii() + "\n"
        )
    return result
