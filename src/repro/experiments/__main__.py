"""Command-line entry point: ``python -m repro.experiments``.

Subcommands map one-to-one onto the paper's evaluation artefacts::

    python -m repro.experiments figure8 --preset quick --ports 4
    python -m repro.experiments tables  --preset quick
    python -m repro.experiments static-tables --preset midscale
    python -m repro.experiments campaign --preset paperlite --workers 8
    python -m repro.experiments work --campaign-dir /shared/run --preset paperlite
    python -m repro.experiments sweep --preset quick --traffic tornado --vcs 2
    python -m repro.experiments certify --preset quick --fault-links 2
    python -m repro.experiments equivalence --candidate batch --seeds 10
    python -m repro.experiments audit --zoo mesh3x3 ring8 --table
    python -m repro.experiments cache stats results/campaign_paperlite/artifact_cache
    python -m repro.experiments erratum
    python -m repro.experiments info

Results print to stdout; ``--out DIR`` additionally writes CSV/ASCII
artefacts for EXPERIMENTS.md.  ``--workers N`` parallelises the
independent simulations of ``figure8``/``tables``/``campaign`` with
bit-identical results.  ``--artifact-cache DIR`` (on by default for
``campaign``) shares one content-addressed construction cache across
work units and runs — again bit-identical; ``cache stats|verify|clear``
inspects or resets a store.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.configs import PRESETS, get_preset
from repro.simulator.config import BIT_EXACT_ENGINES, ENGINES
from repro.experiments.figure8 import run_figure8
from repro.experiments.harness import ALGORITHMS, PAPER_ALGORITHMS, PAPER_METHODS
from repro.experiments.report import (
    render_all_tables,
    render_figure8_summary,
    winners,
)
from repro.experiments.tables import run_static_tables, run_tables


def _parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument(
            "--preset",
            default="quick",
            choices=sorted(PRESETS),
            help="scale preset (default: quick)",
        )
        sp.add_argument(
            "--samples", type=int, default=None, help="override sample count"
        )
        sp.add_argument(
            "--algorithms",
            nargs="+",
            default=list(PAPER_ALGORITHMS),
            choices=sorted(ALGORITHMS),
            help="algorithms to compare",
        )
        sp.add_argument(
            "--methods",
            nargs="+",
            default=list(PAPER_METHODS),
            choices=["M1", "M2", "M3"],
            help="coordinated-tree methods",
        )
        sp.add_argument("--out", type=Path, default=None, help="artefact dir")
        sp.add_argument(
            "--quiet", action="store_true", help="suppress progress lines"
        )
        sp.add_argument(
            "--workers", type=int, default=1,
            help="process-pool size for the simulations (default: serial)",
        )
        sp.add_argument(
            "--engine", default=None, choices=sorted(ENGINES),
            help="simulator step engine for every run (default: the "
            "fast path, or $REPRO_ENGINE); reference/fast/vectorized "
            "are bit-identical — choosing among them only trades speed "
            "— while 'batch' is certified statistically (see the "
            "equivalence subcommand) and changes result identities",
        )
        sp.add_argument(
            "--replicas", type=int, default=None, metavar="R",
            help="seed-replicas per (sample, algorithm, method, rate) "
            "cell; with --engine batch, sibling replicas run as one "
            "fused array sweep (repro.simulator.replica_batch) with "
            "per-replica results identical to sequential runs",
        )

    def caching(sp, default_on=False):
        sp.add_argument(
            "--artifact-cache", type=Path, default=None, metavar="DIR",
            help="content-addressed construction cache: each topology, "
            "tree and routing is built once, then reused by every work "
            "unit and every later run (results are bit-identical)"
            + ("; default: <out>/artifact_cache" if default_on else ""),
        )
        sp.add_argument(
            "--no-artifact-cache", action="store_true",
            help="disable the construction cache"
            + ("" if default_on else " (it is already off unless "
               "--artifact-cache is given)"),
        )

    def durability(sp):
        sp.add_argument(
            "--resume", type=Path, default=None, metavar="LEDGER",
            help="durable JSONL result ledger: completed units stream to "
            "it (fsync'd) and are skipped when the run restarts; created "
            "if missing",
        )
        sp.add_argument(
            "--retries", type=int, default=None,
            help="extra attempts per unit after a worker crash or error "
            "(default: 2); an exhausted unit is reported, not fatal",
        )
        sp.add_argument(
            "--unit-timeout", type=float, default=None, metavar="SECONDS",
            help="per-unit wall-time watchdog: a unit exceeding it is "
            "charged a failed attempt (against --retries) instead of "
            "hanging the run",
        )

    f8 = sub.add_parser("figure8", help="latency vs accepted traffic curves")
    common(f8)
    durability(f8)
    caching(f8)
    f8.add_argument("--ports", type=int, default=4, choices=(4, 8))

    tb = sub.add_parser("tables", help="Tables 1-4 (simulated, saturated)")
    common(tb)
    durability(tb)
    caching(tb)
    tb.add_argument("--ports", type=int, nargs="+", default=None)

    st = sub.add_parser("static-tables", help="Tables 1-4 (static analysis)")
    common(st)
    caching(st)
    st.add_argument("--ports", type=int, nargs="+", default=None)

    sw = sub.add_parser(
        "sweep",
        help="custom injection-rate sweep on one generated topology",
    )
    common(sw)
    sw.add_argument("--ports", type=int, default=4)
    sw.add_argument("--switches", type=int, default=None,
                    help="override the preset's switch count")
    sw.add_argument("--rates", type=float, nargs="+", default=None,
                    help="offered loads (flits/clock/node)")
    sw.add_argument(
        "--traffic",
        default="uniform",
        choices=("uniform", "hotspot", "tornado", "local", "bitcomp"),
    )
    sw.add_argument("--vcs", type=int, default=1,
                    help="virtual channels per physical channel")

    cp = sub.add_parser(
        "campaign",
        help="generate every paper artefact into one directory (resumable "
        "at both stage and work-unit level via per-stage ledgers)",
    )
    common(cp)
    cp.add_argument(
        "--retries", type=int, default=None,
        help="extra attempts per unit after a worker crash or error "
        "(default: 2); an exhausted unit is reported, not fatal",
    )
    cp.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="per-unit wall-time watchdog: a unit exceeding it is "
        "charged a failed attempt (against --retries) instead of "
        "hanging the run",
    )
    cp.add_argument("--force", action="store_true",
                    help="re-run stages whose artefacts already exist "
                    "(also truncates the per-stage unit ledgers)")
    cp.add_argument("--no-static", action="store_true",
                    help="skip the static-analysis cross-check stage")
    caching(cp, default_on=True)

    wk = sub.add_parser(
        "work",
        help="join a shared campaign directory as one distributed worker "
        "(coordinator-less multi-host execution: run one per host, all "
        "pointed at the same --campaign-dir; merged artefacts are "
        "byte-identical to a single-host run)",
    )
    wk.add_argument(
        "--campaign-dir", type=Path, required=True, metavar="DIR",
        help="shared coordination directory (artefacts, lease files and "
        "per-worker ledger shards all live under it)",
    )
    wk.add_argument(
        "--preset", default="quick", choices=sorted(PRESETS),
        help="scale preset (default: quick); every worker must use the "
        "same preset — unit digests enforce it at merge time",
    )
    wk.add_argument(
        "--samples", type=int, default=None, help="override sample count"
    )
    wk.add_argument(
        "--engine", default=None, choices=sorted(ENGINES),
        help="simulator step engine; workers of one campaign may mix "
        "the bit-identical engines (reference/fast/vectorized) freely, "
        "but 'batch' results carry engine-variant unit digests and "
        "never merge with bit-exact shards",
    )
    wk.add_argument(
        "--worker", default=None, metavar="ID",
        help="worker id, unique among live workers (default: "
        "<host>-<pid>); reusing a stable id lets a restarted worker "
        "resume its own ledger shard and reclaim its own leases "
        "immediately",
    )
    wk.add_argument(
        "--retries", type=int, default=None,
        help="extra attempts per unit after an error (default: 2)",
    )
    wk.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="per-unit wall-time watchdog; strongly recommended for "
        "multi-host runs (a hung unit renews its lease forever "
        "otherwise)",
    )
    wk.add_argument(
        "--poll-interval", type=float, default=0.5, metavar="SECONDS",
        help="idle re-scan period of the shared directory (default: 0.5)",
    )
    wk.add_argument(
        "--stale-scans", type=int, default=4,
        help="consecutive scans a lease must sit unchanged before its "
        "holder is presumed dead (default: 4; raise on filesystems "
        "with slow metadata propagation)",
    )
    wk.add_argument(
        "--poison-after", type=int, default=2,
        help="quarantine a unit once this many distinct workers died "
        "holding it (default: 2)",
    )
    wk.add_argument(
        "--no-static", action="store_true",
        help="skip the static-analysis cross-check stage",
    )
    wk.add_argument(
        "--shared-cache", type=Path, default=None, metavar="DIR",
        help="shared read-through artifact tier (entries are "
        "checksum-verified on import)",
    )
    wk.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    caching(wk, default_on=True)

    lf = sub.add_parser(
        "live-faults",
        help="live fault injection + online reconfiguration comparison",
    )
    common(lf)
    lf.add_argument("--ports", type=int, default=4)
    lf.add_argument("--switches", type=int, default=None,
                    help="override the preset's switch count")
    lf.add_argument("--link-failures", type=int, default=2,
                    help="permanent link failures to inject")
    lf.add_argument("--link-flaps", type=int, default=0,
                    help="transient link failures (down then up)")
    lf.add_argument("--switch-failures", type=int, default=0,
                    help="switch failures to inject")
    lf.add_argument("--fault-seed", type=int, default=42,
                    help="seed of the fault schedule")
    lf.add_argument("--drain-clocks", type=int, default=64,
                    help="drain window before each table swap")
    lf.add_argument("--policy", default="drop", choices=("drop", "drain"),
                    help="what happens to worms crossing a dying link")
    lf.add_argument("--rate", type=float, default=None,
                    help="offered load (default: preset's lowest rate)")
    caching(lf)

    cf = sub.add_parser(
        "certify",
        help="emit deadlock-freedom certificates and re-check them with "
        "the independent checker",
    )
    cf.add_argument(
        "--preset", default="quick", choices=sorted(PRESETS),
        help="scale preset (default: quick)",
    )
    cf.add_argument("--ports", type=int, default=4)
    cf.add_argument("--switches", type=int, default=None,
                    help="override the preset's switch count")
    cf.add_argument(
        "--algorithms",
        nargs="+",
        default=["down-up", "l-turn", "up-down"],
        choices=sorted(ALGORITHMS),
        help="algorithms to certify (default: all three of the paper)",
    )
    cf.add_argument("--out", type=Path, default=None,
                    help="write <algorithm>.cert.json files here")
    cf.add_argument("--fault-links", type=int, default=0,
                    help="also pre-flight-certify every table a random "
                    "fault schedule with this many link failures induces")
    cf.add_argument("--fault-seed", type=int, default=42,
                    help="seed of the pre-flight fault schedule")
    cf.add_argument("--quiet", action="store_true",
                    help="suppress progress lines")

    eq = sub.add_parser(
        "equivalence",
        help="statistical A/B certification of a relaxed engine "
        "('batch') against the bit-exact oracles: paired per-seed "
        "runs, Bonferroni-corrected paired-t CIs + latency KS gate",
    )
    eq.add_argument(
        "--candidate", default="batch", choices=sorted(ENGINES),
        help="engine under certification (default: batch)",
    )
    eq.add_argument(
        "--oracles", nargs="+", default=["fast", "vectorized"],
        choices=sorted(BIT_EXACT_ENGINES),
        help="bit-exact engines to certify against (default: both "
        "fast and vectorized)",
    )
    eq.add_argument(
        "--seeds", type=int, default=10,
        help="paired seeds per (scenario, engine) cell (default: 10)",
    )
    eq.add_argument(
        "--alpha", type=float, default=0.05,
        help="family-wise false-rejection rate of the whole gate "
        "(default: 0.05, Bonferroni-split across every test)",
    )
    eq.add_argument(
        "--switches", type=int, default=None,
        help="override the quick matrix's switch count",
    )
    eq.add_argument("--json", type=Path, default=None, metavar="PATH",
                    help="also write the full report as JSON")
    eq.add_argument("--quiet", action="store_true",
                    help="suppress progress lines")

    au = sub.add_parser(
        "audit",
        help="deadlock-freedom existence oracle + turn-optimality audit "
        "of the DOWN/UP prohibited-turn set over the topology zoo",
    )
    au.add_argument(
        "--zoo", nargs="+", default=None, metavar="NAME",
        help="zoo topologies to audit (default: the whole registry; "
        "see `repro-experiments info`)",
    )
    au.add_argument(
        "--table", action="store_true",
        help="print only the summary table (stable golden output)",
    )
    au.add_argument("--out", type=Path, default=None,
                    help="write audit.csv + audit.txt here")
    au.add_argument(
        "--artifact-cache", type=Path, default=None, metavar="DIR",
        help="serve repeated audits from a content-addressed store "
        "(keyed by topology digest + prohibited-turn set)",
    )
    au.add_argument(
        "--resume", type=Path, default=None, metavar="LEDGER",
        help="durable JSONL ledger: completed audits are skipped when "
        "the run restarts",
    )
    au.add_argument(
        "--require-slack", action="store_true",
        help="exit nonzero unless every audited topology shows nonzero "
        "prohibited-turn slack (CI gate)",
    )
    au.add_argument("--quiet", action="store_true",
                    help="suppress progress lines")

    ca = sub.add_parser(
        "cache",
        help="inspect, re-checksum or clear a construction-artifact store",
    )
    ca.add_argument("action", choices=("stats", "verify", "clear"))
    ca.add_argument("dir", type=Path, help="artifact store directory")

    sub.add_parser("erratum", help="demonstrate the Section 4.3 PT erratum")
    sub.add_parser("info", help="list presets and algorithms")
    return p


def _progress(quiet: bool):
    return (lambda msg: None) if quiet else (lambda msg: print(msg, flush=True))


def _report_failures(failures) -> int:
    """Print exhausted units to stderr; nonzero when any exist.

    Emitted even under ``--quiet``: artefacts from a partially-failed
    run cover fewer samples than requested, and that must never look
    like success (exit code 0 / silence).
    """
    if not failures:
        return 0
    print(
        f"ERROR: {len(failures)} work unit(s) exhausted their retry "
        "budget; artefacts cover fewer samples than requested",
        file=sys.stderr,
    )
    for f in failures:
        print(
            f"  {f.key} after {f.attempts} attempt(s): {f.error}",
            file=sys.stderr,
        )
    return 1


def _scale_preset(args):
    """Resolve the preset plus the common CLI overrides."""
    preset = get_preset(args.preset)
    if getattr(args, "samples", None):
        preset = preset.scaled(samples=args.samples)
    if getattr(args, "engine", None):
        preset = preset.scaled(engine=args.engine)
    if getattr(args, "replicas", None):
        preset = preset.scaled(replicas=args.replicas)
    return preset


def _cache_dir(args, default=None):
    """Resolve the ``--artifact-cache``/``--no-artifact-cache`` pair."""
    if getattr(args, "no_artifact_cache", False):
        return None
    return args.artifact_cache or default


def _cmd_cache(args) -> int:
    from repro.experiments.artifacts import (
        clear_store,
        store_stats,
        verify_store,
    )

    if args.action == "stats":
        s = store_stats(args.dir)
        c = s["counters"]
        print(f"store: {args.dir}")
        print(f"entries: {s['entries']} ({s['bytes']} bytes)")
        for kind, n in s["by_kind"].items():
            print(f"  {kind}: {n}")
        print(
            f"hits: {c['hits'] + c['memory_hits']} "
            f"(memory {c['memory_hits']})  misses: {c['misses']}  "
            f"corrupt: {c['corrupt']}  publishes skipped: "
            f"{c['publish_skipped']}"
        )
        return 0
    if args.action == "verify":
        checked, corrupt = verify_store(args.dir)
        for name in corrupt:
            print(f"CORRUPT {name}")
        print(f"checked {checked} entries: {len(corrupt)} corrupt")
        return 1 if corrupt else 0
    removed = clear_store(args.dir)
    print(f"removed {removed} file(s) from {args.dir}")
    return 0


def _cmd_figure8(args) -> int:
    preset = _scale_preset(args)
    result = run_figure8(
        preset,
        ports=args.ports,
        methods=args.methods,
        algorithms=args.algorithms,
        out_dir=args.out,
        progress=_progress(args.quiet),
        workers=args.workers,
        ledger_path=args.resume,
        retries=args.retries,
        artifact_cache=_cache_dir(args),
        unit_timeout=args.unit_timeout,
    )
    print()
    print(result.to_ascii())
    print()
    print(render_figure8_summary(result))
    return _report_failures(result.failures)


def _cmd_tables(args, static: bool) -> int:
    preset = _scale_preset(args)
    runner = run_static_tables if static else run_tables
    kwargs = (
        {}
        if static
        else {
            "workers": args.workers,
            "ledger_path": getattr(args, "resume", None),
            "retries": getattr(args, "retries", None),
            "unit_timeout": getattr(args, "unit_timeout", None),
        }
    )
    kwargs["artifact_cache"] = _cache_dir(args)
    result = runner(
        preset,
        ports_list=args.ports,
        methods=args.methods,
        algorithms=args.algorithms,
        out_dir=args.out,
        progress=_progress(args.quiet),
        **kwargs,
    )
    ports_list = args.ports or preset.ports
    print()
    print(render_all_tables(result, args.algorithms, ports_list, args.methods))
    print()
    win = winners(result, ports_list)
    for metric, alg in sorted(win.items()):
        print(f"winner[{metric}] = {alg}")
    return _report_failures(result.failures)


def _make_traffic(name: str, n: int):
    from repro.simulator.traffic import (
        BitComplementTraffic,
        HotspotTraffic,
        LocalTraffic,
        TornadoTraffic,
        UniformTraffic,
    )

    return {
        "uniform": lambda: UniformTraffic(n),
        "hotspot": lambda: HotspotTraffic(n, hotspots=[0], fraction=0.2),
        "tornado": lambda: TornadoTraffic(n),
        "local": lambda: LocalTraffic(n, radius=3),
        "bitcomp": lambda: BitComplementTraffic(n),
    }[name]()


def _cmd_sweep(args) -> int:
    from repro.experiments.harness import build_routings, make_topology
    from repro.metrics.saturation import sweep_injection_rates
    from repro.simulator.vc_engine import simulate_vc
    from repro.util.tables import format_table

    preset = _scale_preset(args)
    if args.switches:
        preset = preset.scaled(n_switches=args.switches)
    topology = make_topology(preset, args.ports, sample=0)
    traffic = _make_traffic(args.traffic, topology.n)
    rates = tuple(args.rates) if args.rates else preset.rates_for(args.ports)
    progress = _progress(args.quiet)

    rows = []
    routings = build_routings(
        topology, preset, 0, methods=("M1",), algorithms=args.algorithms
    )
    for (alg, _method), (routing, _tree) in routings.items():
        cfg = preset.sim_config(seed=preset.seed)
        if args.vcs > 1:
            for rate in rates:
                stats = simulate_vc(
                    routing, cfg.with_rate(rate), num_vcs=args.vcs,
                    traffic=traffic,
                )
                rows.append(
                    [alg, rate, round(stats.accepted_traffic, 5),
                     round(stats.average_latency, 1)]
                )
                progress(f"{alg} rate={rate} done")
        else:
            for p in sweep_injection_rates(
                routing, cfg, rates, traffic=traffic, progress=progress
            ):
                rows.append(
                    [alg, p.offered, round(p.accepted, 5), round(p.latency, 1)]
                )
    print()
    print(
        format_table(
            ["algorithm", "offered", "accepted", "latency"],
            rows,
            title=(
                f"sweep: {topology}, traffic={args.traffic}, vcs={args.vcs}"
            ),
        )
    )
    return 0


def _cmd_campaign(args) -> int:
    from repro.experiments.campaign import run_campaign

    preset = _scale_preset(args)
    out = args.out or Path(f"results/campaign_{preset.name}")
    stages = run_campaign(
        preset,
        out,
        workers=args.workers,
        force=args.force,
        progress=_progress(args.quiet),
        include_static=not args.no_static,
        retries=args.retries,
        artifact_cache=args.artifact_cache,
        use_artifact_cache=not args.no_artifact_cache,
        unit_timeout=args.unit_timeout,
    )
    for st in stages:
        state = "skipped" if st.skipped else f"{st.seconds:.1f}s"
        suffix = f"  ({len(st.failures)} unit(s) FAILED)" if st.failures else ""
        print(f"{st.name:18s} {state}{suffix}")
    print(f"artefacts in {out}")
    return _report_failures([f for st in stages for f in st.failures])


def _cmd_work(args) -> int:
    from repro.experiments.campaign import run_campaign
    from repro.experiments.distributed import WorkerConfig, default_worker_id

    preset = _scale_preset(args)
    campaign_dir = args.campaign_dir
    config = WorkerConfig(
        campaign_dir=campaign_dir,
        worker=args.worker or default_worker_id(),
        poll_interval=args.poll_interval,
        stale_scans=args.stale_scans,
        poison_after=args.poison_after,
        shared_cache=args.shared_cache,
    )
    say = _progress(args.quiet)
    say(f"[work] worker {config.worker} joining {campaign_dir}")
    stages = run_campaign(
        preset,
        campaign_dir,
        workers=1,
        progress=say,
        include_static=not args.no_static,
        retries=args.retries,
        artifact_cache=args.artifact_cache,
        use_artifact_cache=not args.no_artifact_cache,
        distributed=config,
        unit_timeout=args.unit_timeout,
    )
    for st in stages:
        state = "skipped" if st.skipped else f"{st.seconds:.1f}s"
        suffix = f"  ({len(st.failures)} unit(s) FAILED)" if st.failures else ""
        print(f"{st.name:18s} {state}{suffix}")
    print(f"artefacts in {campaign_dir}")
    return _report_failures([f for st in stages for f in st.failures])


def _cmd_live_faults(args) -> int:
    from repro.experiments.harness import make_topology
    from repro.experiments.live_resilience import (
        render_live_fault_table,
        run_live_fault_campaign,
    )
    from repro.faults import FaultSchedule

    preset = _scale_preset(args)
    if args.switches:
        preset = preset.scaled(n_switches=args.switches)
    topology = make_topology(preset, args.ports, sample=0)
    cfg = preset.sim_config(seed=preset.seed)
    rate = args.rate if args.rate is not None else min(preset.rates_for(args.ports))
    cfg = cfg.with_rate(rate)
    # faults land in the first half of the measurement window so the
    # run can observe recovery
    window = (
        cfg.warmup_clocks,
        cfg.warmup_clocks + cfg.measure_clocks // 2,
    )
    schedule = FaultSchedule.random(
        topology,
        permanent_links=args.link_failures,
        link_flaps=args.link_flaps,
        switch_failures=args.switch_failures,
        window=window,
        rng=args.fault_seed,
    )
    print(f"fault schedule (seed {args.fault_seed}):")
    print(schedule.describe())
    print()
    results = run_live_fault_campaign(
        topology,
        schedule,
        cfg,
        algorithms=args.algorithms,
        drain_clocks=args.drain_clocks,
        policy=args.policy,
        seed=preset.seed,
        progress=_progress(args.quiet),
        artifact_cache=_cache_dir(args),
    )
    print()
    print(render_live_fault_table(results))
    return 0


def _cmd_certify(args) -> int:
    from repro.experiments.harness import make_topology, make_tree
    from repro.faults import FaultSchedule
    from repro.statics import certify_routing, preflight_schedule, recheck
    from repro.util.rng import derive_seed
    from repro.util.tables import format_table

    preset = get_preset(args.preset)
    if args.switches:
        preset = preset.scaled(n_switches=args.switches)
    topology = make_topology(preset, args.ports, sample=0)
    tree = make_tree(topology, "M1", preset, 0)
    progress = _progress(args.quiet)

    rows = []
    first_builder = None
    for alg in args.algorithms:
        builder = ALGORITHMS[alg]
        seed = derive_seed(preset.seed, 0xCE47, ord(alg[0]))
        routing = builder(topology, tree=tree, rng=seed)
        if first_builder is None:
            first_builder = (alg, builder, seed)
        bundle = certify_routing(routing, algorithm=alg)
        report = recheck(bundle)
        progress(f"[certify] {report.summary()}")
        rows.append(
            [
                alg,
                report.num_channels,
                report.dependency_edges,
                report.witness_pairs,
                report.progress_states,
                bundle.digest[:23],
            ]
        )
        if args.out:
            args.out.mkdir(parents=True, exist_ok=True)
            name = alg.replace("/", "-")
            (args.out / f"{name}.cert.json").write_text(
                bundle.to_json() + "\n", encoding="utf-8"
            )
    print()
    print(
        format_table(
            ["algorithm", "channels", "cdg edges", "witness paths",
             "progress states", "digest"],
            rows,
            title=f"independently re-checked certificates: {topology}",
        )
    )

    if args.fault_links > 0:
        schedule = FaultSchedule.random(
            topology,
            permanent_links=args.fault_links,
            window=(0, 10_000),
            rng=args.fault_seed,
        )
        alg, builder, seed = first_builder
        entries = preflight_schedule(
            schedule,
            lambda sub: builder(sub, tree=None, rng=seed),
            progress=progress,
        )
        print()
        print(
            f"pre-flight: every table the fault schedule induces is "
            f"certified ({len(entries)} degraded state(s), {alg})"
        )
        for e in entries:
            print(f"  {e.state.describe()} -> {e.bundle.digest[:23]}")
    return 0


def _cmd_equivalence(args) -> int:
    import dataclasses
    import json

    from repro.simulator.equivalence import QUICK_MATRIX, certify

    scenarios = QUICK_MATRIX
    if args.switches:
        scenarios = tuple(
            dataclasses.replace(sc, switches=args.switches)
            for sc in scenarios
        )
    report = certify(
        candidate=args.candidate,
        oracles=tuple(args.oracles),
        scenarios=scenarios,
        seeds=tuple(range(args.seeds)),
        family_alpha=args.alpha,
        progress=_progress(args.quiet),
    )
    print(report.render())
    if args.json:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(report.as_dict(), indent=2) + "\n", encoding="utf-8"
        )
        print(f"report written to {args.json}")
    return 0 if report.passed else 1


def _cmd_audit(args) -> int:
    from repro.analysis.turn_slack import render_turn_slack_table
    from repro.experiments.auditing import DEFAULT_AUDIT_ZOO, run_topology_audits
    from repro.topology.zoo import zoo_names

    names = args.zoo or list(DEFAULT_AUDIT_ZOO)
    unknown = [n for n in names if n not in zoo_names()]
    if unknown:
        print(
            f"ERROR: unknown zoo topolog{'ies' if len(unknown) > 1 else 'y'} "
            f"{', '.join(unknown)}; available: {', '.join(zoo_names())}",
            file=sys.stderr,
        )
        return 2
    reports = run_topology_audits(
        names,
        out_dir=args.out,
        artifact_cache=args.artifact_cache,
        ledger_path=args.resume,
        progress=_progress(args.quiet or args.table),
    )
    if not args.table:
        for r in reports:
            print(f"{r.summary()}")
            if r.necessary_turns:
                print(f"  necessary: {', '.join(r.necessary_turns)}")
            if r.redundant_turns:
                print(f"  individually droppable: {len(r.redundant_turns)} turn(s)")
            print(f"  digest: {r.digest[:23]}")
        print()
    print(render_turn_slack_table(reports))

    rc = 0
    bad = [r for r in reports if not r.feasible or not r.witness_rechecked]
    if bad:
        print(
            "ERROR: existence/recheck failed for: "
            + ", ".join(r.topology for r in bad),
            file=sys.stderr,
        )
        rc = 1
    if args.require_slack:
        flat = [r for r in reports if r.feasible and r.slack_pct <= 0.0]
        if flat:
            print(
                "ERROR: zero prohibited-turn slack on: "
                + ", ".join(r.topology for r in flat),
                file=sys.stderr,
            )
            rc = 1
    return rc


def _cmd_erratum() -> int:
    from repro.core.communication_graph import CommunicationGraph
    from repro.core.coordinated_tree import build_coordinated_tree
    from repro.core.direction_graph import (
        DOWN_UP_PROHIBITED_TURNS,
        PAPER_SECTION_4_3_PRINTED_PT,
    )
    from repro.core.downup import down_up_turn_model
    from repro.routing.channel_graph import find_turn_cycle
    from repro.topology.graph import Topology

    print(__doc__ or "")
    print("Section 4.3 erratum demonstration")
    print("=================================")
    diff_printed = sorted(
        str(t) for t in PAPER_SECTION_4_3_PRINTED_PT - DOWN_UP_PROHIBITED_TURNS
    )
    diff_fixed = sorted(
        str(t) for t in DOWN_UP_PROHIBITED_TURNS - PAPER_SECTION_4_3_PRINTED_PT
    )
    print(f"printed-only prohibitions : {diff_printed}")
    print(f"narrative-only prohibitions: {diff_fixed}")
    topo = Topology(5, [(0, 1), (0, 2), (0, 3), (1, 4), (3, 4), (2, 4), (2, 3)])
    cg = CommunicationGraph.from_tree(build_coordinated_tree(topo))
    printed = down_up_turn_model(
        cg, apply_phase3=False, prohibited=PAPER_SECTION_4_3_PRINTED_PT
    )
    fixed = down_up_turn_model(cg, apply_phase3=False)
    cyc = find_turn_cycle(printed)
    print(f"5-switch witness network : links={list(topo.links)}")
    print(f"printed PT turn cycle    : {cyc}  (channels; DEADLOCK POSSIBLE)")
    print(f"narrative PT turn cycle  : {find_turn_cycle(fixed)}")
    return 0 if cyc is not None else 1


def _cmd_info() -> int:
    print("presets:")
    for name, p in sorted(PRESETS.items()):
        print(
            f"  {name:9s} n={p.n_switches:4d} ports={p.ports} "
            f"samples={p.samples} packet={p.packet_length} "
            f"clocks={p.warmup_clocks}+{p.measure_clocks}"
        )
    print("algorithms:", ", ".join(sorted(ALGORITHMS)))
    from repro.topology.zoo import zoo_names

    print("zoo:", ", ".join(zoo_names()))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatch (also the ``repro-experiments`` console script)."""
    args = _parser().parse_args(argv)
    if args.command == "figure8":
        return _cmd_figure8(args)
    if args.command == "tables":
        return _cmd_tables(args, static=False)
    if args.command == "static-tables":
        return _cmd_tables(args, static=True)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "work":
        return _cmd_work(args)
    if args.command == "live-faults":
        return _cmd_live_faults(args)
    if args.command == "certify":
        return _cmd_certify(args)
    if args.command == "equivalence":
        return _cmd_equivalence(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "erratum":
        return _cmd_erratum()
    if args.command == "info":
        return _cmd_info()
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
