"""Parallel experiment execution.

The paper's evaluation is embarrassingly parallel — every (sample,
algorithm, method, rate) simulation is independent — and the archival
presets take tens of minutes serially in Python.  This module fans the
work units out over processes with :mod:`concurrent.futures`, keeping
results bit-identical to the serial harness: every unit re-derives its
topology/tree/routing from the preset seed inside the worker (cheap
next to the simulation), so nothing non-picklable crosses process
boundaries and the scheduling order cannot affect any RNG stream.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.configs import ExperimentPreset
from repro.experiments.harness import (
    PAPER_ALGORITHMS,
    PAPER_METHODS,
    build_routings,
    make_topology,
)
from repro.simulator.engine import simulate
from repro.util.rng import derive_seed


@dataclass(frozen=True)
class WorkUnit:
    """One independent simulation: fully described by plain data."""

    preset: ExperimentPreset
    ports: int
    sample: int
    algorithm: str
    method: str
    rate: float
    #: seed-derivation salt; matches the serial harness constants
    #: (0xF18 for Figure-8 sweeps, 0x7AB for the saturated table runs)
    seed_salt: int = 0xF18

    def key(self) -> Tuple[str, str, int, int, float]:
        return (self.algorithm, self.method, self.ports, self.sample, self.rate)


def figure8_units(
    preset: ExperimentPreset,
    ports: int,
    methods: Sequence[str] = PAPER_METHODS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
) -> List[WorkUnit]:
    """The Figure-8 work list for one port configuration."""
    return [
        WorkUnit(preset, ports, sample, alg, method, rate)
        for sample in range(preset.samples)
        for method in methods
        for alg in algorithms
        for rate in preset.rates_for(ports)
    ]


def tables_units(
    preset: ExperimentPreset,
    ports_list: Optional[Sequence[int]] = None,
    methods: Sequence[str] = PAPER_METHODS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    saturation_rate: float = 1.0,
) -> List[WorkUnit]:
    """The Tables-1-4 work list (one saturated run per combination)."""
    ports_list = tuple(ports_list if ports_list is not None else preset.ports)
    return [
        WorkUnit(preset, ports, sample, alg, method, saturation_rate, 0x7AB)
        for ports in ports_list
        for sample in range(preset.samples)
        for method in methods
        for alg in algorithms
    ]


def run_unit(unit: WorkUnit) -> Dict[str, object]:
    """Execute one work unit (also the process-pool entry point).

    Rebuilds topology, tree and routing deterministically from the
    preset seed, simulates, and returns a plain dict: the unit key, the
    headline numbers, and the per-channel utilization needed for the
    table metrics.
    """
    topology = make_topology(unit.preset, unit.ports, unit.sample)
    routings = build_routings(
        topology,
        unit.preset,
        unit.sample,
        methods=(unit.method,),
        algorithms=(unit.algorithm,),
    )
    routing, tree = routings[(unit.algorithm, unit.method)]
    seed = derive_seed(unit.preset.seed, unit.seed_salt, unit.ports, unit.sample)
    cfg = unit.preset.sim_config(seed).with_rate(unit.rate)
    stats = simulate(routing, cfg)
    from repro.metrics.utilization import utilization_report

    return {
        "key": unit.key(),
        "accepted": stats.accepted_traffic,
        "latency": stats.average_latency,
        "report": utilization_report(stats.channel_utilization(), tree),
    }


def run_parallel(
    units: Iterable[WorkUnit],
    max_workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[Dict[str, object]]:
    """Run *units* over a process pool; order of results matches input.

    ``max_workers`` defaults to ``os.cpu_count()``.  With one worker the
    pool is skipped entirely (same code path as the serial harness —
    useful under debuggers and in tests).
    """
    units = list(units)
    if max_workers is None:
        max_workers = os.cpu_count() or 1
    if max_workers <= 1 or len(units) <= 1:
        out = []
        for i, u in enumerate(units):
            out.append(run_unit(u))
            if progress:
                progress(f"[{i + 1}/{len(units)}] {u.key()}")
        return out
    results: List[Dict[str, object]] = []
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for i, res in enumerate(pool.map(run_unit, units, chunksize=1)):
            results.append(res)
            if progress:
                progress(f"[{i + 1}/{len(units)}] {res['key']}")
    return results
