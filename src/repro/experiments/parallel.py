"""Crash-tolerant parallel experiment execution.

The paper's evaluation is embarrassingly parallel — every (sample,
algorithm, method, rate) simulation is independent — and the archival
presets take tens of minutes serially in Python.  This module fans the
work units out over processes with :mod:`concurrent.futures`, keeping
results bit-identical to the serial harness: every unit re-derives its
topology/tree/routing from the preset seed inside the worker (cheap
next to the simulation), so nothing non-picklable crosses process
boundaries and the scheduling order cannot affect any RNG stream.

Execution is fault-tolerant infrastructure, not a bare ``pool.map``:

* units are submitted individually and collected as they complete, so
  one unit's failure never discards its siblings' results;
* a raising unit is retried up to ``retries`` extra attempts; when the
  budget is exhausted it is *reported* — progress line, ledger record,
  and a :class:`UnitFailure` in the caller's ``failures`` collector so
  artefact writers and the CLI can refuse to pass silently — and the
  campaign carries on without it;
* a dying worker process (OOM kill, segfault, SIGKILL) breaks the
  ``ProcessPoolExecutor``; the runner rebuilds the pool and reschedules
  every unit that was in flight, charging each one attempt — so a unit
  that deterministically kills its worker exhausts its own budget
  instead of looping forever, while innocent bystanders simply re-run.
  Submission is throttled to the pool width: at most ``max_workers``
  units are ever in flight, so a pool break charges only the units a
  worker could actually have been running, never the whole queue;
* with a :class:`~repro.experiments.ledger.ResultLedger`, results
  stream to disk (fsync'd) the moment they complete, and units whose
  digest is already in the ledger are skipped on resume — an
  interrupted campaign continues where it stopped and merges to
  byte-identical final outputs;
* sibling seed-replicas of a replicated relaxed-engine preset
  (``preset.replicas > 1`` with ``engine`` in
  :data:`~repro.simulator.config.RELAXED_ENGINES`) are *folded*: the
  scheduler groups them into one task executed as a single fused
  :func:`repro.simulator.replica_batch.run_replicated` sweep.  The
  replica core's packing-invariance contract guarantees each member's
  result is identical to its own sequential run, so ledger records,
  resume, retries and aggregation are unchanged — folding only cuts
  the per-clock dispatch wall R ways.


Progress lines share one format across the serial and pooled paths —
``[done/total] <key> ok attempt=N`` — so retry activity is visible, and
an ETA (from the injectable wall clock, never read directly per
invariant STA001) is appended while units remain.
"""

from __future__ import annotations

import os
import signal
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.experiments.artifacts import process_cache, set_process_cache
from repro.experiments.configs import ExperimentPreset
from repro.experiments.harness import (
    PAPER_ALGORITHMS,
    PAPER_METHODS,
    build_routings,
    make_topology,
)
from repro.experiments.ledger import ResultLedger, unit_digest
from repro.simulator.config import RELAXED_ENGINES
from repro.simulator.engine import simulate
from repro.simulator.replica_batch import replica_seed, run_replicated
from repro.util.rng import derive_seed
from repro.util.wallclock import Clock, resolve_clock

#: default extra attempts per unit after its first failure
DEFAULT_RETRIES = 2

#: test-only fault injection: ``"<algorithm>:<mode>:<max_attempt>"``
#: where mode is ``raise`` (unit raises), ``kill`` (worker SIGKILLs
#: itself, breaking the pool) or ``hang`` (unit never returns — the
#: per-unit watchdog's test vector).  Environment variables propagate
#: to pool workers under every start method, which is why this hook is
#: not a module global.  Never set outside the test suite.
TEST_FAULT_ENV = "REPRO_TEST_FAULT"


class UnitTimeout(RuntimeError):
    """One work unit exceeded its ``unit_timeout`` wall-time budget.

    Raised *inside* the executing process by the SIGALRM watchdog, so a
    hung unit surfaces through the normal exception path: it is charged
    a failed attempt against its bounded retries instead of stalling
    result collection forever.
    """


@dataclass(frozen=True)
class WorkUnit:
    """One independent simulation: fully described by plain data."""

    preset: ExperimentPreset
    ports: int
    sample: int
    algorithm: str
    method: str
    rate: float
    #: seed-derivation salt; matches the serial harness constants
    #: (0xF18 for Figure-8 sweeps, 0x7AB for the saturated table runs)
    seed_salt: int = 0xF18
    #: seed-replica index (``preset.replicas > 1`` expands each cell);
    #: replica 0 is the classic unit — same seed, same key, same ledger
    #: identity as before replication existed
    replica: int = 0

    def key(self) -> Tuple:
        base = (self.algorithm, self.method, self.ports, self.sample, self.rate)
        # replica 0 keeps the legacy 5-tuple so existing ledgers,
        # progress lines and aggregators are untouched
        return base + (self.replica,) if self.replica else base


@dataclass(frozen=True)
class UnitFailure:
    """One work unit that exhausted its retry budget.

    Collected by :func:`run_parallel` into the caller-supplied
    ``failures`` list; the aggregators attach them to their result
    objects and the CLI exits nonzero when any are present, so a
    partially-failed campaign can never masquerade as a complete one.
    """

    key: Tuple
    attempts: int
    error: str

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly form (campaign manifests)."""
        return {
            "key": list(self.key),
            "attempts": self.attempts,
            "error": self.error,
        }


def figure8_units(
    preset: ExperimentPreset,
    ports: int,
    methods: Sequence[str] = PAPER_METHODS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
) -> List[WorkUnit]:
    """The Figure-8 work list for one port configuration."""
    return [
        WorkUnit(preset, ports, sample, alg, method, rate, replica=rep)
        for sample in range(preset.samples)
        for method in methods
        for alg in algorithms
        for rate in preset.rates_for(ports)
        for rep in range(max(1, preset.replicas))
    ]


def tables_units(
    preset: ExperimentPreset,
    ports_list: Optional[Sequence[int]] = None,
    methods: Sequence[str] = PAPER_METHODS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    saturation_rate: float = 1.0,
) -> List[WorkUnit]:
    """The Tables-1-4 work list (one saturated run per combination)."""
    ports_list = tuple(ports_list if ports_list is not None else preset.ports)
    return [
        WorkUnit(
            preset, ports, sample, alg, method, saturation_rate, 0x7AB,
            replica=rep,
        )
        for ports in ports_list
        for sample in range(preset.samples)
        for method in methods
        for alg in algorithms
        for rep in range(max(1, preset.replicas))
    ]


def run_unit(unit: WorkUnit) -> Dict[str, object]:
    """Execute one work unit.

    Derives topology, tree and routing deterministically from the
    preset seed — through the process-bound artifact cache when one is
    set (see :func:`repro.experiments.artifacts.set_process_cache`), so
    sibling units sharing a routing construct it once per campaign, not
    once per unit — then simulates and returns a plain dict: the unit
    key, the headline numbers, and the per-channel utilization needed
    for the table metrics.  The dict never mentions the cache: results
    are bit-identical with it on or off.

    Relaxed engines (``"batch"``) are legal but must be pinned in the
    *preset*: a ``REPRO_ENGINE`` environment override is rejected here,
    because unit digests only cover preset fields — an env-selected
    relaxed engine would write statistical-contract results under a
    bit-exact ledger identity.  Relaxed results are tagged with their
    ``statistical_fingerprint`` and equivalence tier so downstream
    artefacts stay honest about how they were produced.
    """
    cache = process_cache()
    topology = make_topology(unit.preset, unit.ports, unit.sample, cache=cache)
    routings = build_routings(
        topology,
        unit.preset,
        unit.sample,
        methods=(unit.method,),
        algorithms=(unit.algorithm,),
        cache=cache,
    )
    routing, tree = routings[(unit.algorithm, unit.method)]
    if cache is not None:
        # durable per-unit flush: hit/miss tallies survive SIGKILL
        cache.flush_counters()
    seed = derive_seed(unit.preset.seed, unit.seed_salt, unit.ports, unit.sample)
    # replica 0 keeps the classic seed; higher replicas branch off it
    # through the counter-hash scheme shared with the fused sweep
    seed = replica_seed(seed, unit.replica)
    cfg = unit.preset.sim_config(seed).with_rate(unit.rate)
    engine = cfg.resolved_engine
    if engine in RELAXED_ENGINES and unit.preset.engine != engine:
        raise RuntimeError(
            f"relaxed engine {engine!r} selected via REPRO_ENGINE; pin it "
            "in the preset (--engine) so the ledger identity records the "
            "statistical contract"
        )
    stats = simulate(routing, cfg)
    from repro.metrics.utilization import utilization_report

    result = {
        "key": unit.key(),
        "accepted": stats.accepted_traffic,
        "latency": stats.average_latency,
        "report": utilization_report(stats.channel_utilization(), tree),
    }
    if engine in RELAXED_ENGINES:
        result["equivalence"] = "statistical"
        result["fingerprint"] = stats.statistical_fingerprint()
    return result


def run_unit_group(group: Sequence[WorkUnit]) -> List[Dict[str, object]]:
    """Execute sibling seed-replicas as one fused replicated sweep.

    *group* holds units that differ only in ``replica`` — same preset,
    ports, sample, algorithm, method, rate and seed salt — and whose
    preset pins a relaxed engine.  Construction (topology, tree,
    routing) happens once; the simulations run stacked through
    :func:`repro.simulator.replica_batch.run_replicated`, whose
    determinism contract (per-replica results identical to sequential
    runs, independent of which siblings share the stack) is what makes
    this a pure scheduling optimisation: every returned dict is
    byte-identical to what :func:`run_unit` would produce for that
    member, so ledger records, resume and aggregation never notice the
    fold.  Partial groups — a resumed ledger already holding some
    siblings — are therefore just as foldable as full ones.
    """
    if len(group) == 1:
        return [run_unit(group[0])]
    first = group[0]
    cache = process_cache()
    topology = make_topology(first.preset, first.ports, first.sample, cache=cache)
    routings = build_routings(
        topology,
        first.preset,
        first.sample,
        methods=(first.method,),
        algorithms=(first.algorithm,),
        cache=cache,
    )
    routing, tree = routings[(first.algorithm, first.method)]
    if cache is not None:
        cache.flush_counters()
    base = derive_seed(
        first.preset.seed, first.seed_salt, first.ports, first.sample
    )
    cfg = first.preset.sim_config(base).with_rate(first.rate)
    engine = cfg.resolved_engine
    if engine not in RELAXED_ENGINES or first.preset.engine != engine:
        # bit-exact engines gain nothing from stacking (and the fused
        # driver is batch-only); env-override mismatches get run_unit's
        # pinning diagnostics
        return [run_unit(u) for u in group]
    seeds = [replica_seed(base, u.replica) for u in group]
    from repro.metrics.utilization import utilization_report

    out: List[Dict[str, object]] = []
    for unit, stats in zip(group, run_replicated(routing, cfg, seeds=seeds)):
        out.append(
            {
                "key": unit.key(),
                "accepted": stats.accepted_traffic,
                "latency": stats.average_latency,
                "report": utilization_report(stats.channel_utilization(), tree),
                "equivalence": "statistical",
                "fingerprint": stats.statistical_fingerprint(),
            }
        )
    return out


def _arm_watchdog(unit_timeout: Optional[float]) -> Optional[Callable[[], None]]:
    """Arm a SIGALRM wall-time watchdog; returns the disarm callable.

    Only armed where it can work: a POSIX platform with ``SIGALRM`` and
    the process's main thread (signal handlers are a main-thread-only
    facility).  Pool workers execute units on their main thread, so the
    watchdog covers the pooled path everywhere it matters; elsewhere
    the collector-side hard deadline in :func:`run_parallel` is the
    backstop.
    """
    if unit_timeout is None or unit_timeout <= 0:
        return None
    if not hasattr(signal, "SIGALRM") or not hasattr(signal, "setitimer"):
        return None  # pragma: no cover - non-POSIX
    import threading

    if threading.current_thread() is not threading.main_thread():
        return None

    def _on_alarm(signum, frame):
        raise UnitTimeout(
            f"unit exceeded its {unit_timeout:g}s wall-time budget"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, unit_timeout)

    def disarm() -> None:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)

    return disarm


def execute_unit(
    unit: WorkUnit,
    attempt: int = 1,
    unit_timeout: Optional[float] = None,
) -> Dict[str, object]:
    """Pool/serial entry point: watchdog + test fault hook + :func:`run_unit`.

    *unit_timeout* bounds the unit's wall time: a hung simulation is
    interrupted by :class:`UnitTimeout` (SIGALRM, armed only on the
    executing process's main thread) and flows through the ordinary
    retry machinery instead of stalling collection.
    """
    disarm = _arm_watchdog(unit_timeout)
    try:
        spec = os.environ.get(TEST_FAULT_ENV)
        if spec:
            alg, mode, max_attempt = spec.rsplit(":", 2)
            if unit.algorithm == alg and attempt <= int(max_attempt):
                if mode == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                if mode == "hang":
                    import time

                    while True:  # interruptible only by the watchdog
                        time.sleep(0.02)
                raise RuntimeError(
                    f"injected test fault: {unit.key()} attempt={attempt}"
                )
        return run_unit(unit)
    finally:
        if disarm is not None:
            disarm()


def execute_unit_group(
    group: Sequence[WorkUnit],
    attempt: int = 1,
    unit_timeout: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Pool/serial entry point for a folded replica group.

    Mirrors :func:`execute_unit` — SIGALRM watchdog plus the test-only
    fault hook — around :func:`run_unit_group`.  The wall-time budget
    scales with the group size: the fused sweep does the work of
    ``len(group)`` units, so each member still gets *unit_timeout*
    seconds of budget on average.
    """
    budget = None if unit_timeout is None else unit_timeout * len(group)
    disarm = _arm_watchdog(budget)
    try:
        spec = os.environ.get(TEST_FAULT_ENV)
        if spec:
            alg, mode, max_attempt = spec.rsplit(":", 2)
            if group[0].algorithm == alg and attempt <= int(max_attempt):
                if mode == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                if mode == "hang":
                    import time

                    while True:  # interruptible only by the watchdog
                        time.sleep(0.02)
                raise RuntimeError(
                    f"injected test fault: {group[0].key()} attempt={attempt}"
                )
        return run_unit_group(group)
    finally:
        if disarm is not None:
            disarm()


def _execute_task(
    task_units: List[WorkUnit],
    attempt: int = 1,
    unit_timeout: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Pool entry point for one scheduling task (1..R sibling units).

    Normalises the return shape to one result dict per member so the
    collector treats folded and singleton tasks identically.
    """
    if len(task_units) == 1:
        return [execute_unit(task_units[0], attempt, unit_timeout)]
    return execute_unit_group(task_units, attempt, unit_timeout)


def _worker_init(
    cache_path: Optional[str], shared_cache_path: Optional[str] = None
) -> None:
    """Pool initializer: bind the shared artifact cache in each worker.

    The paths travel via ``initargs`` — not as :class:`WorkUnit`
    fields — because unit digests (ledger resume identity) must not
    depend on whether a cache is in use.  *shared_cache_path* adds the
    optional multi-host read-through tier (entries checksum-verified on
    import; see :class:`~repro.experiments.artifacts.ArtifactCache`).
    """
    set_process_cache(cache_path, shared=shared_cache_path)


def default_max_workers() -> int:
    """Worker count respecting cgroup/affinity CPU limits.

    ``os.cpu_count()`` reports the machine, not the process: in a CI
    container pinned to 2 of 64 cores it would oversubscribe 32x.
    ``os.sched_getaffinity(0)`` reports the usable set where the
    platform provides it (Linux); elsewhere fall back to ``cpu_count``.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def run_parallel(
    units: Iterable[WorkUnit],
    max_workers: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    *,
    ledger: Optional[ResultLedger] = None,
    retries: int = DEFAULT_RETRIES,
    clock: Optional[Clock] = None,
    failures: Optional[List[UnitFailure]] = None,
    cache_path: Optional[Union[str, Path]] = None,
    shared_cache_path: Optional[Union[str, Path]] = None,
    unit_timeout: Optional[float] = None,
) -> List[Dict[str, object]]:
    """Run *units*; results are returned in input order.

    ``max_workers`` defaults to the process's usable CPU count
    (:func:`default_max_workers`).  With one worker (or one pending
    unit) the pool is skipped entirely — same code path as the serial
    harness, same retry/ledger semantics, useful under debuggers.

    *ledger* streams every completed unit to disk and, when it was
    opened with ``resume=True``, skips units already recorded — the
    recorded results are merged back in input order, so aggregates are
    byte-identical to an uninterrupted run.  *retries* bounds extra
    attempts per unit; a unit that exhausts them is reported (and
    written to the ledger as ``failed``) without aborting the rest —
    the returned list omits it, and a :class:`UnitFailure` is appended
    to *failures* when the caller supplies that list, so failure never
    has to be inferred from a shorter result list.  *clock* injects
    the ETA timer (defaults to the sanctioned wall clock).

    *cache_path* points every worker (and the serial fallback) at one
    shared content-addressed artifact store; workers populate and read
    it race-free (atomic publication, checksum-verified reads).
    *shared_cache_path* adds the optional multi-host read-through tier
    behind the local store (entries are checksum-verified on import, so
    a corrupted peer cannot poison this host's results).

    *unit_timeout* is the per-unit wall-time watchdog: a unit that
    exceeds it raises :class:`UnitTimeout` inside its worker (SIGALRM)
    and is charged a failed attempt against *retries* — a hung unit can
    no longer stall collection forever.  Should the executing process
    be unable to interrupt itself (a hang inside an uninterruptible C
    call), the collector additionally hard-kills the pool's workers
    once a unit overstays ``2 x unit_timeout + 5s``; the break is then
    handled exactly like a died worker (pool rebuild, in-flight units
    charged one attempt).

    Replicated relaxed-engine presets are folded before scheduling:
    pending sibling replicas become one task running a fused
    :func:`~repro.simulator.replica_batch.run_replicated` sweep, with
    both timeout budgets scaled by the group size.  Per-member results,
    ledger records and failure reports are exactly those of unfolded
    execution (packing invariance), so resume across differently-folded
    runs is safe in both directions.
    """
    units = list(units)
    total = len(units)
    say = progress or (lambda msg: None)
    tick = resolve_clock(clock)
    retries = max(0, retries)
    if max_workers is None:
        max_workers = default_max_workers()

    digests = [unit_digest(u) for u in units] if ledger is not None else None
    results_by_idx: Dict[int, Dict[str, object]] = {}
    done_count = 0
    failed_count = 0
    pending_idx: List[int] = []

    # resume pass: merge completed units straight from the ledger
    for i, unit in enumerate(units):
        recorded = (
            ledger.completed.get(digests[i]) if ledger is not None else None
        )
        if recorded is not None:
            results_by_idx[i] = recorded
            done_count += 1
            attempt = ledger.attempts.get(digests[i], 1)
            say(
                f"[{done_count}/{total}] {unit.key()} "
                f"resumed attempt={attempt}"
            )
        else:
            pending_idx.append(i)

    # fold sibling seed-replicas of a relaxed-engine preset into one
    # scheduling task: the group runs as a single fused
    # :func:`repro.simulator.replica_batch.run_replicated` sweep while
    # every member keeps its own ledger record, result dict and retry
    # accounting.  Packing invariance makes the partial groups a
    # resumed ledger leaves behind just as foldable as full ones.
    tasks: List[List[int]] = []
    sibling_groups: Dict[Tuple, List[int]] = {}
    for i in pending_idx:
        u = units[i]
        if u.preset.replicas > 1 and u.preset.engine in RELAXED_ENGINES:
            gk = (
                u.algorithm,
                u.method,
                u.ports,
                u.sample,
                u.rate,
                u.seed_salt,
                u.preset,
            )
            members = sibling_groups.get(gk)
            if members is not None:
                members.append(i)
                continue
            members = sibling_groups[gk] = [i]
            tasks.append(members)  # list identity: grows with the group
        else:
            tasks.append([i])
    for task in tasks:
        task.sort(key=lambda i: units[i].replica)

    def label(task: List[int]) -> str:
        if len(task) == 1:
            return f"{units[task[0]].key()}"
        return f"{units[task[0]].key()} (+{len(task) - 1} replicas)"

    t0 = tick()
    fresh_done = 0

    def finish_ok(idx: int, attempt: int, res: Dict[str, object]) -> None:
        nonlocal done_count, fresh_done
        if ledger is not None:
            ledger.append_ok(digests[idx], units[idx].key(), attempt, res)
        results_by_idx[idx] = res
        done_count += 1
        fresh_done += 1
        remaining = total - done_count - failed_count
        eta = ""
        elapsed = tick() - t0
        if remaining > 0 and fresh_done > 0 and elapsed > 0:
            eta = f" eta=~{elapsed / fresh_done * remaining:.0f}s"
        say(
            f"[{done_count}/{total}] {units[idx].key()} "
            f"ok attempt={attempt}{eta}"
        )

    def finish_failed(idx: int, attempt: int, exc: BaseException) -> None:
        nonlocal failed_count
        failed_count += 1
        if ledger is not None:
            ledger.append_failed(
                digests[idx], units[idx].key(), attempt, repr(exc)
            )
        if failures is not None:
            failures.append(UnitFailure(units[idx].key(), attempt, repr(exc)))
        say(
            f"[{done_count}/{total}] {units[idx].key()} "
            f"FAILED attempt={attempt}: {exc!r}"
        )

    cache_arg = None if cache_path is None else str(cache_path)
    shared_arg = None if shared_cache_path is None else str(shared_cache_path)

    if max_workers <= 1 or len(tasks) <= 1:
        if cache_arg is not None:
            set_process_cache(cache_arg, shared=shared_arg)
        for task in tasks:
            attempt = 1
            while True:
                try:
                    res_list = _execute_task(
                        [units[i] for i in task], attempt, unit_timeout
                    )
                except Exception as exc:
                    if attempt > retries:
                        for i in task:
                            finish_failed(i, attempt, exc)
                        break
                    say(
                        f"[retry] {label(task)} attempt={attempt} "
                        f"raised {exc!r}; retrying"
                    )
                    attempt += 1
                    continue
                for i, res in zip(task, res_list):
                    finish_ok(i, attempt, res)
                break
        return [results_by_idx[i] for i in sorted(results_by_idx)]

    pending: Deque[Tuple[List[int], int]] = deque((t, 1) for t in tasks)
    in_flight: Dict[Future, Tuple[List[int], int]] = {}
    deadlines: Dict[Future, float] = {}
    pool: Optional[ProcessPoolExecutor] = None

    def hard_deadline(task: List[int]) -> Optional[float]:
        # collector-side backstop for hangs the in-worker SIGALRM
        # cannot interrupt: give the watchdog one full (group-scaled)
        # budget to fire, then slack
        if unit_timeout is None:
            return None
        return tick() + 2 * unit_timeout * len(task) + 5.0

    def requeue(task: List[int], attempt: int, exc: BaseException) -> None:
        if attempt > retries:
            for i in task:
                finish_failed(i, attempt, exc)
        else:
            say(
                f"[retry] {label(task)} attempt={attempt} "
                f"raised {exc!r}; retrying"
            )
            pending.append((task, attempt + 1))

    def collect(fut: Future, task: List[int], attempt: int) -> bool:
        """Fold one settled future in; True when the pool broke."""
        try:
            res_list = fut.result()
        except BrokenProcessPool as exc:
            requeue(task, attempt, exc)
            return True
        except Exception as exc:
            requeue(task, attempt, exc)
            return False
        for i, res in zip(task, res_list):
            finish_ok(i, attempt, res)
        return False

    try:
        while pending or in_flight:
            if pool is None:
                pool = ProcessPoolExecutor(
                    max_workers=max_workers,
                    initializer=_worker_init,
                    initargs=(cache_arg, shared_arg),
                )
            broken = False
            # throttle submission to the pool width: a queued-but-not-
            # started future would be charged an attempt when the pool
            # breaks, so never expose more units than workers exist
            while pending and not broken and len(in_flight) < max_workers:
                task, attempt = pending.popleft()
                try:
                    fut = pool.submit(
                        _execute_task,
                        [units[i] for i in task],
                        attempt,
                        unit_timeout,
                    )
                except (BrokenProcessPool, RuntimeError):
                    pending.appendleft((task, attempt))
                    broken = True
                else:
                    in_flight[fut] = (task, attempt)
                    deadline = hard_deadline(task)
                    if deadline is not None:
                        deadlines[fut] = deadline
            if in_flight and not broken:
                wait_budget = None
                if unit_timeout is not None:
                    wait_budget = max(
                        0.0,
                        min(deadlines[f] for f in in_flight) - tick(),
                    )
                done, _ = wait(
                    set(in_flight),
                    timeout=wait_budget,
                    return_when=FIRST_COMPLETED,
                )
                for fut in done:
                    task, attempt = in_flight.pop(fut)
                    deadlines.pop(fut, None)
                    broken |= collect(fut, task, attempt)
                if not done and unit_timeout is not None:
                    # a worker overstayed the hard deadline without the
                    # in-worker watchdog firing (uninterruptible hang):
                    # kill the pool's processes — the break is handled
                    # like any died worker, charging in-flight tasks an
                    # attempt each
                    overdue = [
                        label(in_flight[f][0])
                        for f in in_flight
                        if deadlines.get(f, float("inf")) <= tick()
                    ]
                    if overdue:
                        say(
                            "[watchdog] task(s) overstayed their hard "
                            f"deadline: {overdue}; killing pool workers"
                        )
                        for proc in list(
                            getattr(pool, "_processes", {}).values()
                        ):
                            proc.kill()
            if broken:
                # every surviving future of a broken pool is doomed:
                # drain them all, then rebuild from scratch
                say(
                    "[pool] worker process died; rebuilding pool "
                    f"({sum(len(t) for t, _ in in_flight.values())} "
                    "unit(s) rescheduled)"
                )
                if in_flight:
                    wait(set(in_flight))
                    for fut, (task, attempt) in list(in_flight.items()):
                        collect(fut, task, attempt)
                    in_flight.clear()
                    deadlines.clear()
                pool.shutdown(wait=False)
                pool = None
    finally:
        if pool is not None:
            # join the workers: they inherit open fds (ledger lock
            # included) on fork, so the caller may close/reopen the
            # ledger the moment this returns
            pool.shutdown(wait=True)

    return [results_by_idx[i] for i in sorted(results_by_idx)]
