"""Campaign/CLI wiring for turn-optimality audits.

:func:`run_topology_audits` drives :func:`repro.statics.audit.audit_topology`
over named zoo topologies with the same durability machinery as every
other experiment stage: per-audit results flow through the
content-addressed artifact cache (keyed by the input closure: topology
digest + prohibited-turn set + auditor version) and the append-only
result ledger, so audits are cached, resumable and distributable like
any other work unit.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.direction_graph import DOWN_UP_PROHIBITED_TURNS
from repro.statics.audit import TurnAuditReport, audit_topology, turn_name
from repro.topology.zoo import zoo_names, zoo_topology
from repro.util.fsio import atomic_write_text

#: bump when the audit semantics change — old cache/ledger entries are
#: then keyed away instead of silently served
AUDITOR_VERSION = "audit-v1"

#: zoo instances audited by default (CLI with no ``--zoo``, campaign stage)
DEFAULT_AUDIT_ZOO = tuple(zoo_names())


def audit_unit_key(name: str, topology_digest: str) -> Dict[str, object]:
    """The input-closure cache/ledger key of one audit unit."""
    return {
        "zoo": name,
        "topology": topology_digest,
        "prohibited": sorted(
            turn_name(t) for t in DOWN_UP_PROHIBITED_TURNS
        ),
        "builder": AUDITOR_VERSION,
    }


def run_topology_audits(
    names: Sequence[str],
    out_dir: Optional[Union[str, Path]] = None,
    artifact_cache: Optional[Union[str, Path]] = None,
    ledger_path: Optional[Union[str, Path]] = None,
    resume: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> List[TurnAuditReport]:
    """Audit each named zoo topology; return the reports in input order.

    ``artifact_cache`` (a cache root directory) serves repeated audits
    content-addressed; ``ledger_path`` makes the run resumable (records
    keyed by the same input-closure digest — a completed audit is
    decoded from the ledger without touching the builder).  ``out_dir``
    gets ``audit.csv`` + ``audit.txt`` artefacts.
    """
    from repro.analysis.turn_slack import render_turn_slack_table, turn_slack_csv
    from repro.experiments.artifacts import (
        ArtifactCache,
        artifact_digest,
        topology_digest,
    )
    from repro.experiments.ledger import ResultLedger

    say = progress or (lambda _msg: None)
    cache = ArtifactCache(artifact_cache) if artifact_cache is not None else None
    ledger = (
        ResultLedger(ledger_path, resume=resume)
        if ledger_path is not None
        else None
    )
    reports: List[TurnAuditReport] = []
    try:
        for name in names:
            topology = zoo_topology(name)
            key = audit_unit_key(name, topology_digest(topology))
            digest = artifact_digest("audit", key)
            done = ledger.completed.get(digest) if ledger is not None else None
            if done is not None:
                report = TurnAuditReport.from_payload(done)
                say(f"audit {name}: served from ledger")
            else:
                if cache is not None:
                    report = cache.get_or_build(
                        "audit",
                        key,
                        lambda: audit_topology(topology, name=name),
                        lambda r: r.to_json(),  # type: ignore[attr-defined]
                        TurnAuditReport.from_json,
                    )
                else:
                    report = audit_topology(topology, name=name)
                if ledger is not None:
                    ledger.append_ok(
                        digest, key=(name,), attempt=1, result=report.payload()
                    )
                say(f"audit {name}: {report.summary()}")
            reports.append(report)
    finally:
        if ledger is not None:
            ledger.close()
        if cache is not None:
            cache.flush_counters()

    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        atomic_write_text(out / "audit.csv", turn_slack_csv(reports))
        atomic_write_text(
            out / "audit.txt", render_turn_slack_table(reports) + "\n"
        )
    return reports
