"""Resilience under traffic: live faults + online reconfiguration.

The static resilience study (:mod:`repro.analysis.resilience`) removes
links *before* routing is built.  This experiment injects the failures
*during* a simulation and lets each algorithm recover online: same
topology, same coordinated tree discipline, same seeded
:class:`~repro.faults.FaultSchedule` for every algorithm — the paper's
paired-sample methodology extended to the fault axis.

For each algorithm the run reports delivery (delivered fraction under
source-side retries), disruption (fault drops, retries, losses) and the
reconfiguration behaviour (trigger-to-swap latency; every swapped table
re-verified against Theorem 1).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.coordinated_tree import TreeMethod, build_coordinated_tree
from repro.experiments.harness import ALGORITHMS
from repro.faults import (
    FaultRuntime,
    FaultSchedule,
    ReconfigurationController,
    RetryPolicy,
)
from repro.metrics.degradation import degradation_report
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import WormholeSimulator
from repro.simulator.stats import SimulationStats
from repro.topology.graph import Topology
from repro.util.rng import derive_seed

#: Algorithms compared by default: the paper's pair plus classic up*/down*.
LIVE_FAULT_ALGORITHMS: Tuple[str, ...] = ("down-up", "l-turn", "up-down")


@dataclass(frozen=True)
class LiveFaultResult:
    """One algorithm's run under a shared fault schedule."""

    algorithm: str
    stats: SimulationStats

    def report(self) -> Dict[str, float]:
        """Summary row: delivery, disruption, reconfiguration numbers."""
        row: Dict[str, float] = {"algorithm": self.algorithm}
        row.update(degradation_report(self.stats))
        row["accepted_traffic"] = self.stats.accepted_traffic
        row["avg_latency"] = self.stats.average_latency
        return row


def _make_builder(
    algorithm: str, method: TreeMethod, seed: int
) -> Callable[[Topology], object]:
    """A survivor-topology routing builder for the controller.

    Rebuilds the coordinated tree *on the degraded graph* — online
    reconfiguration recomputes its spanning tree, it does not try to
    salvage the broken one — then runs the named algorithm on it.
    """
    build = ALGORITHMS[algorithm]

    def builder(sub: Topology):
        tree = build_coordinated_tree(sub, method=method, rng=seed)
        return build(sub, tree=tree, rng=seed)

    return builder


def _cached_initial_build(
    cache, topology: Topology, algorithm: str, method: TreeMethod, seed: int
):
    """The pre-fault (tree, routing) build through the artifact cache.

    Keyed by topology *content* digest, so any caller handing the same
    graph (regardless of how it was generated) shares the entry.  Only
    the initial build is cached: reconfiguration rebuilds run on
    degraded survivor graphs mid-simulation, each typically seen once.
    """
    from repro.experiments.artifacts import tree_key_digest

    tree = cache.tree(
        topology,
        method.name,
        seed,
        lambda: build_coordinated_tree(topology, method=method, rng=seed),
    )
    build = ALGORITHMS[algorithm]
    return cache.routing(
        topology,
        tree_key_digest(topology, method.name, seed),
        algorithm,
        seed,
        lambda: build(topology, tree=tree, rng=seed),
    )


def run_live_fault_campaign(
    topology: Topology,
    schedule: FaultSchedule,
    config: SimulationConfig,
    algorithms: Sequence[str] = LIVE_FAULT_ALGORITHMS,
    method: TreeMethod = TreeMethod.M2,
    drain_clocks: int = 64,
    retry: Optional[RetryPolicy] = RetryPolicy(),
    policy: str = "drop",
    seed: int = 0,
    timeline_interval: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    artifact_cache: Optional[Path] = None,
) -> List[LiveFaultResult]:
    """Run every algorithm through the same live-fault scenario.

    All algorithms see the identical *schedule*, *config* (including
    the traffic seed) and retry policy; each gets its own
    :class:`FaultRuntime` (the runtimes are stateful) and a
    :class:`ReconfigurationController` wrapping its own builder, so
    each recovers with its own algorithm — DOWN/UP reconfigures to
    DOWN/UP, up*/down* to up*/down*, and so on.

    Raises whatever the engine raises (``DeadlockDetected``,
    ``LivelockSuspected``) — an algorithm that cannot survive the
    scenario fails loudly rather than producing a quiet bad row.

    *artifact_cache* serves the initial (pre-fault) tree/routing builds
    from the content-addressed construction cache; recovery rebuilds on
    degraded graphs always run live.
    """
    if schedule.topology != topology:
        raise ValueError("fault schedule built for a different topology")
    say = progress or (lambda msg: None)
    cache = None
    if artifact_cache is not None:
        from repro.experiments.artifacts import ArtifactCache

        cache = ArtifactCache(artifact_cache)
    results: List[LiveFaultResult] = []
    for alg in algorithms:
        alg_seed = derive_seed(seed, zlib.crc32(alg.encode()))
        builder = _make_builder(alg, method, alg_seed)
        if cache is None:
            routing = builder(topology)
        else:
            routing = _cached_initial_build(
                cache, topology, alg, method, alg_seed
            )
            cache.flush_counters()
        controller = ReconfigurationController(builder, drain_clocks=drain_clocks)
        sim = WormholeSimulator(routing, config)
        sim.stats.timeline_interval = timeline_interval
        sim.attach_faults(
            FaultRuntime(schedule, controller, retry=retry, policy=policy)
        )
        stats = sim.run()
        bad = [r for r in stats.reconfigurations if not r.verified]
        if bad:  # cannot happen via ReconfigurationController, but loud
            raise AssertionError(f"{alg}: unverified table swap {bad}")
        say(
            f"[live-faults] {alg}: delivered_fraction="
            f"{stats.delivered_fraction:.4f}, drops={stats.fault_drops}, "
            f"retries={stats.retries}, swaps={len(stats.reconfigurations)}"
        )
        results.append(LiveFaultResult(algorithm=alg, stats=stats))
    return results


def render_live_fault_table(results: Sequence[LiveFaultResult]) -> str:
    """ASCII comparison table of a live-fault campaign."""
    header = (
        f"{'algorithm':<12} {'delivered':>9} {'drops':>6} {'retries':>7} "
        f"{'lost':>5} {'swaps':>5} {'swap lat':>8} {'accepted':>9} "
        f"{'latency':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        rep = r.report()
        mean_lat = rep["mean_reconfiguration_latency"]
        lines.append(
            f"{r.algorithm:<12} {rep['delivered_fraction']:>9.4f} "
            f"{int(rep['fault_drops']):>6} {int(rep['retries']):>7} "
            f"{int(rep['lost_packets']):>5} {int(rep['reconfigurations']):>5} "
            f"{mean_lat:>8.1f} {rep['accepted_traffic']:>9.4f} "
            f"{rep['avg_latency']:>8.1f}"
        )
    return "\n".join(lines)
