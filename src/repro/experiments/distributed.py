"""Coordinator-less multi-host campaign execution.

Several worker processes — typically one per host — point at the same
*campaign directory* on a shared filesystem and cooperatively drain one
stage's work-unit list.  There is no coordinator process and no network
protocol: the directory itself is the coordination medium, and every
primitive is a crash-safe filesystem operation (``O_CREAT|O_EXCL``
claim files, ``os.replace`` renewals, append-only fsync'd ledger
shards).

Correctness never depends on the locking.  Work units are
deterministic — the same unit produces byte-identical records on every
host — and the final merge deduplicates by unit digest, so the worst a
lost race can cause is one redundant execution.  Leases are therefore
an *efficiency* mechanism (avoid duplicate work) layered under a
correctness mechanism (content-addressed dedup), which is what makes
the protocol safe to run over filesystems with weak cross-host
semantics.

The lease protocol, in full:

* **Claim** — a worker claims unit ``d`` by creating
  ``leases/<d>.json`` with ``O_CREAT|O_EXCL`` (atomic on POSIX: exactly
  one creator wins).  The file holds the worker id, a monotonic
  heartbeat ``counter`` starting at 0, and the ``prior`` list of
  workers that previously died holding this unit.
* **Renew** — while executing, a heartbeat thread republishes the lease
  every ``renew_interval`` seconds with an incremented counter
  (write-to-temp + ``os.replace``; readers never see a torn lease).
* **Staleness** — a lease is presumed stale only after its *identity*
  (worker, counter — or the content hash of an unparsable lease) has
  been observed unchanged across ``stale_scans`` consecutive local
  scans.  Staleness is decided purely by counting one's own
  observations of the other side's monotonic counter: **no wall-clock
  timestamp is ever compared**, so clock skew between hosts cannot
  cause a double-execution decision.  (A worker's own lease left behind
  by a dead previous incarnation is reclaimed immediately — the shard
  ledger's ``flock`` guarantees at most one live process per worker
  id.)
* **Takeover** — a survivor re-reads the stale lease, verifies the
  identity is *still* unchanged, unlinks it and re-claims with
  ``O_EXCL``, appending the dead worker to ``prior``.  Takeover is
  bounded by ``takeover_retries``; losing every race simply means some
  other survivor owns the unit now.  The one residual race — the old
  holder was alive after all and renews over the new claim — yields two
  workers executing the same unit, which the merge deduplicates.
* **Poison** — a claim whose ``prior`` already names ``poison_after``
  *distinct* dead workers does not execute: the unit is quarantined by
  publishing ``poison/<d>.json`` and surfaces as a
  :class:`~repro.experiments.parallel.UnitFailure`, so a unit that
  reliably kills its host cannot take the whole fleet down.

Results stream to one append-only ledger shard per worker
(``ledger_<worker>.jsonl``), reusing the
:class:`~repro.experiments.ledger.ResultLedger` format verbatim — each
shard has exactly one writer, so the ledger's single-writer ``flock``
and WAL-style torn-tail recovery stay valid.  :func:`merge_stage`
folds all shards deterministically (sorted shard order, first ``ok``
record per digest wins, results assembled in work-list order), so the
merged aggregates are byte-identical to a single-host run no matter
how many workers participated, who crashed, or how units interleaved.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.artifacts import set_process_cache
from repro.experiments.ledger import (
    ResultLedger,
    _decode_result,
    read_records,
    unit_digest,
)
from repro.experiments.parallel import (
    DEFAULT_RETRIES,
    UnitFailure,
    WorkUnit,
    execute_unit,
)
from repro.util.fsio import atomic_write_text

#: subdirectory names inside one stage's coordination directory
LEASE_DIR = "leases"
POISON_DIR = "poison"

#: ledger shard prefix; one shard per worker, single-writer each
SHARD_PREFIX = "ledger_"


def default_worker_id() -> str:
    """A worker id unique per live process: ``<host>-<pid>``.

    Uniqueness is what matters — each id owns one ledger shard, and the
    shard's ``flock`` enforces one live process per id.  Operators may
    pass a stable ``--worker`` name instead (e.g. the hostname) so a
    restarted worker resumes its own shard and reclaims its own stale
    leases immediately.
    """
    return _sanitize(f"{socket.gethostname()}-{os.getpid()}")


def _sanitize(name: str) -> str:
    """Filesystem-safe worker id (it becomes part of the shard name)."""
    return "".join(c if (c.isalnum() or c in "-_.") else "-" for c in name)


def canonical_digest(obj: object) -> str:
    """SHA-256 over the canonical JSON of *obj*.

    Used to assert bit-identity of merged aggregates between
    distributed and single-host runs (tests, the CI smoke job).
    """
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class WorkerConfig:
    """One worker's view of a shared campaign directory.

    *campaign_dir* is the shared coordination root (each stage gets a
    ``stage_<name>`` subdirectory under it).  *worker* must be unique
    among live workers — see :func:`default_worker_id`.

    Timing knobs trade takeover latency against redundant work:
    *poll_interval* is the idle re-scan period; a lease whose identity
    is unchanged across *stale_scans* consecutive scans is presumed
    dead (so takeover latency is about ``poll_interval * stale_scans``
    — crank it up on filesystems with slow metadata propagation);
    *renew_interval* (default ``poll_interval / 2``) must comfortably
    undercut that product or live workers get robbed.  *poison_after*
    quarantines a unit once that many *distinct* workers died holding
    it; *takeover_retries* bounds claim attempts against other
    survivors racing for the same stale lease.

    *shared_cache* optionally names a shared read-through artifact
    tier: workers publish constructions to it and import each other's
    entries checksum-verified (see
    :class:`~repro.experiments.artifacts.ArtifactCache`).
    """

    campaign_dir: Path
    worker: str
    poll_interval: float = 0.5
    stale_scans: int = 4
    poison_after: int = 2
    takeover_retries: int = 3
    renew_interval: Optional[float] = None
    shared_cache: Optional[Path] = None

    def stage_dir(self, stage: str) -> Path:
        """The coordination directory of one campaign stage."""
        return Path(self.campaign_dir) / f"stage_{stage.replace('-', '_')}"

    @property
    def heartbeat_interval(self) -> float:
        if self.renew_interval is not None:
            return self.renew_interval
        return max(0.05, self.poll_interval / 2.0)


# -- lease file primitives -------------------------------------------------


def _lease_payload(
    worker: str, counter: int, prior: Sequence[str], key: Tuple
) -> str:
    return json.dumps(
        {
            "worker": worker,
            "counter": counter,
            "prior": list(prior),
            "key": list(key),
        },
        sort_keys=True,
    )


def try_claim(
    path: Path, worker: str, prior: Sequence[str], key: Tuple
) -> bool:
    """Atomically claim a lease file; False when someone else holds it.

    ``O_CREAT | O_EXCL`` guarantees exactly one winner even across
    hosts — this is the only primitive the claim step relies on.
    """
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    try:
        os.write(fd, _lease_payload(worker, 0, prior, key).encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)
    return True


def read_lease(path: Path) -> Tuple[str, Optional[Tuple], Optional[Dict]]:
    """``(state, identity, info)`` of one lease file.

    ``state`` is ``"missing"``, ``"lease"`` or ``"garbage"``.
    ``identity`` is what staleness observation compares: ``("L",
    worker, counter)`` for a valid lease, ``("G", <sha256 of bytes>)``
    for garbage — torn or foreign content gets a *stable* identity too,
    so an abandoned half-written claim is reclaimed by the same
    observation count as a dead worker's lease, while a file whose
    bytes are still changing is left alone.
    """
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return "missing", None, None
    except OSError:
        return "garbage", ("G", "unreadable"), None
    try:
        info = json.loads(raw.decode("utf-8"))
        identity = ("L", str(info["worker"]), int(info["counter"]))
    except (UnicodeDecodeError, ValueError, KeyError, TypeError):
        return "garbage", ("G", hashlib.sha256(raw).hexdigest()), None
    if not isinstance(info, dict):
        return "garbage", ("G", hashlib.sha256(raw).hexdigest()), None
    return "lease", identity, info


class _Heartbeat(threading.Thread):
    """Renews one held lease with a monotonically increasing counter.

    Runs beside the executing unit; stops (and the counter freezes)
    the instant the worker dies, which is exactly the signal the
    staleness observation on other hosts keys on.  Renewal errors are
    swallowed: losing a heartbeat can only cost a redundant execution,
    never correctness.
    """

    def __init__(
        self,
        path: Path,
        worker: str,
        prior: Sequence[str],
        key: Tuple,
        interval: float,
    ) -> None:
        super().__init__(daemon=True, name="lease-heartbeat")
        self._path = path
        self._worker = worker
        self._prior = list(prior)
        self._key = key
        self._interval = interval
        self._halt = threading.Event()
        self._counter = 0

    def run(self) -> None:  # pragma: no cover - timing-dependent
        while not self._halt.wait(self._interval):
            self._counter += 1
            try:
                atomic_write_text(
                    self._path,
                    _lease_payload(
                        self._worker, self._counter, self._prior, self._key
                    ),
                )
            except OSError:
                pass

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=10.0)


def _take_over(
    path: Path,
    expected_identity: Tuple,
    worker: str,
    key: Tuple,
    retries: int,
) -> Optional[List[str]]:
    """Reclaim a presumed-stale lease; the new ``prior`` list on success.

    Re-verifies the identity immediately before unlinking: any change
    means the holder is alive after all, and the takeover aborts.  The
    unlink→claim gap can be lost to another survivor; bounded retries
    re-inspect and either find the unit owned (abort) or win.
    """
    for _ in range(max(1, retries)):
        state, identity, info = read_lease(path)
        if state == "missing" or identity != expected_identity:
            return None  # holder finished, renewed, or a survivor won
        prior: List[str] = []
        if state == "lease" and info is not None:
            prior = [str(w) for w in info.get("prior", [])]
            prior.append(str(info.get("worker")))
        try:
            path.unlink()
        except FileNotFoundError:
            return None
        if try_claim(path, worker, prior, key):
            return prior
    return None


def _write_poison(
    poison_dir: Path, digest: str, key: Tuple, workers: Sequence[str]
) -> None:
    atomic_write_text(
        poison_dir / f"{digest}.json",
        json.dumps(
            {
                "digest": digest,
                "key": list(key),
                "workers": sorted(set(str(w) for w in workers)),
            },
            sort_keys=True,
        )
        + "\n",
    )


def read_poison(stage_dir: Path) -> Dict[str, Dict[str, object]]:
    """Every quarantine marker of a stage, keyed by unit digest."""
    out: Dict[str, Dict[str, object]] = {}
    for path in sorted(Path(stage_dir, POISON_DIR).glob("*.json")):
        try:
            info = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue  # markers are published atomically; never block on one
        if isinstance(info, dict):
            out[path.stem] = info
    return out


# -- shard reading ---------------------------------------------------------


class ShardScanner:
    """Incremental reader of every worker's ledger shard in a stage.

    Each :meth:`scan` reads only bytes appended since the last one,
    parsing complete verified records (the ledger's own checksummed
    line format).  A line that fails verification is *not* advanced
    past: a torn in-flight append completes by the next scan, while a
    genuinely corrupt line freezes that shard's read frontier — exactly
    the WAL discipline the shard's owner applies to itself on resume
    (records past a torn region are suspect).

    ``completed``/``failed`` gate the worker loop's control flow only;
    the authoritative deterministic fold is :func:`merge_shards`.
    """

    def __init__(self, stage_dir: Path) -> None:
        self.stage_dir = Path(stage_dir)
        self.completed: Dict[str, Dict[str, object]] = {}
        self.failed: Dict[str, Tuple[int, str]] = {}
        self._offsets: Dict[str, int] = {}

    def scan(self) -> None:
        for path in sorted(self.stage_dir.glob(f"{SHARD_PREFIX}*.jsonl")):
            self._scan_file(path)

    def _scan_file(self, path: Path) -> None:
        offset = self._offsets.get(path.name, 0)
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                chunk = fh.read()
        except OSError:
            return
        end = chunk.rfind(b"\n")
        if end < 0:
            return  # nothing newline-terminated yet
        data = chunk[: end + 1]
        pos = 0
        while pos < len(data):
            nl = data.find(b"\n", pos)
            line = data[pos:nl]
            if line:
                record = ResultLedger._parse(line)
                if record is None:
                    break  # torn or corrupt: re-examine from here next scan
                self._absorb(record)
            pos = nl + 1
        self._offsets[path.name] = offset + pos

    def _absorb(self, record: Dict[str, object]) -> None:
        digest = str(record["digest"])
        if record["status"] == "ok":
            if digest not in self.completed:
                self.completed[digest] = _decode_result(record["result"])
            self.failed.pop(digest, None)
        elif digest not in self.completed:
            self.failed[digest] = (
                int(record.get("attempt", 1)),
                str(record.get("error", "")),
            )


def merge_shards(
    stage_dir: Path,
) -> Tuple[Dict[str, Dict[str, object]], Dict[str, Tuple[int, str]]]:
    """Deterministic full fold of every shard: ``(ok, failed)`` by digest.

    Shards are read in sorted filename order and the first ``ok``
    record per digest wins; an ``ok`` anywhere beats a ``failed``
    everywhere.  The outcome depends only on the set of shard files and
    their contents — never on scan timing — which is what makes the
    merged aggregates byte-identical across re-merges and hosts.
    """
    ok: Dict[str, Dict[str, object]] = {}
    bad: Dict[str, Tuple[int, str]] = {}
    for path in sorted(Path(stage_dir).glob(f"{SHARD_PREFIX}*.jsonl")):
        for record in read_records(path):
            digest = str(record["digest"])
            if record["status"] == "ok":
                ok.setdefault(digest, _decode_result(record["result"]))
            else:
                bad.setdefault(
                    digest,
                    (
                        int(record.get("attempt", 1)),
                        str(record.get("error", "")),
                    ),
                )
    for digest in ok:
        bad.pop(digest, None)
    return ok, bad


def merge_stage(
    units: Sequence[WorkUnit], stage_dir: Path
) -> Tuple[List[Dict[str, object]], List[UnitFailure]]:
    """Fold a stage directory into ``(results, failures)`` in work-list order.

    ``results`` holds one record per completed unit, ordered like
    *units* — exactly the contract of
    :func:`~repro.experiments.parallel.run_parallel`, so the existing
    aggregators produce byte-identical artefacts from it.  Every
    non-completed unit appears in ``failures`` (quarantined units with
    a ``poisoned:`` error naming the dead workers); nothing is ever
    silently dropped.
    """
    ok, bad = merge_shards(stage_dir)
    poisoned = read_poison(stage_dir)
    results: List[Dict[str, object]] = []
    failures: List[UnitFailure] = []
    for unit in units:
        digest = unit_digest(unit)
        if digest in ok:
            results.append(ok[digest])
        elif digest in poisoned:
            workers = [str(w) for w in poisoned[digest].get("workers", [])]
            failures.append(
                UnitFailure(
                    unit.key(),
                    len(workers),
                    "poisoned: unit killed worker(s) "
                    f"{sorted(set(workers))}; quarantined",
                )
            )
        elif digest in bad:
            attempt, error = bad[digest]
            failures.append(UnitFailure(unit.key(), attempt, error))
        else:
            failures.append(
                UnitFailure(unit.key(), 0, "never executed (no shard record)")
            )
    return results, failures


# -- the worker loop -------------------------------------------------------


def run_distributed(
    units: Sequence[WorkUnit],
    stage_dir: Path,
    config: WorkerConfig,
    *,
    progress: Optional[Callable[[str], None]] = None,
    retries: Optional[int] = None,
    unit_timeout: Optional[float] = None,
    cache_path: Optional[Path] = None,
    failures: Optional[List[UnitFailure]] = None,
) -> List[Dict[str, object]]:
    """Participate in draining *units* as one worker of a shared stage.

    Returns when every unit is terminal — completed by someone,
    quarantined as poison, or failed here with nobody else working on
    it — so the *last* worker to return has observed the complete
    stage.  The returned list is the deterministic :func:`merge_stage`
    fold (results in work-list order, byte-identical to a single-host
    run); *failures* collects every non-completed unit.

    Units execute serially in this process (scale by launching more
    workers); each claimed unit gets bounded *retries* and the
    per-unit *unit_timeout* watchdog of
    :func:`~repro.experiments.parallel.execute_unit`, so a hung
    simulation is charged a failed attempt instead of renewing its
    lease forever.
    """
    units = list(units)
    total = len(units)
    say = progress or (lambda msg: None)
    budget = DEFAULT_RETRIES if retries is None else max(0, retries)
    stage_dir = Path(stage_dir)
    lease_root = stage_dir / LEASE_DIR
    poison_root = stage_dir / POISON_DIR
    lease_root.mkdir(parents=True, exist_ok=True)
    poison_root.mkdir(parents=True, exist_ok=True)

    worker = _sanitize(config.worker)
    tag = f"[dist/{worker}]"
    set_process_cache(
        None if cache_path is None else str(cache_path),
        shared=None if config.shared_cache is None else str(config.shared_cache),
    )

    digests = [unit_digest(u) for u in units]
    wanted = set(digests)
    scanner = ShardScanner(stage_dir)
    # lease identity -> consecutive unchanged observations, per digest
    observations: Dict[str, List] = {}
    failed_by_me: set = set()

    # the shard's flock is the one-live-process-per-worker-id guarantee
    # the own-lease instant-reclaim rule depends on
    ledger = ResultLedger(stage_dir / f"{SHARD_PREFIX}{worker}.jsonl")
    try:
        while True:
            scanner.scan()
            poisoned = set(read_poison(stage_dir)) & wanted
            done = (set(scanner.completed) & wanted) | poisoned
            open_idx: List[int] = []
            waiting_on_peer = False
            for i, digest in enumerate(digests):
                if digest in done:
                    continue
                if digest in failed_by_me:
                    # terminal unless someone else is actively retrying
                    if (lease_root / f"{digest}.json").exists():
                        waiting_on_peer = True
                    continue
                open_idx.append(i)
            if not open_idx and not waiting_on_peer:
                break

            executed = False
            for i in open_idx:
                digest = digests[i]
                lease_path = lease_root / f"{digest}.json"
                key = units[i].key()
                state, identity, info = read_lease(lease_path)
                prior: Optional[List[str]] = None
                if state == "missing":
                    observations.pop(digest, None)
                    if try_claim(lease_path, worker, [], key):
                        prior = []
                else:
                    seen = observations.get(digest)
                    if seen is not None and seen[0] == identity:
                        seen[1] += 1
                    else:
                        observations[digest] = [identity, 1]
                    own = (
                        state == "lease"
                        and info is not None
                        and str(info.get("worker")) == worker
                    )
                    if own or observations[digest][1] >= config.stale_scans:
                        prior = _take_over(
                            lease_path,
                            identity,
                            worker,
                            key,
                            config.takeover_retries,
                        )
                        if prior is not None and state == "garbage":
                            say(
                                f"{tag} reclaimed unreadable lease for "
                                f"{key}"
                            )
                if prior is None:
                    continue
                observations.pop(digest, None)
                executed = True

                if len(set(prior)) >= config.poison_after:
                    _write_poison(poison_root, digest, key, prior)
                    lease_path.unlink(missing_ok=True)
                    say(
                        f"{tag} POISON {key}: killed worker(s) "
                        f"{sorted(set(prior))}; quarantined"
                    )
                    break  # rescan before the next claim

                heartbeat = _Heartbeat(
                    lease_path, worker, prior, key, config.heartbeat_interval
                )
                heartbeat.start()
                try:
                    attempt = 1
                    while True:
                        try:
                            res = execute_unit(units[i], attempt, unit_timeout)
                        except Exception as exc:
                            if attempt > budget:
                                ledger.append_failed(
                                    digest, key, attempt, repr(exc)
                                )
                                failed_by_me.add(digest)
                                say(
                                    f"{tag} {key} FAILED "
                                    f"attempt={attempt}: {exc!r}"
                                )
                                break
                            say(
                                f"{tag} [retry] {key} attempt={attempt} "
                                f"raised {exc!r}; retrying"
                            )
                            attempt += 1
                            continue
                        ledger.append_ok(digest, key, attempt, res)
                        done_n = len(
                            (set(scanner.completed) | {digest}) & wanted
                        )
                        say(
                            f"{tag} [{done_n}/{total}] {key} "
                            f"ok attempt={attempt}"
                        )
                        break
                finally:
                    heartbeat.stop()
                    lease_path.unlink(missing_ok=True)
                break  # one unit per pass: rescan before claiming more

            if not executed:
                time.sleep(config.poll_interval)
    finally:
        ledger.close()

    results, stage_failures = merge_stage(units, stage_dir)
    if failures is not None:
        failures.extend(stage_failures)
    say(
        f"{tag} stage complete: {len(results)}/{total} ok, "
        f"{len(stage_failures)} failed"
    )
    return results
