"""Campaign orchestration: the full evaluation as one resumable run.

A *campaign* is the complete set of artefacts the paper's evaluation
produces — Figure 8(a), Figure 8(b), Tables 1-4 (simulated), Tables 1-4
(static cross-check) — generated into one output directory with a
manifest.  Stages are skipped when their artefacts already exist, so an
interrupted archival run resumes where it stopped (`--force` in the CLI
re-runs everything).

This is the library form of the shell scripts used for the results in
EXPERIMENTS.md::

    from repro.experiments.campaign import run_campaign
    run_campaign(get_preset("paperlite"), Path("results/archival"))
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.experiments.configs import ExperimentPreset
from repro.util.fsio import atomic_write_text
from repro.util.wallclock import Clock, resolve_clock

if TYPE_CHECKING:  # import cycle-free annotation only
    from repro.experiments.distributed import WorkerConfig
from repro.experiments.figure8 import run_figure8
from repro.experiments.report import (
    render_all_tables,
    render_figure8_summary,
    winners,
)
from repro.experiments.tables import run_static_tables, run_tables


@dataclass
class StageResult:
    """Bookkeeping for one campaign stage.

    ``failures`` lists the stage's work units that exhausted their
    retry budget (see
    :class:`~repro.experiments.parallel.UnitFailure`); the CLI exits
    nonzero when any stage reports one.
    """

    name: str
    skipped: bool
    seconds: float
    artefacts: List[str] = field(default_factory=list)
    failures: List[object] = field(default_factory=list)


def _stage_done(out_dir: Path, artefacts: Sequence[str]) -> bool:
    return all((out_dir / a).exists() for a in artefacts)


def run_campaign(
    preset: ExperimentPreset,
    out_dir: Path,
    workers: int = 1,
    force: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    include_static: bool = True,
    clock: Optional[Clock] = None,
    retries: Optional[int] = None,
    artifact_cache: Optional[Path] = None,
    use_artifact_cache: bool = True,
    distributed: Optional["WorkerConfig"] = None,
    unit_timeout: Optional[float] = None,
) -> List[StageResult]:
    """Generate every paper artefact for *preset* into *out_dir*.

    Stages (each skipped when its artefacts already exist, unless
    *force*):

    1. ``figure8-4port`` — Figure 8(a) CSV + ASCII plot + summary;
    2. ``figure8-8port`` — Figure 8(b) (only if the preset has 8-port);
    3. ``tables`` — Tables 1-4 simulated at saturation (CSV + rendered);
    4. ``static-tables`` — the exact static cross-check;
    5. ``audit`` — the turn-optimality audit of DOWN/UP's prohibited-turn
       set over the canonical topology zoo (``audit.csv`` / ``audit.txt``,
       see :mod:`repro.experiments.auditing`).

    Resumability is two-level.  Stage-level: a stage whose artefacts
    exist is skipped.  Unit-level: the simulation stages stream every
    completed work unit to a durable per-stage ledger
    (``ledger_<stage>.jsonl``, see :mod:`repro.experiments.ledger`), so
    a campaign killed mid-stage resumes from the last fsync'd unit and
    still produces byte-identical artefacts.  *force* restarts both
    levels (artefacts re-run, ledgers truncated).  *retries* bounds
    per-unit crash re-attempts.

    Construction work is shared across stages through the
    content-addressed artifact cache (on by default, at
    ``out_dir/artifact_cache`` unless *artifact_cache* names another
    store): the (topology, tree, routing) tuples the 4-port Figure-8
    stage builds are reused by every later stage and every re-run.
    *use_artifact_cache=False* disables it (every unit rebuilds, as
    before).  The cache is orthogonal to both resume levels — ledgers
    record simulation *results*, the cache stores construction
    *inputs* — and results are bit-identical with it on or off, so
    ``--force`` re-simulates everything without needing to clear it.

    A ``manifest.json`` records preset parameters, stage timings,
    ledger tallies, artifact-cache totals (hits/misses/entries), any
    units that exhausted their retry budget (``failed_units`` per
    stage — also surfaced on each :class:`StageResult` and turned into
    a nonzero CLI exit) and the winner summary, so the directory is
    self-describing.  *clock* injects the stage timer (defaults to the
    real wall clock); tests pass a fake for deterministic timings.

    *distributed* turns this call into one worker of a multi-host
    campaign (:mod:`repro.experiments.distributed`): the simulation
    stages claim work units through lease files under the config's
    shared campaign directory (normally *out_dir* itself) and stream
    results to per-worker ledger shards instead of the single-writer
    per-stage ledgers.  Every worker that finishes a stage publishes
    the byte-identical artefacts atomically, and a worker that arrives
    after a stage's artefacts exist skips it like any resumed run.
    The cheap static cross-check stage runs locally on every worker.
    *unit_timeout* bounds each unit's wall time in either mode.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    cache_dir: Optional[Path] = None
    counters_at_start: Dict[str, int] = {}
    if use_artifact_cache:
        cache_dir = Path(artifact_cache) if artifact_cache else out_dir / "artifact_cache"
        from repro.experiments.artifacts import read_counters

        # the store's counter log is append-only and outlives runs:
        # snapshot it so the manifest reports *this* campaign's tallies
        counters_at_start = read_counters(cache_dir)
    say = progress or (lambda msg: None)
    tick = resolve_clock(clock)
    results: List[StageResult] = []

    stage_failures: Dict[str, List] = {}

    def stage(name: str, artefacts: Sequence[str], fn: Callable[[], None]) -> None:
        if not force and _stage_done(out_dir, artefacts):
            say(f"[campaign] {name}: artefacts exist, skipping")
            results.append(StageResult(name, True, 0.0, list(artefacts)))
            return
        say(f"[campaign] {name}: running")
        t0 = tick()
        fn()
        results.append(
            StageResult(
                name, False, tick() - t0, list(artefacts),
                failures=stage_failures.get(name, []),
            )
        )

    manifest: Dict[str, object] = {
        "preset": {
            "name": preset.name,
            "n_switches": preset.n_switches,
            "ports": list(preset.ports),
            "samples": preset.samples,
            "packet_length": preset.packet_length,
            "clocks": [preset.warmup_clocks, preset.measure_clocks],
            "seed": preset.seed,
        },
        "stages": {},
        "winners": {},
    }

    ledgers: Dict[str, str] = {}

    def stage_ledger(name: str) -> Path:
        path = out_dir / f"ledger_{name.replace('-', '_')}.jsonl"
        ledgers[name] = path.name
        return path

    def fig8(ports: int) -> Callable[[], None]:
        def run() -> None:
            result = run_figure8(
                preset, ports=ports, out_dir=out_dir,
                progress=progress, workers=workers,
                ledger_path=(
                    None if distributed is not None
                    else stage_ledger(f"figure8-{ports}port")
                ),
                resume=not force, retries=retries,
                artifact_cache=cache_dir,
                distributed=distributed, unit_timeout=unit_timeout,
            )
            stage_failures[f"figure8-{ports}port"] = result.failures
            atomic_write_text(
                out_dir / f"figure8_{ports}port_summary.txt",
                render_figure8_summary(result) + "\n",
            )
        return run

    for ports in preset.ports:
        stage(
            f"figure8-{ports}port",
            [f"figure8_{ports}port.csv", f"figure8_{ports}port_summary.txt"],
            fig8(ports),
        )

    def tables_stage() -> None:
        result = run_tables(
            preset, out_dir=out_dir, progress=progress, workers=workers,
            ledger_path=(
                None if distributed is not None else stage_ledger("tables")
            ),
            resume=not force, retries=retries,
            artifact_cache=cache_dir,
            distributed=distributed, unit_timeout=unit_timeout,
        )
        stage_failures["tables"] = result.failures
        from repro.experiments.harness import PAPER_ALGORITHMS

        atomic_write_text(
            out_dir / "tables_simulated.txt",
            render_all_tables(result, PAPER_ALGORITHMS, preset.ports) + "\n",
        )
        manifest["winners"]["simulated"] = winners(result, preset.ports)

    stage("tables", ["tables_simulated.csv", "tables_simulated.txt"], tables_stage)

    if include_static:
        def static_stage() -> None:
            result = run_static_tables(
                preset, out_dir=out_dir, progress=progress,
                artifact_cache=cache_dir,
            )
            from repro.experiments.harness import PAPER_ALGORITHMS

            atomic_write_text(
                out_dir / "tables_static.txt",
                render_all_tables(result, PAPER_ALGORITHMS, preset.ports)
                + "\n",
            )
            manifest["winners"]["static"] = winners(result, preset.ports)

        stage("static-tables", ["tables_static.csv", "tables_static.txt"], static_stage)

        def audit_stage() -> None:
            # turn-optimality audit over the canonical zoo: cheap, pure
            # static analysis, cached and resumable like every other
            # stage (distributed workers skip it via the artefact check
            # once one of them has published the outputs)
            from repro.experiments.auditing import (
                DEFAULT_AUDIT_ZOO,
                run_topology_audits,
            )

            run_topology_audits(
                DEFAULT_AUDIT_ZOO,
                out_dir=out_dir,
                artifact_cache=cache_dir,
                ledger_path=(
                    None if distributed is not None else stage_ledger("audit")
                ),
                resume=not force,
                progress=progress,
            )

        stage("audit", ["audit.csv", "audit.txt"], audit_stage)

    manifest["stages"] = {
        r.name: {
            "skipped": r.skipped,
            "seconds": round(r.seconds, 2),
            **({"ledger": ledgers[r.name]} if r.name in ledgers else {}),
            **(
                {"failed_units": [f.as_dict() for f in r.failures]}
                if r.failures
                else {}
            ),
        }
        for r in results
    }
    if cache_dir is not None:
        from repro.experiments.artifacts import read_counters, store_stats

        stats = store_stats(cache_dir)
        counters = {
            k: v - counters_at_start.get(k, 0)
            for k, v in read_counters(cache_dir).items()
        }
        manifest["artifact_cache"] = {
            "path": str(cache_dir),
            "entries": stats["entries"],
            "bytes": stats["bytes"],
            "hits": counters["hits"] + counters["memory_hits"],
            "misses": counters["misses"],
            "corrupt": counters["corrupt"],
        }
        say(
            "[campaign] artifact cache: "
            f"{manifest['artifact_cache']['hits']} hits, "
            f"{counters['misses']} misses, "
            f"{stats['entries']} entries on disk"
        )
    if distributed is not None:
        manifest["distributed"] = {
            "worker": distributed.worker,
            "campaign_dir": str(distributed.campaign_dir),
        }
    atomic_write_text(
        out_dir / "manifest.json",
        json.dumps(manifest, indent=2, default=str) + "\n",
    )
    say(f"[campaign] complete: {out_dir}/manifest.json")
    return results
