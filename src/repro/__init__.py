"""repro — a full reproduction of the DOWN/UP routing paper (ICPP 2004).

Sun, Yang, Chung & Huang, *"An Efficient Deadlock-Free Tree-Based
Routing Algorithm for Irregular Wormhole-Routed Networks Based on the
Turn Model"*, ICPP 2004.

The package provides, as libraries:

* :mod:`repro.topology` — irregular switch-network model and generator;
* :mod:`repro.core` — the DOWN/UP construction (coordinated trees,
  communication graphs, the maximal-ADDG Phase 2, Phase-3 releases);
* :mod:`repro.routing` — turn models, routing tables, the up*/down*,
  L-turn and Left-Right baselines, and machine verification of
  deadlock freedom and connectivity;
* :mod:`repro.simulator` — a cycle-accurate flit-level wormhole
  simulator equivalent to the paper's IRFlexSim0.5 substrate;
* :mod:`repro.metrics` / :mod:`repro.analysis` — the evaluation
  metrics (node utilization, traffic load, hot spots, leaves
  utilization, latency/accepted traffic) and a fast static path
  analysis;
* :mod:`repro.experiments` — one harness entry per paper table/figure;
* :mod:`repro.statics` — deadlock-freedom certificates, an independent
  certificate checker, and the repo invariant linter (see
  ``docs/static_analysis.md``).

Quickstart::

    from repro import (
        random_irregular_topology, build_down_up_routing,
        build_l_turn_routing,
    )
    topo = random_irregular_topology(n=32, ports=4, rng=7)
    down_up = build_down_up_routing(topo)      # verified deadlock-free
    l_turn = build_l_turn_routing(topo)
    print(down_up.average_path_length(), l_turn.average_path_length())

See ``examples/`` for runnable end-to-end scenarios.
"""

from repro.topology import (
    Topology,
    random_irregular_topology,
    topology_from_json,
    topology_to_json,
)
from repro.core import (
    CommunicationGraph,
    CoordinatedTree,
    Direction,
    TreeMethod,
    build_coordinated_tree,
    build_down_up_routing,
    DOWN_UP_PROHIBITED_TURNS,
)
from repro.routing import (
    RoutingFunction,
    TurnModel,
    build_l_turn_routing,
    build_left_right_routing,
    build_up_down_routing,
    verify_routing,
)

__version__ = "1.0.0"

__all__ = [
    "Topology",
    "random_irregular_topology",
    "topology_from_json",
    "topology_to_json",
    "CommunicationGraph",
    "CoordinatedTree",
    "Direction",
    "TreeMethod",
    "build_coordinated_tree",
    "build_down_up_routing",
    "DOWN_UP_PROHIBITED_TURNS",
    "RoutingFunction",
    "TurnModel",
    "build_l_turn_routing",
    "build_left_right_routing",
    "build_up_down_routing",
    "verify_routing",
    "__version__",
]
