"""Static path analysis — a fast, closed-form cross-check.

The flit-level simulator is the ground truth for contention effects, but
the *shape* of the paper's Tables 1-4 is already visible in the expected
channel loads of uniform traffic routed over the admissible shortest
paths.  :func:`expected_channel_load` computes those loads exactly (no
simulation, no sampling) in ``O(|V| * |C|)``, which lets the harness run
the table metrics at the paper's full 128-switch scale in seconds and
compare them against the simulated mid-scale numbers.
"""

from repro.analysis.static_load import (
    expected_channel_load,
    static_utilization_report,
)
from repro.analysis.bounds import ThroughputBound, throughput_upper_bound
from repro.analysis.latency_model import LatencyModel, build_latency_model
from repro.analysis.resilience import (
    ResiliencePoint,
    degrade_topology,
    resilience_study,
)
from repro.analysis.turn_slack import (
    render_turn_slack_table,
    turn_slack_csv,
    turn_slack_rows,
)

__all__ = [
    "expected_channel_load",
    "static_utilization_report",
    "ThroughputBound",
    "throughput_upper_bound",
    "LatencyModel",
    "build_latency_model",
    "ResiliencePoint",
    "degrade_topology",
    "resilience_study",
    "render_turn_slack_table",
    "turn_slack_csv",
    "turn_slack_rows",
]
