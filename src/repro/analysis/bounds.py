"""Analytic throughput bounds from static channel loads.

Under uniform traffic at offered load ``λ`` flits/clock/node, the
expected flit rate over channel ``c`` is ``λ * load_c / (n - 1)``,
where ``load_c`` is the expected number of source-destination pairs
crossing ``c`` (:func:`repro.analysis.static_load.expected_channel_load`
— the packet-length factors cancel).  Every channel carries at most one
flit per clock, and so do the per-switch injection and consumption
ports, giving the saturation bound::

    λ*  <=  min( 1,  (n - 1) / max_c load_c )

This is an *upper* bound — it ignores wormhole blocking, which wastes
bandwidth by holding idle channels — so the simulator's measured
saturation throughput must come out at or below it (asserted by the
tests on every configuration they simulate).

A finding worth recording: the bound does **not** reliably rank the
algorithms.  DOWN/UP beats L-turn in every simulated configuration, yet
its single-bottleneck bound is sometimes the lower one — the win comes
from *where* worms block and how long they hold channels, which no
static quantity sees.  This is precisely why the paper (and this
reproduction) evaluates with a flit-level simulator rather than path
analysis alone; the ratio ``measured / bound`` quantifies how much each
algorithm loses to blocking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.static_load import expected_channel_load
from repro.routing.base import RoutingFunction


@dataclass(frozen=True)
class ThroughputBound:
    """Saturation-throughput bound and its witnesses."""

    #: the bound λ* in flits/clock/node
    bound: float
    #: the bottleneck channel's expected pair-crossings
    max_channel_load: float
    #: channel id of the bottleneck
    bottleneck_channel: int
    #: True when the 1-flit/clock consumption port, not a network
    #: channel, is the binding constraint
    port_limited: bool

    def utilization_of(self, measured_throughput: float) -> float:
        """measured / bound — the share of the analytic headroom a
        simulation actually achieved (1.0 = blocking-free ideal)."""
        if self.bound <= 0:
            return 0.0
        return measured_throughput / self.bound


def throughput_upper_bound(
    routing: RoutingFunction,
    load: Optional[np.ndarray] = None,
) -> ThroughputBound:
    """Compute the uniform-traffic saturation bound for *routing*.

    *load* lets callers reuse an already-computed
    :func:`expected_channel_load` vector.
    """
    n = routing.topology.n
    if n < 2:
        return ThroughputBound(1.0, 0.0, -1, True)
    if load is None:
        load = expected_channel_load(routing)
    c_max = int(np.argmax(load))
    max_load = float(load[c_max])
    if max_load <= 0:
        return ThroughputBound(1.0, 0.0, c_max, True)
    channel_bound = (n - 1) / max_load
    if channel_bound >= 1.0:
        return ThroughputBound(1.0, max_load, c_max, True)
    return ThroughputBound(channel_bound, max_load, c_max, False)
