"""Expected per-channel load under uniform traffic (exact computation).

Model: every ordered switch pair ``(s, d)`` sends one unit of traffic;
at each decision point the unit splits *equally* among all admissible
minimal next channels (the simulator's random tie-break, in
expectation).  Because the per-destination shortest-path structure is a
DAG ordered by remaining distance, the split propagates in one pass per
destination, processing channels by decreasing remaining distance.

``expected_channel_load[c]`` is then the expected number of
source-destination *pairs* whose packet crosses channel ``c``.  Up to a
constant factor (injection rate, packet length) this is proportional to
the channel utilization the simulator measures below saturation, so the
node-utilization-derived metrics (traffic load, hot spots, leaves) can
be evaluated on it directly — at full paper scale, in seconds.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.coordinated_tree import CoordinatedTree
from repro.metrics.utilization import utilization_report
from repro.routing.base import RoutingFunction


def expected_channel_load(routing: RoutingFunction) -> np.ndarray:
    """Expected pair-crossings per channel under uniform traffic.

    For every destination the unit loads of all sources are pushed
    through the shortest-path DAG; contributions split equally at every
    adaptive branch.  Exact (no sampling); cost ``O(|V| * |C|)``.
    """
    topo = routing.topology
    n = topo.n
    total = np.zeros(topo.num_channels, dtype=float)
    for d in range(n):
        dist_row = routing.dist[d]
        nh = routing.next_hops[d]
        fh = routing.first_hops[d]
        load = np.zeros(topo.num_channels, dtype=float)
        for s in range(n):
            if s == d or not fh[s]:
                continue
            share = 1.0 / len(fh[s])
            for c in fh[s]:
                load[c] += share
        # propagate in decreasing remaining distance: a channel's load
        # is final once every farther channel has been processed.
        finite = [
            c
            for c in range(topo.num_channels)
            if dist_row[c] != RoutingFunction.UNREACHABLE
        ]
        finite.sort(key=lambda c: -int(dist_row[c]))
        for c in finite:
            if load[c] == 0.0 or dist_row[c] == 0:
                continue
            share = load[c] / len(nh[c])
            for b in nh[c]:
                load[b] += share
        total += load
    return total


def static_utilization_report(
    routing: RoutingFunction, tree: CoordinatedTree
) -> Dict[str, float]:
    """Tables 1-4 metrics on the static load estimate.

    The loads are normalised to mean-1 over the used channels so that
    the *relative* statistics (traffic load as a fraction, hot-spot
    percentage, leaves-to-mean ratio) are comparable across algorithms;
    absolute node-utilization values are only meaningful relative to
    each other, not against the simulator's flits/clock.
    """
    load = expected_channel_load(routing)
    scale = load.mean()
    if scale > 0:
        load = load / scale
    return utilization_report(load, tree)
