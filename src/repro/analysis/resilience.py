"""Link-failure resilience study.

Tree-based routing's raison d'être is that it tolerates *arbitrary*
irregularity — including the irregularity created by faults: after a
link dies, the algorithms simply recompute on the degraded graph.  This
module quantifies that story (a natural extension of the paper's
evaluation):

* :func:`degrade_topology` removes random links while preserving
  connectivity (links whose removal disconnects the network are never
  chosen — as in the NOW fault models of the related work);
* :func:`resilience_study` rebuilds a routing algorithm across
  increasing failure counts and records mean path length, adaptivity
  and static hot-spot degree, showing how gracefully each algorithm
  absorbs damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.static_load import static_utilization_report
from repro.core.coordinated_tree import build_coordinated_tree
from repro.routing.base import RoutingFunction
from repro.routing.diagnostics import adaptivity
from repro.topology.graph import Topology
from repro.util.rng import RngLike, as_generator


def _bridges(topology: Topology) -> set:
    """All bridge links (links whose removal disconnects the network).

    Definition-direct: drop each link and BFS-check connectivity.
    ``O(|E| * (|V| + |E|))`` — a few hundred thousand operations at the
    paper's scale, negligible next to a single simulation run, and
    immune to the bookkeeping subtleties of iterative Tarjan.
    """
    bridges: set = set()
    adj = {v: set(topology.neighbors(v)) for v in range(topology.n)}
    for u, v in topology.links:
        adj[u].discard(v)
        adj[v].discard(u)
        # BFS from u; the link is a bridge iff v becomes unreachable
        seen = {u}
        stack = [u]
        while stack and v not in seen:
            x = stack.pop()
            for w in adj[x]:
                if w not in seen:
                    seen.add(w)
                    stack.append(w)
        if v not in seen:
            bridges.add((u, v))
        adj[u].add(v)
        adj[v].add(u)
    return bridges


def degrade_topology(
    topology: Topology, failures: int, rng: RngLike = None
) -> Topology:
    """Remove *failures* random non-bridge links, keeping connectivity.

    Bridges are recomputed after every removal (removing a link can turn
    others into bridges).  Raises ``ValueError`` when fewer than
    *failures* removable links exist.
    """
    gen = as_generator(rng)
    current = topology
    for k in range(failures):
        removable = sorted(set(current.links) - _bridges(current))
        if not removable:
            raise ValueError(
                f"only {k} of {failures} links were removable without "
                "disconnecting the network"
            )
        victim = removable[int(gen.integers(len(removable)))]
        links = [l for l in current.links if l != victim]
        current = Topology(current.n, links, ports=current.ports)
    return current


@dataclass(frozen=True)
class ResiliencePoint:
    """Metrics of one (algorithm, failure count) combination."""

    failures: int
    mean_path: float
    adaptivity: float
    hot_spot_degree: float


def resilience_study(
    topology: Topology,
    builders: Dict[str, Callable[[Topology], RoutingFunction]],
    failure_counts: Sequence[int],
    rng: RngLike = 0,
) -> Dict[str, List[ResiliencePoint]]:
    """Rebuild each algorithm on increasingly degraded topologies.

    All algorithms see the *same* degraded instances (paired
    comparison).  Every rebuilt routing is verified by its builder, so
    the study doubles as a fault-model stress test of Theorem 1.
    """
    gen = as_generator(rng)
    degraded = {0: topology}
    worst = max(failure_counts)
    current = topology
    for k in range(1, worst + 1):
        current = degrade_topology(current, 1, gen)
        degraded[k] = current

    out: Dict[str, List[ResiliencePoint]] = {name: [] for name in builders}
    for k in failure_counts:
        topo_k = degraded[k]
        tree = build_coordinated_tree(topo_k)
        for name, build in builders.items():
            routing = build(topo_k)
            report = static_utilization_report(routing, tree)
            out[name].append(
                ResiliencePoint(
                    failures=k,
                    mean_path=routing.average_path_length(),
                    adaptivity=adaptivity(routing),
                    hot_spot_degree=report["hot_spot_degree"],
                )
            )
    return out
