"""Link-failure resilience study.

Tree-based routing's raison d'être is that it tolerates *arbitrary*
irregularity — including the irregularity created by faults: after a
link dies, the algorithms simply recompute on the degraded graph.  This
module quantifies that story (a natural extension of the paper's
evaluation):

* :func:`degrade_topology` removes random links while preserving
  connectivity (links whose removal disconnects the network are never
  chosen — as in the NOW fault models of the related work);
* :func:`resilience_study` rebuilds a routing algorithm across
  increasing failure counts and records mean path length, adaptivity
  and static hot-spot degree, showing how gracefully each algorithm
  absorbs damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.static_load import static_utilization_report
from repro.core.coordinated_tree import build_coordinated_tree
from repro.routing.base import RoutingFunction
from repro.routing.diagnostics import adaptivity
from repro.topology.graph import Topology
from repro.topology.validation import find_bridges
from repro.util.rng import RngLike, as_generator


def _bridges(topology: Topology) -> set:
    """All bridge links (links whose removal disconnects the network).

    Single-pass Tarjan low-link finder, ``O(|V| + |E|)`` — shared with
    the live fault schedule's connectivity guard
    (:class:`repro.faults.FaultSchedule`), which probes candidate links
    once per fault event and needs the pass to be cheap.
    """
    return find_bridges(topology)


def degrade_topology(
    topology: Topology, failures: int, rng: RngLike = None
) -> Topology:
    """Remove *failures* random non-bridge links, keeping connectivity.

    Bridges are recomputed after every removal (removing a link can turn
    others into bridges).  Raises ``ValueError`` when fewer than
    *failures* removable links exist.
    """
    gen = as_generator(rng)
    current = topology
    for k in range(failures):
        removable = sorted(set(current.links) - _bridges(current))
        if not removable:
            raise ValueError(
                f"only {k} of {failures} links were removable without "
                "disconnecting the network"
            )
        victim = removable[int(gen.integers(len(removable)))]
        links = [l for l in current.links if l != victim]
        current = Topology(current.n, links, ports=current.ports)
    return current


@dataclass(frozen=True)
class ResiliencePoint:
    """Metrics of one (algorithm, failure count) combination."""

    failures: int
    mean_path: float
    adaptivity: float
    hot_spot_degree: float


def resilience_study(
    topology: Topology,
    builders: Dict[str, Callable[[Topology], RoutingFunction]],
    failure_counts: Sequence[int],
    rng: RngLike = 0,
) -> Dict[str, List[ResiliencePoint]]:
    """Rebuild each algorithm on increasingly degraded topologies.

    All algorithms see the *same* degraded instances (paired
    comparison).  Every rebuilt routing is verified by its builder, so
    the study doubles as a fault-model stress test of Theorem 1.
    """
    gen = as_generator(rng)
    degraded = {0: topology}
    worst = max(failure_counts)
    current = topology
    for k in range(1, worst + 1):
        current = degrade_topology(current, 1, gen)
        degraded[k] = current

    out: Dict[str, List[ResiliencePoint]] = {name: [] for name in builders}
    for k in failure_counts:
        topo_k = degraded[k]
        tree = build_coordinated_tree(topo_k)
        for name, build in builders.items():
            routing = build(topo_k)
            report = static_utilization_report(routing, tree)
            out[name].append(
                ResiliencePoint(
                    failures=k,
                    mean_path=routing.average_path_length(),
                    adaptivity=adaptivity(routing),
                    hot_spot_degree=report["hot_spot_degree"],
                )
            )
    return out
