"""Analytic latency model (low-load regime).

At negligible load a packet's latency decomposes exactly (the engine's
unit tests pin the same constants):

    latency(s, d) = (header_delay + link_delay) * hops(s, d) + (L - 1)

so the *network-average* unloaded latency follows from the routing
function's path-length distribution alone.  With rising load a queueing
term grows; this module adds a first-order M/M/1-style correction using
the static bottleneck utilisation, which tracks the simulator well
below ~60% of saturation and (by design) diverges at the analytic
bound.

Use: predicting where a latency curve starts, sanity-checking simulator
configurations, and giving examples a closed-form reference line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.bounds import ThroughputBound, throughput_upper_bound
from repro.routing.base import RoutingFunction
from repro.routing.diagnostics import path_length_stats
from repro.simulator.config import SimulationConfig


@dataclass(frozen=True)
class LatencyModel:
    """Closed-form latency predictor for one routing + configuration."""

    mean_hops: float
    per_hop_clocks: int
    packet_length: int
    bound: ThroughputBound

    @property
    def unloaded_latency(self) -> float:
        """Mean zero-load latency over all pairs (clocks)."""
        return self.per_hop_clocks * self.mean_hops + (self.packet_length - 1)

    def predict(self, offered_load: float) -> float:
        """Mean latency at *offered_load* (flits/clock/node).

        Zero-load term plus an M/M/1-style congestion factor on the
        serialisation time, ``(L - 1) * rho / (1 - rho)`` with
        ``rho = offered / bound``.  Returns ``inf`` at or beyond the
        bound.
        """
        rho = offered_load / self.bound.bound if self.bound.bound > 0 else 1.0
        if rho >= 1.0:
            return float("inf")
        queueing = (self.packet_length - 1) * rho / (1.0 - rho)
        return self.unloaded_latency + queueing


def build_latency_model(
    routing: RoutingFunction,
    config: SimulationConfig,
    bound: Optional[ThroughputBound] = None,
) -> LatencyModel:
    """Construct the predictor from exact path statistics.

    *bound* may be passed to reuse a precomputed
    :func:`~repro.analysis.bounds.throughput_upper_bound`.
    """
    stats = path_length_stats(routing)
    return LatencyModel(
        mean_hops=stats.mean,
        per_hop_clocks=config.header_delay + config.link_delay,
        packet_length=config.packet_length,
        bound=bound if bound is not None else throughput_upper_bound(routing),
    )
