"""Reporting for turn-optimality audits (``repro-experiments audit``).

Renders :class:`~repro.statics.audit.TurnAuditReport` collections as the
repo's standard fixed-width table / CSV — the golden-output surface of
the ``audit --table`` CLI, so the column set and formatting here are
covered by an exact-string test and must only change deliberately.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.statics.audit import TurnAuditReport
from repro.util.tables import format_table

_HEADERS = [
    "topology",
    "switches",
    "channels",
    "prohibited",
    "vacuous",
    "necessary",
    "slack %",
    "verdict",
]


def turn_slack_rows(reports: Sequence[TurnAuditReport]) -> List[List[object]]:
    """Table rows, one per audited topology (input order preserved)."""
    return [
        [
            r.topology,
            r.n,
            r.num_channels,
            r.prohibited,
            r.vacuous_prohibited,
            r.necessary,
            f"{r.slack_pct:.1f}",
            r.verdict,
        ]
        for r in reports
    ]


def render_turn_slack_table(reports: Sequence[TurnAuditReport]) -> str:
    """The fixed-width summary table (no trailing newline)."""
    return format_table(
        _HEADERS,
        turn_slack_rows(reports),
        title="Turn-optimality audit (DOWN/UP prohibited-turn set)",
    )


def turn_slack_csv(reports: Sequence[TurnAuditReport]) -> str:
    """CSV form of the same table (header + rows, trailing newline)."""
    lines = [",".join(h.replace(" %", "_pct") for h in _HEADERS)]
    for row in turn_slack_rows(reports):
        lines.append(",".join(str(x) for x in row))
    return "\n".join(lines) + "\n"
