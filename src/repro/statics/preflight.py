"""Pre-flight certification of every table a fault schedule can induce.

A :class:`~repro.faults.schedule.FaultSchedule` drives the live
reconfiguration machinery through a sequence of degraded network
states; each state makes the
:class:`~repro.faults.controller.ReconfigurationController` rebuild and
swap in a fresh routing table mid-run.  :func:`preflight_schedule`
enumerates those states *statically*, rebuilds the routing for each,
and pushes every table through both :func:`certify_routing` and the
independent checker — so a schedule whose induced routing could not be
certified is rejected before any simulation cycles are burnt, and an
archival run can store the digest of every table it will ever install.

Rebuild + certification happen once per *distinct survivor topology*,
not once per induced state: different fault events frequently collapse
to the same survivors (a switch death implies its incident links), and
the controller would install byte-identical tables for them.  States
are deduped by the survivor's content digest, and an
:class:`~repro.experiments.artifacts.ArtifactCache` can additionally be
passed so repeated preflights (across runs or schedules) serve the
certificate bundle content-addressed instead of rebuilding.  The
independent re-check always runs — cached bytes get the same scrutiny
as fresh ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.faults.controller import surviving_topology
from repro.faults.schedule import LINK_DOWN, LINK_UP, FaultSchedule
from repro.routing.base import RoutingFunction
from repro.routing.verification import verify_routing
from repro.statics.certificates import CertificateBundle, certify_routing
from repro.statics.check import CheckReport, recheck
from repro.topology.graph import Topology


@dataclass(frozen=True)
class FaultState:
    """One cumulative degraded state a schedule passes through."""

    clock: int
    dead_links: Tuple[Tuple[int, int], ...]
    dead_switches: Tuple[int, ...]

    def describe(self) -> str:
        return (
            f"clock {self.clock}: dead links {list(self.dead_links)}, "
            f"dead switches {list(self.dead_switches)}"
        )


@dataclass(frozen=True)
class PreflightEntry:
    """Certified routing for one induced fault state."""

    state: FaultState
    routing_name: str
    bundle: CertificateBundle
    report: CheckReport


def induced_fault_states(schedule: FaultSchedule) -> List[FaultState]:
    """Every *distinct* degraded state the schedule steps through.

    Replays the events cumulatively (the same replay order the
    :class:`~repro.faults.runtime.FaultRuntime` uses) and records the
    state after each event; a state revisited later — e.g. after a link
    flap restores the link — is reported only once.
    """
    dead_links: set = set()
    dead_switches: set = set()
    states: List[FaultState] = []
    seen = set()
    for ev in schedule.events:
        if ev.kind == LINK_DOWN:
            dead_links.add(ev.link)
        elif ev.kind == LINK_UP:
            dead_links.discard(ev.link)
        else:
            dead_switches.add(ev.switch)
        key = (frozenset(dead_links), frozenset(dead_switches))
        if key in seen:
            continue
        seen.add(key)
        states.append(
            FaultState(
                clock=ev.cycle,
                dead_links=tuple(sorted(dead_links)),
                dead_switches=tuple(sorted(dead_switches)),
            )
        )
    return states


def survivor_digest(topology: Topology) -> str:
    """Content digest of a survivor topology (dedupe/cache key).

    Same serialization the artifact store hashes
    (:func:`repro.experiments.artifacts.topology_digest` is this exact
    computation), so preflight cache keys line up with campaign cache
    keys without this module importing the experiments layer.
    """
    from repro.topology.serialization import topology_to_json

    payload = topology_to_json(topology).encode("utf-8")
    return "sha256:" + hashlib.sha256(payload).hexdigest()


def preflight_schedule(
    schedule: FaultSchedule,
    builder,
    strict: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    cache=None,
    cache_label: str = "preflight",
) -> List[PreflightEntry]:
    """Certify the rebuilt routing for every state *schedule* induces.

    *builder* is either a
    :class:`~repro.faults.controller.ReconfigurationController` or a
    raw ``builder(sub_topology) -> RoutingFunction`` callable (the same
    signature the controller takes).  Each induced state's survivor
    topology is extracted, the builder rebuilds routing on it, and the
    result is certified and independently re-checked.  With *strict*
    (default) the first failing certificate raises
    :class:`~repro.statics.check.CertificateError`; otherwise failures
    are returned in the entries' reports.

    States whose survivor topology is identical (by content digest)
    share one rebuild + certification: every entry is still returned,
    carrying the shared bundle.  *cache* optionally names an
    :class:`~repro.experiments.artifacts.ArtifactCache` (anything with
    its ``certificate(key, build)`` protocol); bundles are then served
    content-addressed under ``{survivor digest, cache_label}``.
    **cache_label must distinguish builders**: two different builders
    preflighted against the same store with the same label would alias
    — pass the algorithm name (the certify CLI does).  The independent
    check runs on served bundles too; only rebuild + certification are
    skipped.
    """
    build: Callable[[Topology], RoutingFunction] = getattr(
        builder, "builder", builder
    )
    say = progress or (lambda msg: None)
    entries: List[PreflightEntry] = []
    certified: Dict[str, Tuple[str, CertificateBundle]] = {}
    for state in induced_fault_states(schedule):
        sub, _live = surviving_topology(
            schedule.topology, state.dead_links, state.dead_switches
        )
        digest = survivor_digest(sub)
        hit = certified.get(digest)
        if hit is None:
            def _certified_bundle() -> CertificateBundle:
                routing = verify_routing(build(sub))
                return certify_routing(routing)

            if cache is not None:
                bundle = cache.certificate(
                    {"topology": digest, "algorithm": cache_label,
                     "purpose": "preflight"},
                    _certified_bundle,
                )
            else:
                bundle = _certified_bundle()
            hit = (bundle.algorithm, bundle)
            certified[digest] = hit
        else:
            say(f"[preflight] {state.describe()} -> survivor already certified")
        routing_name, bundle = hit
        if strict:
            report = recheck(bundle)
        else:
            from repro.statics.check import check_certificate

            report = check_certificate(bundle)
        say(
            f"[preflight] {state.describe()} -> {routing_name} "
            f"{bundle.digest[:23]} {'ok' if report.ok else 'FAILED'}"
        )
        entries.append(
            PreflightEntry(
                state=state,
                routing_name=routing_name,
                bundle=bundle,
                report=report,
            )
        )
    return entries
