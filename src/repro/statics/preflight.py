"""Pre-flight certification of every table a fault schedule can induce.

A :class:`~repro.faults.schedule.FaultSchedule` drives the live
reconfiguration machinery through a sequence of degraded network
states; each state makes the
:class:`~repro.faults.controller.ReconfigurationController` rebuild and
swap in a fresh routing table mid-run.  :func:`preflight_schedule`
enumerates those states *statically*, rebuilds the routing for each,
and pushes every table through both :func:`certify_routing` and the
independent checker — so a schedule whose induced routing could not be
certified is rejected before any simulation cycles are burnt, and an
archival run can store the digest of every table it will ever install.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.faults.controller import surviving_topology
from repro.faults.schedule import LINK_DOWN, LINK_UP, FaultSchedule
from repro.routing.base import RoutingFunction
from repro.routing.verification import verify_routing
from repro.statics.certificates import CertificateBundle, certify_routing
from repro.statics.check import CheckReport, recheck
from repro.topology.graph import Topology


@dataclass(frozen=True)
class FaultState:
    """One cumulative degraded state a schedule passes through."""

    clock: int
    dead_links: Tuple[Tuple[int, int], ...]
    dead_switches: Tuple[int, ...]

    def describe(self) -> str:
        return (
            f"clock {self.clock}: dead links {list(self.dead_links)}, "
            f"dead switches {list(self.dead_switches)}"
        )


@dataclass(frozen=True)
class PreflightEntry:
    """Certified routing for one induced fault state."""

    state: FaultState
    routing_name: str
    bundle: CertificateBundle
    report: CheckReport


def induced_fault_states(schedule: FaultSchedule) -> List[FaultState]:
    """Every *distinct* degraded state the schedule steps through.

    Replays the events cumulatively (the same replay order the
    :class:`~repro.faults.runtime.FaultRuntime` uses) and records the
    state after each event; a state revisited later — e.g. after a link
    flap restores the link — is reported only once.
    """
    dead_links: set = set()
    dead_switches: set = set()
    states: List[FaultState] = []
    seen = set()
    for ev in schedule.events:
        if ev.kind == LINK_DOWN:
            dead_links.add(ev.link)
        elif ev.kind == LINK_UP:
            dead_links.discard(ev.link)
        else:
            dead_switches.add(ev.switch)
        key = (frozenset(dead_links), frozenset(dead_switches))
        if key in seen:
            continue
        seen.add(key)
        states.append(
            FaultState(
                clock=ev.cycle,
                dead_links=tuple(sorted(dead_links)),
                dead_switches=tuple(sorted(dead_switches)),
            )
        )
    return states


def preflight_schedule(
    schedule: FaultSchedule,
    builder,
    strict: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> List[PreflightEntry]:
    """Certify the rebuilt routing for every state *schedule* induces.

    *builder* is either a
    :class:`~repro.faults.controller.ReconfigurationController` or a
    raw ``builder(sub_topology) -> RoutingFunction`` callable (the same
    signature the controller takes).  Each induced state's survivor
    topology is extracted, the builder rebuilds routing on it, and the
    result is certified and independently re-checked.  With *strict*
    (default) the first failing certificate raises
    :class:`~repro.statics.check.CertificateError`; otherwise failures
    are returned in the entries' reports.
    """
    build: Callable[[Topology], RoutingFunction] = getattr(
        builder, "builder", builder
    )
    say = progress or (lambda msg: None)
    entries: List[PreflightEntry] = []
    for state in induced_fault_states(schedule):
        sub, _live = surviving_topology(
            schedule.topology, state.dead_links, state.dead_switches
        )
        routing = verify_routing(build(sub))
        bundle = certify_routing(routing)
        if strict:
            report = recheck(bundle)
        else:
            from repro.statics.check import check_certificate

            report = check_certificate(bundle)
        say(
            f"[preflight] {state.describe()} -> {routing.name} "
            f"{bundle.digest[:23]} {'ok' if report.ok else 'FAILED'}"
        )
        entries.append(
            PreflightEntry(
                state=state,
                routing_name=routing.name,
                bundle=bundle,
                report=report,
            )
        )
    return entries
