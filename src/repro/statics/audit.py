"""Turn-optimality auditor: how over-conservative is a prohibited-turn set?

DOWN/UP prohibits 18 of the 56 direction-class turns (Definition 8 /
Section 4.3).  That count is chosen once, for *all* irregular networks;
on any concrete topology some prohibitions may be vacuous (the class
pair is never realized by actual channels) or redundant (dropping them
keeps the Theorem-1 certification intact).  This module quantifies the
gap per topology.

Two different criteria are in play, and conflating them is the classic
mistake:

* The **existence** criterion (:func:`repro.statics.existence.decide_existence`)
  asks whether *some* deadlock-free routing exists.  It is monotone in
  the allowed-turn set — relaxing a prohibition can only help — so
  greedily relaxing under it would declare *every* prohibition
  redundant.  It is the right headline check ("is this PT usable at
  all?") but the wrong relaxation objective.
* The **certification** criterion (Theorem 1, as
  :func:`repro.statics.existence.full_relation_acyclic`) asks whether
  the *full* allowed-turn dependency digraph is acyclic — i.e. whether
  *every* routing built under the PT is automatically deadlock-free,
  which is the guarantee DOWN/UP actually ships with (and what the
  emitted certificates re-verify).  This is *anti*-monotone in
  relaxation, so "how few prohibitions keep it?" is a meaningful
  minimum.

:func:`audit_topology` therefore reports, per topology: the existence
verdict under the full PT (re-verified through the independent
checker), and a greedy-relax minimization of the PT under the
certification criterion — yielding the necessary subset, the
individually-droppable ("provably redundant") turns, and the
``slack = (prohibited - necessary) / prohibited`` headline number.
Greedy relaxation over a fixed turn order gives an *irreducible* set
(no single member can be dropped), not a guaranteed global minimum —
minimum acyclic relaxations are NP-hard in general — so ``necessary``
is an upper bound on the true minimum and ``slack`` a lower bound on
the true slack.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.core.communication_graph import CommunicationGraph
from repro.core.coordinated_tree import TreeMethod, build_coordinated_tree
from repro.core.direction_graph import DOWN_UP_PROHIBITED_TURNS, Turn
from repro.core.directions import Direction
from repro.core.downup import down_up_turn_model
from repro.statics.certificates import compute_digest
from repro.statics.check import CheckReport, check_existence_report
from repro.statics.existence import (
    ExistenceReport,
    TurnSystem,
    decide_existence,
    full_relation_acyclic,
)

AUDIT_FORMAT = "repro-audit-v1"


def turn_name(turn: Turn) -> str:
    """Stable ``FROM->TO`` spelling of a class turn."""
    return f"{Direction(turn.frm).name}->{Direction(turn.to).name}"


def _sorted_turns(turns: FrozenSet[Turn]) -> List[Turn]:
    return sorted(turns, key=lambda t: (int(t.frm), int(t.to)))


@dataclass(frozen=True)
class TurnAuditReport:
    """Digest-stamped audit of one prohibited-turn set on one topology."""

    topology: str
    n: int
    num_links: int
    num_channels: int
    feasible: bool
    verdict: str
    full_relation_acyclic: bool
    witness_rechecked: bool
    unreachable_pairs: int
    prohibited: int
    realized_prohibited: int
    vacuous_prohibited: int
    necessary: int
    necessary_turns: Tuple[str, ...]
    redundant_turns: Tuple[str, ...]
    existence_digest: str
    digest: str = field(default="", compare=False)

    @property
    def slack_pct(self) -> float:
        """Share of the PT that the greedy minimization could drop."""
        if self.prohibited == 0:
            return 0.0
        return 100.0 * (self.prohibited - self.necessary) / self.prohibited

    def payload(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "format": AUDIT_FORMAT,
            "topology": self.topology,
            "n": self.n,
            "num_links": self.num_links,
            "num_channels": self.num_channels,
            "feasible": self.feasible,
            "verdict": self.verdict,
            "full_relation_acyclic": self.full_relation_acyclic,
            "witness_rechecked": self.witness_rechecked,
            "unreachable_pairs": self.unreachable_pairs,
            "prohibited": self.prohibited,
            "realized_prohibited": self.realized_prohibited,
            "vacuous_prohibited": self.vacuous_prohibited,
            "necessary": self.necessary,
            "necessary_turns": list(self.necessary_turns),
            "redundant_turns": list(self.redundant_turns),
            "existence_digest": self.existence_digest,
        }
        if self.digest:
            out["digest"] = self.digest
        return out

    def to_json(self) -> str:
        return json.dumps(self.payload(), separators=(",", ":"))

    @classmethod
    def from_payload(cls, data: Mapping[str, object]) -> "TurnAuditReport":
        if data.get("format") != AUDIT_FORMAT:
            raise ValueError(f"unsupported audit format {data.get('format')!r}")
        return cls(
            topology=str(data["topology"]),
            n=int(data["n"]),  # type: ignore[call-overload]
            num_links=int(data["num_links"]),  # type: ignore[call-overload]
            num_channels=int(data["num_channels"]),  # type: ignore[call-overload]
            feasible=bool(data["feasible"]),
            verdict=str(data["verdict"]),
            full_relation_acyclic=bool(data["full_relation_acyclic"]),
            witness_rechecked=bool(data["witness_rechecked"]),
            unreachable_pairs=int(data["unreachable_pairs"]),  # type: ignore[call-overload]
            prohibited=int(data["prohibited"]),  # type: ignore[call-overload]
            realized_prohibited=int(data["realized_prohibited"]),  # type: ignore[call-overload]
            vacuous_prohibited=int(data["vacuous_prohibited"]),  # type: ignore[call-overload]
            necessary=int(data["necessary"]),  # type: ignore[call-overload]
            necessary_turns=tuple(str(t) for t in data["necessary_turns"]),  # type: ignore[union-attr]
            redundant_turns=tuple(str(t) for t in data["redundant_turns"]),  # type: ignore[union-attr]
            existence_digest=str(data["existence_digest"]),
            digest=str(data.get("digest", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "TurnAuditReport":
        return cls.from_payload(json.loads(text))

    def summary(self) -> str:
        state = self.verdict if not self.feasible else (
            "feasible" if self.witness_rechecked else "feasible (UNCHECKED)"
        )
        return (
            f"audit[{self.topology}] {state}: {self.prohibited} prohibited "
            f"({self.vacuous_prohibited} vacuous), {self.necessary} "
            f"necessary, slack {self.slack_pct:.1f}%"
        )


def audit_topology(
    topology: object,
    name: str,
    prohibited: FrozenSet[Turn] = DOWN_UP_PROHIBITED_TURNS,
    recheck_witness: bool = True,
) -> TurnAuditReport:
    """Audit *prohibited* on *topology* (a :class:`~repro.topology.graph.Topology`).

    Builds the coordinated tree deterministically (method M1), derives
    the DOWN/UP-style turn model under *prohibited* (without Phase-3
    releases — the audit measures the PT itself, not its local
    relaxations), decides existence, optionally re-verifies the
    resulting witness through the independent checker, and greedily
    minimizes the PT under the Theorem-1 certification criterion.
    """
    tree = build_coordinated_tree(topology, method=TreeMethod.M1)
    cg = CommunicationGraph.from_tree(tree)

    def system_for(pt: FrozenSet[Turn]) -> TurnSystem:
        tm = down_up_turn_model(cg, apply_phase3=False, prohibited=pt)
        return TurnSystem.from_turn_model(tm)

    base_tm = down_up_turn_model(cg, apply_phase3=False, prohibited=prohibited)
    system = TurnSystem.from_turn_model(base_tm)
    existence = decide_existence(system)

    witness_rechecked = False
    if recheck_witness:
        chk: CheckReport = check_existence_report(existence)
        witness_rechecked = chk.ok

    # vacuousness: prohibited class turns never realized by any channel
    # pair on this topology (uses the TurnModel introspection API)
    realized = base_tm.realized_class_turns()
    realized_prohibited = sum(
        1 for t in prohibited if (int(t.frm), int(t.to)) in realized
    )

    # greedy-relax under the certification criterion: deterministic
    # sorted order, drop a prohibition whenever the full relation stays
    # acyclic without it.  The result is irreducible (see module doc).
    necessary = set(prohibited)
    for turn in _sorted_turns(prohibited):
        trial = frozenset(necessary - {turn})
        if full_relation_acyclic(system_for(trial)):
            necessary.discard(turn)

    # provably redundant: individually droppable from the *full* PT
    # (order-independent, unlike the greedy trace)
    redundant = [
        turn
        for turn in _sorted_turns(prohibited)
        if full_relation_acyclic(system_for(frozenset(prohibited - {turn})))
    ]

    stats = existence.stats
    report = TurnAuditReport(
        topology=name,
        n=int(getattr(topology, "n")),
        num_links=len(getattr(topology, "links")),
        num_channels=system.num_channels,
        feasible=existence.verdict == "feasible",
        verdict=existence.verdict,
        full_relation_acyclic=bool(stats.get("full_relation_acyclic", False)),
        witness_rechecked=witness_rechecked,
        unreachable_pairs=int(stats.get("unreachable_pairs", 0)),  # type: ignore[call-overload]
        prohibited=len(prohibited),
        realized_prohibited=realized_prohibited,
        vacuous_prohibited=len(prohibited) - realized_prohibited,
        necessary=len(necessary),
        necessary_turns=tuple(turn_name(t) for t in _sorted_turns(frozenset(necessary))),
        redundant_turns=tuple(turn_name(t) for t in redundant),
        existence_digest=existence.digest,
    )
    return replace(report, digest=compute_digest(report.payload()))


def audit_existence(
    topology: object,
    prohibited: FrozenSet[Turn] = DOWN_UP_PROHIBITED_TURNS,
) -> ExistenceReport:
    """Just the existence decision for *prohibited* on *topology*.

    Convenience wrapper for callers that want the raw digest-stamped
    :class:`~repro.statics.existence.ExistenceReport` (e.g. to archive
    it) without the relaxation sweep.
    """
    tree = build_coordinated_tree(topology, method=TreeMethod.M1)
    cg = CommunicationGraph.from_tree(tree)
    tm = down_up_turn_model(cg, apply_phase3=False, prohibited=prohibited)
    return decide_existence(TurnSystem.from_turn_model(tm))
