"""Existence oracle: does *any* deadlock-free routing exist?

The certificates in :mod:`repro.statics.certificates` answer a
*posterior* question — "is this particular routing function
deadlock-free and connected?".  This module answers the *prior* one the
turn model raises (cf. Mendlovic-Matias, arXiv 2503.04583): given a
topology and an allowed-turn relation (everything the prohibited-turn
set PT leaves standing), does there exist **any** deadlock-free
connected routing at all — and if not, what is the smallest obstruction?

The characterization used here is the turn-model form of the
necessary-and-sufficient condition.  Let ``H`` be the *allowed-turn
dependency digraph*: nodes are the directed channels, and there is an
edge ``a -> b`` iff a worm holding ``a`` may request ``b``
(``sink(a) == start(b)``, not a U-turn, and the turn is allowed).

    A deadlock-free connected routing exists
        iff
    H contains an **acyclic sub-digraph** ``D`` such that every ordered
    switch pair ``(s, d)`` is joined by a channel path whose consecutive
    turns all lie in ``D``.

*Sufficiency*: route every packet along the ``D``-paths; all runtime
dependencies then lie in ``D``, which is acyclic, so the Dally-Seitz
condition gives deadlock freedom, and the paths give connectivity.
*Necessity*: any deadlock-free connected routing's own dependency graph
is such a ``D`` (its used turns must be allowed, its dependency
relation must be acyclic, and its tables must connect every pair).

:func:`decide_existence` decides this property and returns a
digest-stamped :class:`ExistenceReport` carrying either

* a **constructive witness** (:class:`ExistenceWitness`): a topological
  channel order, the acyclic escape sub-relation ``D``, and one witness
  path per ordered pair — all re-verifiable by
  :func:`repro.statics.check.check_existence_report`, which shares zero
  traversal code with this module; or
* a **minimal infeasibility core** (:class:`InfeasibilityCore`):
  either a set of switch pairs no allowed path joins (``disconnected``)
  or the shortest cycle of *mandatory* turns found
  (``mandatory-cycle``) — a turn is mandatory when removing it alone
  from ``H`` already disconnects some pair, so a cycle of mandatory
  turns is an independently checkable proof that no acyclic connecting
  sub-relation can exist.

The decision procedure (all stdlib, no numpy, no imports from
``repro.routing``/``repro.core`` — raw facts come in through the
duck-typed :meth:`TurnSystem.from_turn_model`):

1. **Reachability screen.**  If some ordered pair has no allowed path
   even in the full ``H``, no sub-relation can connect it:
   ``infeasible`` with a ``disconnected`` core.
2. **Acyclic fast path.**  If the full ``H`` is already acyclic
   (Kahn), ``D = H`` is a witness: ``feasible`` immediately.  DOWN/UP's
   18-turn PT is built to make exactly this true, so the whole zoo
   resolves here.
3. **Mandatory-cycle obstruction.**  Otherwise find the turns whose
   individual removal disconnects a pair; the shortest directed cycle
   among them (if any) is the infeasibility core.
4. **Bounded branch-and-bound.**  Otherwise search for a cycle-free
   connecting sub-relation by repeatedly finding a cycle of the current
   relation and branching over which of its turns to drop (dropping is
   pruned when it disconnects a pair — sound, because a sub-relation of
   a disconnecting relation cannot reconnect).  Branching over the
   turns of one cycle is complete: any acyclic sub-relation must omit
   at least one of them.  ``budget`` bounds the explored search nodes;
   exhausting it yields the honest verdict ``unknown``, while a fully
   exhausted search (budget not hit) proves ``infeasible`` — then the
   report carries a ``search-exhausted`` core whose cycle documents the
   obstruction but is *not* independently re-checkable (the checker
   validates only its structure).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

EXISTENCE_FORMAT = "repro-exist-v1"

FEASIBLE = "feasible"
INFEASIBLE = "infeasible"
UNKNOWN = "unknown"

#: default bound on branch-and-bound search nodes (step 4)
DEFAULT_BUDGET = 10_000

#: cap on pairs listed in a ``disconnected`` core (the *count* is exact,
#: in ``stats["unreachable_pairs"]``)
_MAX_CORE_PAIRS = 32

Pair = Tuple[int, int]
Matrix = Tuple[Tuple[bool, ...], ...]


def _canonical_digest(payload: Mapping[str, object]) -> str:
    """SHA-256 over the canonical JSON of *payload* (digest key excluded).

    Same stamping discipline as
    :func:`repro.statics.certificates.compute_digest`, reimplemented
    here so this module stays importable with nothing but the stdlib.
    """
    body = {k: v for k, v in payload.items() if k != "digest"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# the raw facts: a turn system
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TurnSystem:
    """Topology + allowed-turn relation, as plain data.

    The field layout mirrors the raw-facts section of a
    :class:`~repro.statics.certificates.CertificateBundle` (same channel
    id convention: link ``k`` joining ``u < v`` yields channel ``2k`` =
    ``<u, v>`` and ``2k + 1`` = ``<v, u>``), so the independent checker
    re-derives the channel structure the same way for both artifact
    kinds.
    """

    n: int
    links: Tuple[Pair, ...]
    channel_class: Tuple[int, ...]
    class_names: Tuple[str, ...]
    base_allowed: Matrix
    node_overrides: Mapping[int, Matrix]
    pair_exceptions: Tuple[Pair, ...]

    @property
    def num_channels(self) -> int:
        return 2 * len(self.links)

    @classmethod
    def from_turn_model(cls, tm: object) -> "TurnSystem":
        """Convert a :class:`~repro.routing.base.TurnModel`-alike.

        Duck-typed on purpose: this module never imports the routing
        layer, it only reads ``topology.n`` / ``topology.links``,
        ``channel_class``, ``class_names``, ``base_matrix``,
        ``overridden_switches()`` / ``allowed_matrix(v)`` and
        ``released_channel_pairs()`` — converting every value to plain
        Python data.
        """
        topo = getattr(tm, "topology")
        base = getattr(tm, "base_matrix")
        overrides = {
            int(v): tuple(
                tuple(bool(x) for x in row)
                for row in getattr(tm, "allowed_matrix")(v)
            )
            for v in getattr(tm, "overridden_switches")()
        }
        return cls(
            n=int(topo.n),
            links=tuple((int(u), int(v)) for u, v in topo.links),
            channel_class=tuple(int(c) for c in getattr(tm, "channel_class")),
            class_names=tuple(str(s) for s in getattr(tm, "class_names")),
            base_allowed=tuple(tuple(bool(x) for x in row) for row in base),
            node_overrides=overrides,
            pair_exceptions=tuple(
                (int(a), int(b))
                for a, b in getattr(tm, "released_channel_pairs")()
            ),
        )

    @classmethod
    def from_allowed_pairs(
        cls,
        n: int,
        links: Sequence[Pair],
        allowed_pairs: Iterable[Pair],
    ) -> "TurnSystem":
        """A system allowing exactly *allowed_pairs* (channel-id pairs).

        Every channel gets its own class, so the class matrix *is* the
        channel-pair relation — the fully general encoding used by
        synthetic fixtures (e.g. the unidirectional ring, the canonical
        infeasible system).
        """
        norm = tuple(
            (int(u), int(v)) if u < v else (int(v), int(u)) for u, v in links
        )
        num_channels = 2 * len(norm)
        allow = set(allowed_pairs)
        base = tuple(
            tuple((a, b) in allow for b in range(num_channels))
            for a in range(num_channels)
        )
        return cls(
            n=n,
            links=norm,
            channel_class=tuple(range(num_channels)),
            class_names=tuple(f"c{c}" for c in range(num_channels)),
            base_allowed=base,
            node_overrides={},
            pair_exceptions=(),
        )

    # -- derived channel structure (builder side) ----------------------
    def channel_ends(self) -> Tuple[List[int], List[int]]:
        """``(start, sink)`` arrays from the id convention."""
        start = [0] * self.num_channels
        sink = [0] * self.num_channels
        for k, (u, v) in enumerate(self.links):
            start[2 * k], sink[2 * k] = u, v
            start[2 * k + 1], sink[2 * k + 1] = v, u
        return start, sink

    def output_channels(self) -> List[List[int]]:
        start, _sink = self.channel_ends()
        out: List[List[int]] = [[] for _ in range(self.n)]
        for c in range(self.num_channels):
            out[start[c]].append(c)
        return out

    def allowed(self, a: int, b: int) -> bool:
        """May a worm holding channel *a* request channel *b* next?"""
        start, sink = self.channel_ends()
        return self._allowed_with(start, sink, a, b)

    def _allowed_with(
        self, start: List[int], sink: List[int], a: int, b: int
    ) -> bool:
        if sink[a] != start[b] or b == (a ^ 1):
            return False
        if (a, b) in self.pair_exceptions:
            return True
        matrix = self.node_overrides.get(sink[a], self.base_allowed)
        return matrix[self.channel_class[a]][self.channel_class[b]]

    def allowed_turn_edges(self) -> List[Pair]:
        """Every edge of the allowed-turn dependency digraph ``H``."""
        start, sink = self.channel_ends()
        out = self.output_channels()
        pair_set = set(self.pair_exceptions)
        edges: List[Pair] = []
        for a in range(self.num_channels):
            matrix = self.node_overrides.get(sink[a], self.base_allowed)
            row = matrix[self.channel_class[a]]
            for b in out[sink[a]]:
                if b == (a ^ 1):
                    continue
                if row[self.channel_class[b]] or (a, b) in pair_set:
                    edges.append((a, b))
        return edges

    def payload(self) -> Dict[str, object]:
        """The raw-facts section, JSON-able (certificate field layout)."""
        return {
            "n": self.n,
            "links": [list(l) for l in self.links],
            "channel_class": list(self.channel_class),
            "class_names": list(self.class_names),
            "base_allowed": [list(row) for row in self.base_allowed],
            "node_overrides": {
                str(v): [list(row) for row in m]
                for v, m in sorted(self.node_overrides.items())
            },
            "pair_exceptions": [list(p) for p in self.pair_exceptions],
        }


# ---------------------------------------------------------------------------
# graph primitives over channel digraphs (builder side)
# ---------------------------------------------------------------------------


def _adjacency(
    num_channels: int, edges: Iterable[Pair], banned: FrozenSet[Pair]
) -> List[List[int]]:
    adj: List[List[int]] = [[] for _ in range(num_channels)]
    for a, b in edges:
        if (a, b) not in banned:
            adj[a].append(b)
    return adj


def _kahn_order(adj: List[List[int]]) -> Optional[List[int]]:
    """A topological order of the channel digraph; ``None`` if cyclic."""
    n = len(adj)
    indeg = [0] * n
    for outs in adj:
        for b in outs:
            indeg[b] += 1
    ready = [v for v in range(n) if indeg[v] == 0]
    order: List[int] = []
    while ready:
        v = ready.pop()
        order.append(v)
        for b in adj[v]:
            indeg[b] -= 1
            if indeg[b] == 0:
                ready.append(b)
    return order if len(order) == n else None


def _find_cycle(adj: List[List[int]]) -> Optional[List[int]]:
    """Some directed cycle of the channel digraph (three-colour DFS)."""
    n = len(adj)
    colour = [0] * n  # 0 white, 1 grey, 2 black
    parent: Dict[int, int] = {}
    for root in range(n):
        if colour[root] != 0:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        colour[root] = 1
        while stack:
            v, i = stack[-1]
            if i < len(adj[v]):
                stack[-1] = (v, i + 1)
                w = adj[v][i]
                if colour[w] == 0:
                    colour[w] = 1
                    parent[w] = v
                    stack.append((w, 0))
                elif colour[w] == 1:
                    cycle = [v]
                    while cycle[-1] != w:
                        cycle.append(parent[cycle[-1]])
                    cycle.reverse()
                    return cycle
            else:
                colour[v] = 2
                stack.pop()
    return None


def _shortest_cycle(adj: List[List[int]]) -> Optional[List[int]]:
    """The shortest directed cycle (BFS from every node); ``None`` if acyclic."""
    n = len(adj)
    best: Optional[List[int]] = None
    for s in range(n):
        # shortest path back to s from each successor of s
        pred: Dict[int, int] = {}
        dist = {s: 0}
        frontier = [s]
        while frontier:
            nxt: List[int] = []
            for v in frontier:
                for w in adj[v]:
                    if w == s and v != s:
                        cycle = [v]
                        while cycle[-1] != s:
                            cycle.append(pred[cycle[-1]])
                        cycle.reverse()
                        if best is None or len(cycle) < len(best):
                            best = cycle
                        continue
                    if w not in dist:
                        dist[w] = dist[v] + 1
                        pred[w] = v
                        if best is None or dist[w] + 1 < len(best):
                            nxt.append(w)
            frontier = nxt
    return best


def _unreachable_pairs(
    n: int,
    out_channels: List[List[int]],
    sink: List[int],
    adj: List[List[int]],
    stop_early: bool = False,
) -> List[Pair]:
    """Ordered switch pairs no admissible channel path joins.

    Injection is unrestricted (the first channel of a path is free),
    so the walk starts from every output channel of the source and
    follows *adj* (the allowed-turn edges under consideration).
    """
    missing: List[Pair] = []
    for s in range(n):
        seen_ch = [False] * len(sink)
        reached = [False] * n
        reached[s] = True
        stack = list(out_channels[s])
        for c in stack:
            seen_ch[c] = True
        while stack:
            c = stack.pop()
            reached[sink[c]] = True
            for b in adj[c]:
                if not seen_ch[b]:
                    seen_ch[b] = True
                    stack.append(b)
        for d in range(n):
            if not reached[d]:
                missing.append((s, d))
                if stop_early:
                    return missing
    return missing


def _witness_paths(
    n: int,
    out_channels: List[List[int]],
    sink: List[int],
    adj: List[List[int]],
) -> List[Tuple[int, int, Tuple[int, ...]]]:
    """One admissible channel path per ordered pair (BFS per source)."""
    witnesses: List[Tuple[int, int, Tuple[int, ...]]] = []
    for s in range(n):
        pred: Dict[int, Optional[int]] = {}
        first: Dict[int, int] = {}
        frontier: List[int] = []
        for c in out_channels[s]:
            pred[c] = None
            frontier.append(c)
            first.setdefault(sink[c], c)
        while frontier:
            nxt: List[int] = []
            for c in frontier:
                for b in adj[c]:
                    if b not in pred:
                        pred[b] = c
                        nxt.append(b)
                        first.setdefault(sink[b], b)
            frontier = nxt
        for d in range(n):
            if d == s:
                continue
            c = first.get(d)
            if c is None:
                raise ValueError(
                    f"internal: pair ({s},{d}) lost during witness extraction"
                )
            path = [c]
            prev = pred[c]
            while prev is not None:
                path.append(prev)
                prev = pred[prev]
            path.reverse()
            witnesses.append((s, d, tuple(path)))
    return witnesses


# ---------------------------------------------------------------------------
# report structures
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExistenceWitness:
    """The constructive half: an acyclic connecting escape sub-relation.

    ``order`` is a topological order of the channels under ``relation``;
    ``relation`` lists the turns of the acyclic sub-digraph ``D``; and
    ``paths`` joins every ordered switch pair using only turns of ``D``.
    """

    order: Tuple[int, ...]
    relation: Tuple[Pair, ...]
    paths: Tuple[Tuple[int, int, Tuple[int, ...]], ...]

    def payload(self) -> Dict[str, object]:
        return {
            "order": list(self.order),
            "relation": [list(t) for t in self.relation],
            "paths": [[s, d, list(p)] for s, d, p in self.paths],
        }


@dataclass(frozen=True)
class InfeasibilityCore:
    """The destructive half: the smallest obstruction found.

    ``kind`` is one of:

    ``disconnected``
        *pairs* lists (a capped prefix of) the ordered switch pairs no
        allowed path joins at all.
    ``mandatory-cycle``
        *cycle* is a channel cycle each of whose consecutive turns is
        mandatory; *turns* carries ``(a, b, s, d)`` per cycle edge — the
        witness pair ``(s, d)`` becomes unroutable when the single turn
        ``a -> b`` is removed from the full relation.
    ``search-exhausted``
        the complete branch-and-bound found no acyclic connecting
        sub-relation; *cycle* documents the shortest full-relation
        cycle (structure checkable, the exhaustion claim is not).
    """

    kind: str
    pairs: Tuple[Pair, ...] = ()
    cycle: Tuple[int, ...] = ()
    turns: Tuple[Tuple[int, int, int, int], ...] = ()

    def payload(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "pairs": [list(p) for p in self.pairs],
            "cycle": list(self.cycle),
            "turns": [list(t) for t in self.turns],
        }


@dataclass(frozen=True)
class ExistenceReport:
    """Digest-stamped outcome of one existence decision."""

    system: TurnSystem
    verdict: str
    stats: Mapping[str, object]
    witness: Optional[ExistenceWitness] = None
    core: Optional[InfeasibilityCore] = None
    digest: str = field(default="", compare=False)

    def payload(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "format": EXISTENCE_FORMAT,
            "verdict": self.verdict,
            "stats": dict(self.stats),
            **self.system.payload(),
        }
        if self.witness is not None:
            out["witness"] = self.witness.payload()
        if self.core is not None:
            out["core"] = self.core.payload()
        if self.digest:
            out["digest"] = self.digest
        return out

    def to_json(self) -> str:
        return json.dumps(self.payload(), separators=(",", ":"))

    def summary(self) -> str:
        bits = [
            f"existence[{self.verdict}]",
            f"{self.stats.get('num_channels', '?')} channels",
            f"{self.stats.get('allowed_turns', '?')} allowed turns",
        ]
        if self.witness is not None:
            bits.append(f"witness over {len(self.witness.relation)} turns")
        if self.core is not None:
            bits.append(f"core: {self.core.kind}")
        return ", ".join(bits)


def _stamp(report: ExistenceReport) -> ExistenceReport:
    return replace(report, digest=_canonical_digest(report.payload()))


def full_relation_acyclic(system: TurnSystem) -> bool:
    """Is the *full* allowed-turn dependency digraph ``H`` acyclic?

    This is the Theorem-1 certification criterion (a PT whose full
    relation is acyclic certifies *every* routing built under it), as
    opposed to the existence criterion decided by
    :func:`decide_existence` (which only needs an acyclic
    *sub*-relation).  The turn-optimality auditor relaxes prohibitions
    under this stronger predicate — existence alone is monotone in the
    allowed set and would declare every prohibition redundant.
    """
    adj = _adjacency(
        system.num_channels, system.allowed_turn_edges(), frozenset()
    )
    return _kahn_order(adj) is not None


# ---------------------------------------------------------------------------
# the decision procedure
# ---------------------------------------------------------------------------


def decide_existence(
    system: TurnSystem, budget: int = DEFAULT_BUDGET
) -> ExistenceReport:
    """Decide whether a deadlock-free connected routing exists.

    Returns a digest-stamped :class:`ExistenceReport` whose verdict is
    ``feasible`` (with a checkable :class:`ExistenceWitness`),
    ``infeasible`` (with an :class:`InfeasibilityCore`) or ``unknown``
    (the step-4 search budget ran out; never produced for systems the
    fast paths resolve).  See the module docstring for the procedure.
    """
    num_channels = system.num_channels
    _start, sink = system.channel_ends()
    out_channels = system.output_channels()
    edges = system.allowed_turn_edges()
    full_adj = _adjacency(num_channels, edges, frozenset())

    stats: Dict[str, object] = {
        "num_channels": num_channels,
        "allowed_turns": len(edges),
        "budget": budget,
        "search_nodes": 0,
        "mandatory_turns": 0,
    }

    # -- step 1: reachability screen -----------------------------------
    missing = _unreachable_pairs(system.n, out_channels, sink, full_adj)
    stats["unreachable_pairs"] = len(missing)
    stats["full_relation_acyclic"] = _kahn_order(full_adj) is not None
    if missing:
        return _stamp(
            ExistenceReport(
                system=system,
                verdict=INFEASIBLE,
                stats=stats,
                core=InfeasibilityCore(
                    kind="disconnected",
                    pairs=tuple(missing[:_MAX_CORE_PAIRS]),
                ),
            )
        )

    # -- step 2: acyclic fast path -------------------------------------
    if stats["full_relation_acyclic"]:
        order = _kahn_order(full_adj)
        assert order is not None
        return _stamp(
            ExistenceReport(
                system=system,
                verdict=FEASIBLE,
                stats=stats,
                witness=ExistenceWitness(
                    order=tuple(order),
                    relation=tuple(edges),
                    paths=tuple(
                        _witness_paths(system.n, out_channels, sink, full_adj)
                    ),
                ),
            )
        )

    # -- step 3: mandatory-cycle obstruction ---------------------------
    mandatory: Dict[Pair, Pair] = {}
    for turn in edges:
        adj_wo = _adjacency(num_channels, edges, frozenset({turn}))
        lost = _unreachable_pairs(
            system.n, out_channels, sink, adj_wo, stop_early=True
        )
        if lost:
            mandatory[turn] = lost[0]
    stats["mandatory_turns"] = len(mandatory)
    mand_adj: List[List[int]] = [[] for _ in range(num_channels)]
    for a, b in mandatory:
        mand_adj[a].append(b)
    mand_cycle = _shortest_cycle(mand_adj)
    if mand_cycle is not None:
        turns = []
        for i, a in enumerate(mand_cycle):
            b = mand_cycle[(i + 1) % len(mand_cycle)]
            s, d = mandatory[(a, b)]
            turns.append((a, b, s, d))
        return _stamp(
            ExistenceReport(
                system=system,
                verdict=INFEASIBLE,
                stats=stats,
                core=InfeasibilityCore(
                    kind="mandatory-cycle",
                    cycle=tuple(mand_cycle),
                    turns=tuple(turns),
                ),
            )
        )

    # -- step 4: bounded branch-and-bound over turn removals -----------
    nodes = 0
    budget_hit = False
    mandatory_set = frozenset(mandatory)

    def connects(banned: FrozenSet[Pair]) -> bool:
        adj_b = _adjacency(num_channels, edges, banned)
        return not _unreachable_pairs(
            system.n, out_channels, sink, adj_b, stop_early=True
        )

    def search(banned: FrozenSet[Pair]) -> Optional[FrozenSet[Pair]]:
        nonlocal nodes, budget_hit
        if nodes >= budget:
            budget_hit = True
            return None
        nodes += 1
        adj_b = _adjacency(num_channels, edges, banned)
        cycle = _find_cycle(adj_b)
        if cycle is None:
            return banned
        for i, a in enumerate(cycle):
            b = cycle[(i + 1) % len(cycle)]
            turn = (a, b)
            if turn in mandatory_set:
                continue
            trial = banned | {turn}
            if not connects(trial):
                continue
            found = search(trial)
            if found is not None:
                return found
            if budget_hit:
                return None
        return None

    removed = search(frozenset())
    stats["search_nodes"] = nodes
    if removed is not None:
        stats["removed_turns"] = len(removed)
        kept = [t for t in edges if t not in removed]
        sub_adj = _adjacency(num_channels, edges, removed)
        order = _kahn_order(sub_adj)
        assert order is not None  # search returned an acyclic relation
        return _stamp(
            ExistenceReport(
                system=system,
                verdict=FEASIBLE,
                stats=stats,
                witness=ExistenceWitness(
                    order=tuple(order),
                    relation=tuple(kept),
                    paths=tuple(
                        _witness_paths(system.n, out_channels, sink, sub_adj)
                    ),
                ),
            )
        )
    if budget_hit:
        return _stamp(
            ExistenceReport(system=system, verdict=UNKNOWN, stats=stats)
        )
    shortest = _shortest_cycle(full_adj)
    return _stamp(
        ExistenceReport(
            system=system,
            verdict=INFEASIBLE,
            stats=stats,
            core=InfeasibilityCore(
                kind="search-exhausted",
                cycle=tuple(shortest or ()),
            ),
        )
    )
