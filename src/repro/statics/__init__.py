"""Static verification: certificates, an independent checker, a linter.

Theorem 1 is enforced at run time by
:func:`repro.routing.verification.verify_routing`, but that check shares
its traversal code (:mod:`repro.routing.channel_graph`) with the
builders it polices — a bug there could self-certify a cyclic routing
function, exactly the failure mode the paper's Section 4.3
transcription error warns about.  This package closes the loop with the
*certifying algorithms* discipline:

``certificates``
    :func:`certify_routing` emits a serializable, digest-stamped
    :class:`CertificateBundle` — an explicit topological order of the
    turn-restricted channel dependency graph (deadlock freedom, the
    Dally-Seitz condition), one witness path per ordered switch pair
    (connectivity), and distance-decrease witnesses (progress).
``check``
    An independent re-checker that validates a certificate (or an
    existence report) against only the raw topology adjacency and turn
    prohibitions.  It imports nothing from :mod:`repro.routing` or
    :mod:`repro.core`, so a bug in the construction stack cannot
    certify itself.
``existence``
    The prior question: does *any* deadlock-free connected routing
    exist under a prohibited-turn set?  A stdlib-only decision
    procedure (:func:`decide_existence`) returning a digest-stamped
    :class:`ExistenceReport` — a constructive witness or a minimal
    infeasibility core, both re-verifiable through ``check``.
``audit``
    The turn-optimality auditor: per topology, how much of DOWN/UP's
    18-turn prohibition is vacuous or redundant under the Theorem-1
    certification criterion (:func:`audit_topology`).
``preflight``
    Enumerates every degraded state a
    :class:`~repro.faults.schedule.FaultSchedule` can induce and
    certifies the rebuilt routing for each *before* any simulation
    cycles are burnt.
``lint``
    An AST-based invariant linter with repo-specific rules (engine
    clock only, RNG through :mod:`repro.util.rng`, routing tables
    written only by builders, builders wrapped in ``verify_routing``),
    run in CI as the ``static-analysis`` job.
"""

from repro.statics.certificates import (
    CERT_FORMAT,
    CertificateBundle,
    ConnectivityCertificate,
    DeadlockFreedomCertificate,
    ProgressCertificate,
    certify_routing,
    compute_digest,
)
from repro.statics.check import (
    CertificateError,
    CheckFailure,
    CheckReport,
    check_certificate,
    check_existence_report,
    recheck,
    recheck_existence,
)
from repro.statics.existence import (
    EXISTENCE_FORMAT,
    ExistenceReport,
    ExistenceWitness,
    InfeasibilityCore,
    TurnSystem,
    decide_existence,
    full_relation_acyclic,
)
from repro.statics.audit import (
    TurnAuditReport,
    audit_existence,
    audit_topology,
)
from repro.statics.preflight import (
    FaultState,
    PreflightEntry,
    induced_fault_states,
    preflight_schedule,
)
from repro.statics.lint import (
    Violation,
    lint_file,
    lint_paths,
)

__all__ = [
    "CERT_FORMAT",
    "CertificateBundle",
    "ConnectivityCertificate",
    "DeadlockFreedomCertificate",
    "ProgressCertificate",
    "certify_routing",
    "compute_digest",
    "CertificateError",
    "CheckFailure",
    "CheckReport",
    "check_certificate",
    "check_existence_report",
    "recheck",
    "recheck_existence",
    "EXISTENCE_FORMAT",
    "ExistenceReport",
    "ExistenceWitness",
    "InfeasibilityCore",
    "TurnSystem",
    "decide_existence",
    "full_relation_acyclic",
    "TurnAuditReport",
    "audit_existence",
    "audit_topology",
    "FaultState",
    "PreflightEntry",
    "induced_fault_states",
    "preflight_schedule",
    "Violation",
    "lint_file",
    "lint_paths",
]
