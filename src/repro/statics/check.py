"""The independent certificate checker.

This module re-validates a :mod:`repro.statics.certificates` bundle
against nothing but the raw facts the bundle itself carries: the
topology's link list and the turn prohibitions (class matrices,
per-node overrides, channel-pair releases).  It deliberately imports
**nothing** from :mod:`repro.routing`, :mod:`repro.core` or any other
construction code — channels are re-derived here from the documented
id convention (link ``k`` joining ``u < v`` yields channel ``2k`` =
``<u, v>`` and ``2k+1`` = ``<v, u>``), and the allowed-turn predicate
is re-implemented from the matrices directly.  A bug in the builders'
shared traversal code (``channel_graph``, ``cycle_detection``)
therefore cannot self-certify: the certificate it emits would fail
here.

Each check is intentionally trivial (the certifying-algorithms
discipline):

* **deadlock freedom** — the claimed topological order is a permutation
  of the channels and every allowed dependency edge points forward;
* **connectivity** — every ordered switch pair has a witness path, and
  walking it crosses only allowed turns;
* **progress** — distances are locally consistent (zero exactly at the
  destination) and every en-route state has a strictly-decreasing,
  allowed witness hop;
* **integrity** — the SHA-256 digest matches the canonical payload.

All failures are collected into a :class:`CheckReport`; :func:`recheck`
raises :class:`CertificateError` on the first bad report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

_FORMAT = "repro-cert-v1"
_MAX_FAILURES = 50


class CertificateError(ValueError):
    """A certificate failed independent re-validation."""

    def __init__(self, message: str, report: Optional["CheckReport"] = None):
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class CheckFailure:
    """One independent-checker finding."""

    code: str
    message: str


@dataclass
class CheckReport:
    """Outcome of one certificate re-validation."""

    algorithm: str = ""
    digest: str = ""
    num_channels: int = 0
    dependency_edges: int = 0
    witness_pairs: int = 0
    progress_states: int = 0
    failures: List[CheckFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, code: str, message: str) -> None:
        if len(self.failures) < _MAX_FAILURES:
            self.failures.append(CheckFailure(code, message))

    def summary(self) -> str:
        state = "OK" if self.ok else f"FAILED ({len(self.failures)})"
        return (
            f"certificate[{self.algorithm}] {state}: "
            f"{self.dependency_edges} dependency edges, "
            f"{self.witness_pairs} witness paths, "
            f"{self.progress_states} progress states"
        )


def _digest(body: Mapping[str, object]) -> str:
    canonical = json.dumps(
        {k: v for k, v in body.items() if k != "digest"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _as_payload(cert: Union[str, Mapping[str, object], object]) -> Mapping[str, object]:
    """Accept JSON text, a payload dict, or a CertificateBundle-alike."""
    if isinstance(cert, str):
        return json.loads(cert)
    if isinstance(cert, Mapping):
        return cert
    payload = getattr(cert, "payload", None)
    if callable(payload):
        return payload()
    raise TypeError(f"cannot interpret {type(cert).__name__} as a certificate")


def check_certificate(
    cert: Union[str, Mapping[str, object], object]
) -> CheckReport:
    """Independently re-validate *cert*; return a :class:`CheckReport`.

    *cert* may be the JSON text, the decoded payload dict, or a
    :class:`~repro.statics.certificates.CertificateBundle` (anything
    with a ``payload()`` method) — in every case only the payload data
    is consulted.
    """
    report = CheckReport()
    try:
        data = _as_payload(cert)
    except (TypeError, ValueError) as exc:
        report.fail("malformed", str(exc))
        return report

    report.algorithm = str(data.get("algorithm", "?"))
    if data.get("format") != _FORMAT:
        report.fail("format", f"unsupported format {data.get('format')!r}")
        return report

    claimed_digest = str(data.get("digest", ""))
    report.digest = claimed_digest
    if not claimed_digest:
        report.fail("digest", "certificate carries no digest")
    else:
        actual = _digest(data)
        if actual != claimed_digest:
            report.fail(
                "digest",
                f"digest mismatch: stamped {claimed_digest}, payload "
                f"hashes to {actual}",
            )

    # ------------------------------------------------------------------
    # raw facts: rebuild the channel model from the link list alone
    # ------------------------------------------------------------------
    try:
        n = int(data["n"])
        links = [(int(u), int(v)) for u, v in data["links"]]
        channel_class = [int(c) for c in data["channel_class"]]
        base = [[bool(x) for x in row] for row in data["base_allowed"]]
        overrides = {
            int(v): [[bool(x) for x in row] for row in m]
            for v, m in data["node_overrides"].items()
        }
        pair_exceptions = {
            (int(a), int(b)) for a, b in data["pair_exceptions"]
        }
    except (KeyError, TypeError, ValueError) as exc:
        report.fail("malformed", f"payload is not well-formed: {exc!r}")
        return report

    if n <= 0:
        report.fail("topology", f"invalid switch count {n}")
        return report
    seen_links = set()
    for u, v in links:
        if not (0 <= u < n and 0 <= v < n) or u == v:
            report.fail("topology", f"invalid link ({u},{v}) for n={n}")
        key = (u, v) if u < v else (v, u)
        if key in seen_links:
            report.fail("topology", f"duplicate link ({u},{v})")
        seen_links.add(key)

    num_channels = 2 * len(links)
    report.num_channels = num_channels
    # channel id convention: link k = (u, v) -> cid 2k is u->v, 2k+1 is v->u
    start = [0] * num_channels
    sink = [0] * num_channels
    for k, (u, v) in enumerate(links):
        start[2 * k], sink[2 * k] = u, v
        start[2 * k + 1], sink[2 * k + 1] = v, u
    out_channels: List[List[int]] = [[] for _ in range(n)]
    for c in range(num_channels):
        out_channels[start[c]].append(c)

    k_classes = len(base)
    if any(len(row) != k_classes for row in base):
        report.fail("turns", "base_allowed is not square")
        return report
    if len(channel_class) != num_channels:
        report.fail(
            "turns",
            f"channel_class has {len(channel_class)} entries for "
            f"{num_channels} channels",
        )
        return report
    if any(not (0 <= c < k_classes) for c in channel_class):
        report.fail("turns", "channel class out of range")
        return report
    for v, m in overrides.items():
        if not (0 <= v < n):
            report.fail("turns", f"override for non-existent switch {v}")
        if len(m) != k_classes or any(len(row) != k_classes for row in m):
            report.fail("turns", f"override matrix at switch {v} is not {k_classes}x{k_classes}")
    for a, b in pair_exceptions:
        if not (0 <= a < num_channels and 0 <= b < num_channels):
            report.fail("turns", f"pair exception ({a},{b}) out of range")
        elif sink[a] != start[b]:
            report.fail(
                "turns",
                f"pair exception ({a},{b}) does not meet at a switch",
            )
        elif b == (a ^ 1):
            report.fail("turns", f"pair exception ({a},{b}) is a U-turn")
    if not report.ok:
        return report

    def allowed(a: int, b: int) -> bool:
        """May a worm holding channel *a* request channel *b* next?"""
        if sink[a] != start[b] or b == (a ^ 1):
            return False
        if (a, b) in pair_exceptions:
            return True
        matrix = overrides.get(sink[a], base)
        return matrix[channel_class[a]][channel_class[b]]

    # ------------------------------------------------------------------
    # claim 1: deadlock freedom via the topological order
    # ------------------------------------------------------------------
    order = [int(c) for c in data["deadlock"]["order"]]
    if sorted(order) != list(range(num_channels)):
        report.fail(
            "deadlock",
            f"topological order is not a permutation of the "
            f"{num_channels} channels ({len(order)} entries)",
        )
    else:
        pos = [0] * num_channels
        for i, c in enumerate(order):
            pos[c] = i
        edges = 0
        for a in range(num_channels):
            for b in out_channels[sink[a]]:
                if allowed(a, b):
                    edges += 1
                    if pos[a] >= pos[b]:
                        report.fail(
                            "deadlock",
                            f"dependency {a}->{b} is allowed but runs "
                            f"backwards in the claimed order "
                            f"(pos {pos[a]} >= {pos[b]})",
                        )
        report.dependency_edges = edges

    # ------------------------------------------------------------------
    # claim 2: connectivity via witness paths
    # ------------------------------------------------------------------
    witnessed = set()
    for s, d, path in data["connectivity"]["witnesses"]:
        s, d = int(s), int(d)
        path = [int(c) for c in path]
        pair = (s, d)
        if pair in witnessed:
            report.fail("connectivity", f"duplicate witness for {pair}")
            continue
        witnessed.add(pair)
        if not (0 <= s < n and 0 <= d < n) or s == d:
            report.fail("connectivity", f"invalid witness pair {pair}")
            continue
        if not path:
            report.fail("connectivity", f"empty witness path for {pair}")
            continue
        if any(not (0 <= c < num_channels) for c in path):
            report.fail("connectivity", f"witness for {pair} uses an unknown channel")
            continue
        if start[path[0]] != s:
            report.fail(
                "connectivity",
                f"witness for {pair} starts at switch {start[path[0]]}, "
                f"not {s}",
            )
        if sink[path[-1]] != d:
            report.fail(
                "connectivity",
                f"witness for {pair} ends at switch {sink[path[-1]]}, "
                f"not {d}",
            )
        for a, b in zip(path[:-1], path[1:]):
            if sink[a] != start[b]:
                report.fail(
                    "connectivity",
                    f"witness for {pair} breaks at {a}->{b}: channels do "
                    f"not meet at a switch",
                )
            elif not allowed(a, b):
                report.fail(
                    "connectivity",
                    f"witness for {pair} crosses a prohibited turn "
                    f"{a}->{b} at switch {sink[a]}",
                )
    missing = [
        (s, d)
        for d in range(n)
        for s in range(n)
        if s != d and (s, d) not in witnessed
    ]
    for pair in missing[:5]:
        report.fail("connectivity", f"no witness path for pair {pair}")
    if len(missing) > 5:
        report.fail(
            "connectivity",
            f"... and {len(missing) - 5} further pairs without a witness",
        )
    report.witness_pairs = len(witnessed)

    # ------------------------------------------------------------------
    # claim 3: progress via distance-decrease witnesses
    # ------------------------------------------------------------------
    prog = data["progress"]
    unreachable = int(prog["unreachable"])
    dist = [[int(x) for x in row] for row in prog["dist"]]
    if len(dist) != n or any(len(row) != num_channels for row in dist):
        report.fail("progress", "distance table has the wrong shape")
        return report
    hop_witness: Dict[Tuple[int, int], int] = {}
    for d, c, b in prog["witnesses"]:
        hop_witness[(int(d), int(c))] = int(b)
    states = 0
    for d in range(n):
        row = dist[d]
        for c in range(num_channels):
            rem = row[c]
            if rem == 0 and sink[c] != d:
                report.fail(
                    "progress",
                    f"dist[{d}][{c}] is 0 but channel {c} sinks at "
                    f"{sink[c]}, not {d}",
                )
            if sink[c] == d and rem not in (0, unreachable):
                report.fail(
                    "progress",
                    f"channel {c} sinks at its destination {d} but "
                    f"dist is {rem}",
                )
            if 0 < rem < unreachable:
                states += 1
                b = hop_witness.get((d, c))
                if b is None:
                    report.fail(
                        "progress",
                        f"no witness hop for dest {d}, channel {c} at "
                        f"distance {rem}",
                    )
                    continue
                if not (0 <= b < num_channels):
                    report.fail(
                        "progress",
                        f"witness hop {b} for dest {d}, channel {c} is "
                        f"not a channel",
                    )
                    continue
                if not allowed(c, b):
                    report.fail(
                        "progress",
                        f"witness hop {c}->{b} for dest {d} crosses a "
                        f"prohibited turn",
                    )
                if row[b] != rem - 1:
                    report.fail(
                        "progress",
                        f"witness hop {c}->{b} for dest {d} does not "
                        f"decrease distance ({rem} -> {row[b]})",
                    )
    report.progress_states = states
    return report


def recheck(cert: Union[str, Mapping[str, object], object]) -> CheckReport:
    """Run :func:`check_certificate`; raise :class:`CertificateError` on failure."""
    report = check_certificate(cert)
    if not report.ok:
        first = report.failures[0]
        raise CertificateError(
            f"certificate for {report.algorithm!r} failed independent "
            f"re-validation: [{first.code}] {first.message} "
            f"({len(report.failures)} failure(s) total)",
            report,
        )
    return report
