"""The independent certificate checker.

This module re-validates a :mod:`repro.statics.certificates` bundle —
and, via :func:`check_existence_report`, a
:mod:`repro.statics.existence` report — against nothing but the raw
facts the artifact itself carries: the topology's link list and the
turn prohibitions (class matrices, per-node overrides, channel-pair
releases).  It deliberately imports **nothing** from
:mod:`repro.routing`, :mod:`repro.core` or any other construction code
— channels are re-derived here from the documented id convention (link
``k`` joining ``u < v`` yields channel ``2k`` = ``<u, v>`` and ``2k+1``
= ``<v, u>``), and the allowed-turn predicate is re-implemented from
the matrices directly.  A bug in the builders' shared traversal code
(``channel_graph``, ``cycle_detection``, ``existence``) therefore
cannot self-certify: the certificate it emits would fail here.

Each check is intentionally trivial (the certifying-algorithms
discipline):

* **deadlock freedom** — the claimed topological order is a permutation
  of the channels and every allowed dependency edge points forward;
* **connectivity** — every ordered switch pair has a witness path, and
  walking it crosses only allowed turns;
* **progress** — distances are locally consistent (zero exactly at the
  destination) and every en-route state has a strictly-decreasing,
  allowed witness hop;
* **integrity** — the SHA-256 digest matches the canonical payload.

All failures are collected into a :class:`CheckReport`; :func:`recheck`
raises :class:`CertificateError` on the first bad report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

_FORMAT = "repro-cert-v1"
_EXIST_FORMAT = "repro-exist-v1"
_MAX_FAILURES = 50


class CertificateError(ValueError):
    """A certificate failed independent re-validation."""

    def __init__(self, message: str, report: Optional["CheckReport"] = None):
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class CheckFailure:
    """One independent-checker finding."""

    code: str
    message: str


@dataclass
class CheckReport:
    """Outcome of one certificate re-validation."""

    algorithm: str = ""
    digest: str = ""
    num_channels: int = 0
    dependency_edges: int = 0
    witness_pairs: int = 0
    progress_states: int = 0
    failures: List[CheckFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def fail(self, code: str, message: str) -> None:
        if len(self.failures) < _MAX_FAILURES:
            self.failures.append(CheckFailure(code, message))

    def summary(self) -> str:
        state = "OK" if self.ok else f"FAILED ({len(self.failures)})"
        return (
            f"certificate[{self.algorithm}] {state}: "
            f"{self.dependency_edges} dependency edges, "
            f"{self.witness_pairs} witness paths, "
            f"{self.progress_states} progress states"
        )


def _digest(body: Mapping[str, object]) -> str:
    canonical = json.dumps(
        {k: v for k, v in body.items() if k != "digest"},
        sort_keys=True,
        separators=(",", ":"),
    )
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _as_payload(cert: Union[str, Mapping[str, object], object]) -> Mapping[str, object]:
    """Accept JSON text, a payload dict, or a CertificateBundle-alike."""
    if isinstance(cert, str):
        return json.loads(cert)
    if isinstance(cert, Mapping):
        return cert
    payload = getattr(cert, "payload", None)
    if callable(payload):
        return payload()
    raise TypeError(f"cannot interpret {type(cert).__name__} as a certificate")


class _RawFacts:
    """The channel model re-derived from a payload's raw-facts section.

    Shared by certificate and existence-report checking — both artifact
    kinds carry the same raw-facts field layout, and the rebuild is
    pure fact validation (no claim is endorsed here).
    """

    __slots__ = ("n", "num_channels", "start", "sink", "out_channels", "allowed")

    def __init__(
        self,
        n: int,
        num_channels: int,
        start: List[int],
        sink: List[int],
        out_channels: List[List[int]],
        allowed: "Callable[[int, int], bool]",
    ):
        self.n = n
        self.num_channels = num_channels
        self.start = start
        self.sink = sink
        self.out_channels = out_channels
        self.allowed = allowed


def _check_raw_facts(
    data: Mapping[str, object], report: CheckReport
) -> Optional[_RawFacts]:
    """Rebuild the channel model from the link list alone.

    Records failures on *report* and returns ``None`` when the payload
    cannot be trusted further (including when earlier checks — digest,
    say — already failed; claims are never validated against suspect
    facts).
    """
    try:
        n = int(data["n"])
        links = [(int(u), int(v)) for u, v in data["links"]]
        channel_class = [int(c) for c in data["channel_class"]]
        base = [[bool(x) for x in row] for row in data["base_allowed"]]
        overrides = {
            int(v): [[bool(x) for x in row] for row in m]
            for v, m in data["node_overrides"].items()
        }
        pair_exceptions = {
            (int(a), int(b)) for a, b in data["pair_exceptions"]
        }
    except (KeyError, TypeError, ValueError) as exc:
        report.fail("malformed", f"payload is not well-formed: {exc!r}")
        return None

    if n <= 0:
        report.fail("topology", f"invalid switch count {n}")
        return None
    seen_links = set()
    for u, v in links:
        if not (0 <= u < n and 0 <= v < n) or u == v:
            report.fail("topology", f"invalid link ({u},{v}) for n={n}")
        key = (u, v) if u < v else (v, u)
        if key in seen_links:
            report.fail("topology", f"duplicate link ({u},{v})")
        seen_links.add(key)

    num_channels = 2 * len(links)
    report.num_channels = num_channels
    # channel id convention: link k = (u, v) -> cid 2k is u->v, 2k+1 is v->u
    start = [0] * num_channels
    sink = [0] * num_channels
    for k, (u, v) in enumerate(links):
        start[2 * k], sink[2 * k] = u, v
        start[2 * k + 1], sink[2 * k + 1] = v, u
    out_channels: List[List[int]] = [[] for _ in range(n)]
    for c in range(num_channels):
        out_channels[start[c]].append(c)

    k_classes = len(base)
    if any(len(row) != k_classes for row in base):
        report.fail("turns", "base_allowed is not square")
        return None
    if len(channel_class) != num_channels:
        report.fail(
            "turns",
            f"channel_class has {len(channel_class)} entries for "
            f"{num_channels} channels",
        )
        return None
    if any(not (0 <= c < k_classes) for c in channel_class):
        report.fail("turns", "channel class out of range")
        return None
    for v, m in overrides.items():
        if not (0 <= v < n):
            report.fail("turns", f"override for non-existent switch {v}")
        if len(m) != k_classes or any(len(row) != k_classes for row in m):
            report.fail("turns", f"override matrix at switch {v} is not {k_classes}x{k_classes}")
    for a, b in pair_exceptions:
        if not (0 <= a < num_channels and 0 <= b < num_channels):
            report.fail("turns", f"pair exception ({a},{b}) out of range")
        elif sink[a] != start[b]:
            report.fail(
                "turns",
                f"pair exception ({a},{b}) does not meet at a switch",
            )
        elif b == (a ^ 1):
            report.fail("turns", f"pair exception ({a},{b}) is a U-turn")
    if not report.ok:
        return None

    def allowed(a: int, b: int) -> bool:
        """May a worm holding channel *a* request channel *b* next?"""
        if sink[a] != start[b] or b == (a ^ 1):
            return False
        if (a, b) in pair_exceptions:
            return True
        matrix = overrides.get(sink[a], base)
        return matrix[channel_class[a]][channel_class[b]]

    return _RawFacts(n, num_channels, start, sink, out_channels, allowed)


def check_certificate(
    cert: Union[str, Mapping[str, object], object]
) -> CheckReport:
    """Independently re-validate *cert*; return a :class:`CheckReport`.

    *cert* may be the JSON text, the decoded payload dict, or a
    :class:`~repro.statics.certificates.CertificateBundle` (anything
    with a ``payload()`` method) — in every case only the payload data
    is consulted.
    """
    report = CheckReport()
    try:
        data = _as_payload(cert)
    except (TypeError, ValueError) as exc:
        report.fail("malformed", str(exc))
        return report

    report.algorithm = str(data.get("algorithm", "?"))
    if data.get("format") != _FORMAT:
        report.fail("format", f"unsupported format {data.get('format')!r}")
        return report

    claimed_digest = str(data.get("digest", ""))
    report.digest = claimed_digest
    if not claimed_digest:
        report.fail("digest", "certificate carries no digest")
    else:
        actual = _digest(data)
        if actual != claimed_digest:
            report.fail(
                "digest",
                f"digest mismatch: stamped {claimed_digest}, payload "
                f"hashes to {actual}",
            )

    # ------------------------------------------------------------------
    # raw facts: rebuild the channel model from the link list alone
    # ------------------------------------------------------------------
    facts = _check_raw_facts(data, report)
    if facts is None:
        return report
    n = facts.n
    num_channels = facts.num_channels
    start, sink = facts.start, facts.sink
    out_channels = facts.out_channels
    allowed = facts.allowed

    # ------------------------------------------------------------------
    # claim 1: deadlock freedom via the topological order
    # ------------------------------------------------------------------
    order = [int(c) for c in data["deadlock"]["order"]]
    if sorted(order) != list(range(num_channels)):
        report.fail(
            "deadlock",
            f"topological order is not a permutation of the "
            f"{num_channels} channels ({len(order)} entries)",
        )
    else:
        pos = [0] * num_channels
        for i, c in enumerate(order):
            pos[c] = i
        edges = 0
        for a in range(num_channels):
            for b in out_channels[sink[a]]:
                if allowed(a, b):
                    edges += 1
                    if pos[a] >= pos[b]:
                        report.fail(
                            "deadlock",
                            f"dependency {a}->{b} is allowed but runs "
                            f"backwards in the claimed order "
                            f"(pos {pos[a]} >= {pos[b]})",
                        )
        report.dependency_edges = edges

    # ------------------------------------------------------------------
    # claim 2: connectivity via witness paths
    # ------------------------------------------------------------------
    witnessed = set()
    for s, d, path in data["connectivity"]["witnesses"]:
        s, d = int(s), int(d)
        path = [int(c) for c in path]
        pair = (s, d)
        if pair in witnessed:
            report.fail("connectivity", f"duplicate witness for {pair}")
            continue
        witnessed.add(pair)
        if not (0 <= s < n and 0 <= d < n) or s == d:
            report.fail("connectivity", f"invalid witness pair {pair}")
            continue
        if not path:
            report.fail("connectivity", f"empty witness path for {pair}")
            continue
        if any(not (0 <= c < num_channels) for c in path):
            report.fail("connectivity", f"witness for {pair} uses an unknown channel")
            continue
        if start[path[0]] != s:
            report.fail(
                "connectivity",
                f"witness for {pair} starts at switch {start[path[0]]}, "
                f"not {s}",
            )
        if sink[path[-1]] != d:
            report.fail(
                "connectivity",
                f"witness for {pair} ends at switch {sink[path[-1]]}, "
                f"not {d}",
            )
        for a, b in zip(path[:-1], path[1:]):
            if sink[a] != start[b]:
                report.fail(
                    "connectivity",
                    f"witness for {pair} breaks at {a}->{b}: channels do "
                    f"not meet at a switch",
                )
            elif not allowed(a, b):
                report.fail(
                    "connectivity",
                    f"witness for {pair} crosses a prohibited turn "
                    f"{a}->{b} at switch {sink[a]}",
                )
    missing = [
        (s, d)
        for d in range(n)
        for s in range(n)
        if s != d and (s, d) not in witnessed
    ]
    for pair in missing[:5]:
        report.fail("connectivity", f"no witness path for pair {pair}")
    if len(missing) > 5:
        report.fail(
            "connectivity",
            f"... and {len(missing) - 5} further pairs without a witness",
        )
    report.witness_pairs = len(witnessed)

    # ------------------------------------------------------------------
    # claim 3: progress via distance-decrease witnesses
    # ------------------------------------------------------------------
    prog = data["progress"]
    unreachable = int(prog["unreachable"])
    dist = [[int(x) for x in row] for row in prog["dist"]]
    if len(dist) != n or any(len(row) != num_channels for row in dist):
        report.fail("progress", "distance table has the wrong shape")
        return report
    hop_witness: Dict[Tuple[int, int], int] = {}
    for d, c, b in prog["witnesses"]:
        hop_witness[(int(d), int(c))] = int(b)
    states = 0
    for d in range(n):
        row = dist[d]
        for c in range(num_channels):
            rem = row[c]
            if rem == 0 and sink[c] != d:
                report.fail(
                    "progress",
                    f"dist[{d}][{c}] is 0 but channel {c} sinks at "
                    f"{sink[c]}, not {d}",
                )
            if sink[c] == d and rem not in (0, unreachable):
                report.fail(
                    "progress",
                    f"channel {c} sinks at its destination {d} but "
                    f"dist is {rem}",
                )
            if 0 < rem < unreachable:
                states += 1
                b = hop_witness.get((d, c))
                if b is None:
                    report.fail(
                        "progress",
                        f"no witness hop for dest {d}, channel {c} at "
                        f"distance {rem}",
                    )
                    continue
                if not (0 <= b < num_channels):
                    report.fail(
                        "progress",
                        f"witness hop {b} for dest {d}, channel {c} is "
                        f"not a channel",
                    )
                    continue
                if not allowed(c, b):
                    report.fail(
                        "progress",
                        f"witness hop {c}->{b} for dest {d} crosses a "
                        f"prohibited turn",
                    )
                if row[b] != rem - 1:
                    report.fail(
                        "progress",
                        f"witness hop {c}->{b} for dest {d} does not "
                        f"decrease distance ({rem} -> {row[b]})",
                    )
    report.progress_states = states
    return report


def recheck(cert: Union[str, Mapping[str, object], object]) -> CheckReport:
    """Run :func:`check_certificate`; raise :class:`CertificateError` on failure."""
    report = check_certificate(cert)
    if not report.ok:
        first = report.failures[0]
        raise CertificateError(
            f"certificate for {report.algorithm!r} failed independent "
            f"re-validation: [{first.code}] {first.message} "
            f"({len(report.failures)} failure(s) total)",
            report,
        )
    return report


# ---------------------------------------------------------------------------
# existence reports (repro.statics.existence)
# ---------------------------------------------------------------------------


def _full_relation_adjacency(facts: _RawFacts) -> List[List[int]]:
    """The full allowed-turn digraph, re-derived by the checker alone."""
    return [
        [b for b in facts.out_channels[facts.sink[a]] if facts.allowed(a, b)]
        for a in range(facts.num_channels)
    ]


def _is_acyclic(adj: List[List[int]]) -> bool:
    """Kahn peeling, local to the checker (no code shared with builders)."""
    indeg = [0] * len(adj)
    for outs in adj:
        for b in outs:
            indeg[b] += 1
    ready = [v for v in range(len(adj)) if indeg[v] == 0]
    done = 0
    while ready:
        v = ready.pop()
        done += 1
        for b in adj[v]:
            indeg[b] -= 1
            if indeg[b] == 0:
                ready.append(b)
    return done == len(adj)


def _pair_reachable(
    facts: _RawFacts, s: int, d: int, banned_turn: Optional[Tuple[int, int]]
) -> bool:
    """Does any allowed channel path join s -> d (optionally minus one turn)?

    Injection is unrestricted: the walk starts from every output channel
    of *s* and follows the allowed predicate only.
    """
    if s == d:
        return True
    seen = [False] * facts.num_channels
    stack: List[int] = []
    for c in facts.out_channels[s]:
        seen[c] = True
        stack.append(c)
    while stack:
        c = stack.pop()
        if facts.sink[c] == d:
            return True
        for b in facts.out_channels[facts.sink[c]]:
            if seen[b] or not facts.allowed(c, b):
                continue
            if banned_turn is not None and (c, b) == banned_turn:
                continue
            seen[b] = True
            stack.append(b)
    return False


def _check_existence_witness(
    data: Mapping[str, object], facts: _RawFacts, report: CheckReport
) -> None:
    """Endorse a ``feasible`` verdict: acyclic escape relation + paths."""
    witness = data.get("witness")
    if not isinstance(witness, Mapping):
        report.fail("witness", "feasible verdict carries no witness")
        return
    try:
        order = [int(c) for c in witness["order"]]
        relation = [(int(a), int(b)) for a, b in witness["relation"]]
        paths = [
            (int(s), int(d), [int(c) for c in p])
            for s, d, p in witness["paths"]
        ]
    except (KeyError, TypeError, ValueError) as exc:
        report.fail("malformed", f"witness is not well-formed: {exc!r}")
        return

    num_channels = facts.num_channels
    if sorted(order) != list(range(num_channels)):
        report.fail(
            "deadlock",
            f"escape order is not a permutation of the {num_channels} "
            f"channels ({len(order)} entries)",
        )
        return
    pos = [0] * num_channels
    for i, c in enumerate(order):
        pos[c] = i

    rel: Set[Tuple[int, int]] = set()
    for a, b in relation:
        if not (0 <= a < num_channels and 0 <= b < num_channels):
            report.fail("relation", f"relation edge {a}->{b} is not a channel pair")
            continue
        if not facts.allowed(a, b):
            report.fail(
                "relation",
                f"relation edge {a}->{b} is not an allowed turn",
            )
        elif pos[a] >= pos[b]:
            report.fail(
                "deadlock",
                f"relation edge {a}->{b} runs backwards in the claimed "
                f"order (pos {pos[a]} >= {pos[b]})",
            )
        rel.add((a, b))
    report.dependency_edges = len(rel)

    witnessed: Set[Tuple[int, int]] = set()
    for s, d, path in paths:
        pair = (s, d)
        if pair in witnessed:
            report.fail("connectivity", f"duplicate witness for {pair}")
            continue
        witnessed.add(pair)
        if not (0 <= s < facts.n and 0 <= d < facts.n) or s == d:
            report.fail("connectivity", f"invalid witness pair {pair}")
            continue
        if not path:
            report.fail("connectivity", f"empty witness path for {pair}")
            continue
        if any(not (0 <= c < num_channels) for c in path):
            report.fail(
                "connectivity", f"witness for {pair} uses an unknown channel"
            )
            continue
        if facts.start[path[0]] != s:
            report.fail(
                "connectivity",
                f"witness for {pair} starts at switch "
                f"{facts.start[path[0]]}, not {s}",
            )
        if facts.sink[path[-1]] != d:
            report.fail(
                "connectivity",
                f"witness for {pair} ends at switch "
                f"{facts.sink[path[-1]]}, not {d}",
            )
        for a, b in zip(path[:-1], path[1:]):
            if facts.sink[a] != facts.start[b]:
                report.fail(
                    "connectivity",
                    f"witness for {pair} breaks at {a}->{b}: channels do "
                    f"not meet at a switch",
                )
            elif (a, b) not in rel:
                # stricter than the certificate check on purpose: the
                # witness must stay inside the *escape* relation, not
                # merely inside the allowed relation
                report.fail(
                    "connectivity",
                    f"witness for {pair} uses turn {a}->{b} outside the "
                    f"escape relation",
                )
    missing = [
        (s, d)
        for d in range(facts.n)
        for s in range(facts.n)
        if s != d and (s, d) not in witnessed
    ]
    for pair in missing[:5]:
        report.fail("connectivity", f"no witness path for pair {pair}")
    if len(missing) > 5:
        report.fail(
            "connectivity",
            f"... and {len(missing) - 5} further pairs without a witness",
        )
    report.witness_pairs = len(witnessed)


def _check_existence_core(
    data: Mapping[str, object], facts: _RawFacts, report: CheckReport
) -> None:
    """Endorse an ``infeasible`` verdict's obstruction core."""
    core = data.get("core")
    if not isinstance(core, Mapping):
        report.fail("core", "infeasible verdict carries no core")
        return
    kind = str(core.get("kind", "?"))

    if kind == "disconnected":
        try:
            pairs = [(int(s), int(d)) for s, d in core.get("pairs", [])]
        except (TypeError, ValueError) as exc:
            report.fail("malformed", f"core pairs are not well-formed: {exc!r}")
            return
        if not pairs:
            report.fail("core", "disconnected core lists no pairs")
        for s, d in pairs:
            if not (0 <= s < facts.n and 0 <= d < facts.n) or s == d:
                report.fail("core", f"invalid disconnected pair ({s},{d})")
            elif _pair_reachable(facts, s, d, banned_turn=None):
                report.fail(
                    "core",
                    f"pair ({s},{d}) claimed disconnected, but an allowed "
                    f"path joins it",
                )
        report.witness_pairs = len(pairs)
        return

    if kind == "mandatory-cycle":
        try:
            cycle = [int(c) for c in core.get("cycle", [])]
            turns = {
                (int(a), int(b)): (int(s), int(d))
                for a, b, s, d in core.get("turns", [])
            }
        except (TypeError, ValueError) as exc:
            report.fail("malformed", f"core cycle is not well-formed: {exc!r}")
            return
        if len(cycle) < 2 or len(set(cycle)) != len(cycle):
            report.fail("core", "mandatory cycle is degenerate")
            return
        if any(not (0 <= c < facts.num_channels) for c in cycle):
            report.fail("core", "mandatory cycle uses an unknown channel")
            return
        edges = [
            (cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
        ]
        for a, b in edges:
            if not facts.allowed(a, b):
                report.fail(
                    "core",
                    f"cycle turn {a}->{b} is not an allowed turn — the "
                    f"cycle is not realizable",
                )
                continue
            witness = turns.get((a, b))
            if witness is None:
                report.fail(
                    "core", f"no mandatory witness for cycle turn {a}->{b}"
                )
                continue
            s, d = witness
            if not (0 <= s < facts.n and 0 <= d < facts.n) or s == d:
                report.fail(
                    "core",
                    f"invalid mandatory witness pair ({s},{d}) for turn "
                    f"{a}->{b}",
                )
            elif _pair_reachable(facts, s, d, banned_turn=(a, b)):
                report.fail(
                    "core",
                    f"turn {a}->{b} is not mandatory: ({s},{d}) stays "
                    f"reachable without it",
                )
        report.dependency_edges = len(edges)
        return

    if kind == "search-exhausted":
        # Only the obstruction cycle's *structure* is checkable here;
        # the exhaustive-search claim itself rests on the decision
        # procedure's completeness argument, not on this checker.
        try:
            cycle = [int(c) for c in core.get("cycle", [])]
        except (TypeError, ValueError) as exc:
            report.fail("malformed", f"core cycle is not well-formed: {exc!r}")
            return
        for i, a in enumerate(cycle):
            b = cycle[(i + 1) % len(cycle)]
            if not (
                0 <= a < facts.num_channels and 0 <= b < facts.num_channels
            ) or not facts.allowed(a, b):
                report.fail(
                    "core",
                    f"documented cycle turn {a}->{b} is not an allowed turn",
                )
        return

    report.fail("core", f"unknown core kind {kind!r}")


def check_existence_report(
    rep: Union[str, Mapping[str, object], object]
) -> CheckReport:
    """Independently re-validate an existence report.

    *rep* may be the JSON text, the decoded payload dict, or an
    :class:`~repro.statics.existence.ExistenceReport` (anything with a
    ``payload()`` method).  No traversal code is shared with
    :mod:`repro.statics.existence`: channels are re-derived from the
    link list, the allowed-turn predicate is re-implemented from the
    matrices, and reachability is re-walked with a local search.

    What is endorsed depends on the verdict:

    * ``feasible`` — the escape order is a permutation, every relation
      edge is an allowed turn pointing forward in the order, and every
      ordered switch pair has a witness path staying *inside* the
      escape relation;
    * ``infeasible`` — a ``disconnected`` core's pairs really have no
      allowed path, and a ``mandatory-cycle`` core's every turn really
      disconnects its witness pair when removed (``search-exhausted``
      cores get structure checks only — see their docstring);
    * ``unknown`` — nothing beyond format, digest and raw facts (there
      is no claim to endorse).

    The report's ``full_relation_acyclic`` stat is always re-derived —
    the turn-optimality auditor's relax loop depends on it.
    """
    report = CheckReport()
    try:
        data = _as_payload(rep)
    except (TypeError, ValueError) as exc:
        report.fail("malformed", str(exc))
        return report

    verdict = str(data.get("verdict", "?"))
    report.algorithm = f"existence[{verdict}]"
    if data.get("format") != _EXIST_FORMAT:
        report.fail("format", f"unsupported format {data.get('format')!r}")
        return report

    claimed_digest = str(data.get("digest", ""))
    report.digest = claimed_digest
    if not claimed_digest:
        report.fail("digest", "existence report carries no digest")
    else:
        actual = _digest(data)
        if actual != claimed_digest:
            report.fail(
                "digest",
                f"digest mismatch: stamped {claimed_digest}, payload "
                f"hashes to {actual}",
            )

    facts = _check_raw_facts(data, report)
    if facts is None:
        return report

    stats = data.get("stats")
    if isinstance(stats, Mapping) and "full_relation_acyclic" in stats:
        claimed_acyclic = bool(stats["full_relation_acyclic"])
        actual_acyclic = _is_acyclic(_full_relation_adjacency(facts))
        if claimed_acyclic != actual_acyclic:
            report.fail(
                "stats",
                f"full_relation_acyclic claimed {claimed_acyclic}, but the "
                f"checker finds {actual_acyclic}",
            )

    if verdict == "feasible":
        _check_existence_witness(data, facts, report)
    elif verdict == "infeasible":
        _check_existence_core(data, facts, report)
    elif verdict != "unknown":
        report.fail("verdict", f"unknown verdict {verdict!r}")
    return report


def recheck_existence(
    rep: Union[str, Mapping[str, object], object]
) -> CheckReport:
    """Run :func:`check_existence_report`; raise on a bad report."""
    report = check_existence_report(rep)
    if not report.ok:
        first = report.failures[0]
        raise CertificateError(
            f"existence report failed independent re-validation: "
            f"[{first.code}] {first.message} "
            f"({len(report.failures)} failure(s) total)",
            report,
        )
    return report
