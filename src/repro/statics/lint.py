"""AST-based repo invariant linter (the ``static-analysis`` CI gate).

The codebase's determinism guarantees — byte-identical reruns under
fixed seeds, engine-clock-only time, routing tables written exclusively
by verified builders — were previously enforced by convention.  This
linter enforces them statically, with seven repo-specific rules:

``STA001`` *engine clock only*
    No wall-clock reads (``time.time``, ``time.perf_counter``,
    ``time.monotonic``, ...) anywhere in ``repro`` except the one
    sanctioned source, :mod:`repro.util.wallclock`.  Simulation and
    fault logic must use the engine clock; anything needing elapsed
    wall time takes an injectable clock.

``STA002`` *RNG through repro.util.rng*
    No direct ``numpy.random`` constructors or stdlib ``random`` calls
    outside :mod:`repro.util.rng` — every stochastic component takes an
    explicit seeded source, which is what keeps experiment campaigns
    paired across algorithms and reproducible across runs.

``STA003`` *routing tables are builder-only*
    No writes to ``first_hops`` / ``next_hops`` / ``channel_class``
    attributes outside the builder modules (``routing/base.py``,
    ``routing/table.py``, ``routing/serialization.py``,
    ``faults/controller.py``).  The engine fast path caches rows from
    these tables; a stray in-place mutation would silently desynchronise
    the cache.

``STA004`` *builders verify*
    Every ``build_*_routing`` function returning a ``RoutingFunction``
    must pass its result through ``verify_routing`` — the Theorem-1
    gate no construction is allowed to skip.

``STA005`` *no unverified deserialization*
    No calls to the serialization loaders (``routing_from_json``,
    ``load_routing``, ``tree_from_json``, ``load_tree``) with their
    re-verification flag literally disabled (``verify=False`` /
    ``validate=False``) outside :mod:`repro.experiments.artifacts` —
    the artifact cache alone may skip re-verification, because it
    substitutes a per-entry payload checksum plus a content-addressed
    input-closure key for it.  Everywhere else, loaded bytes are
    untrusted and must pass the full Theorem-1 / Definition-2 checks.

``STA006`` *no numpy.random references outside repro.util.rng*
    STA002 bans *calling* into ``numpy.random``; this closes the
    loophole of smuggling the module or its constructors out by
    reference (``factory = np.random.default_rng``,
    ``make(np.random)``, ``from numpy.random import default_rng``
    then aliasing it) and constructing elsewhere.  Any ``numpy.random``
    reference outside :mod:`repro.util.rng` is flagged — except type
    annotations (``rng: np.random.Generator`` documents an *injected*
    source, exactly the sanctioned pattern) and the call targets STA002
    already reports.

``STA007`` *accelerator backends only through repro.util.xp*
    No direct ``cupy`` / ``torch`` / ``jax`` imports outside
    :mod:`repro.util.xp` — the optional array backends are
    feature-gated behind the ``REPRO_ARRAY_BACKEND`` seam (numpy-only
    in CI), and a stray direct import would make a module fail to load
    on machines without the accelerator stack installed.

Run as ``python -m repro.statics.lint [paths...]`` (defaults to the
installed ``repro`` package); exits non-zero when violations exist.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

#: modules allowed to read the wall clock (STA001)
WALLCLOCK_ALLOWED = frozenset({"repro/util/wallclock.py"})

#: modules allowed to construct raw random sources (STA002)
RNG_ALLOWED = frozenset({"repro/util/rng.py"})

#: modules allowed to write routing-table attributes (STA003)
TABLE_BUILDER_MODULES = frozenset(
    {
        "repro/routing/base.py",
        "repro/routing/table.py",
        "repro/routing/serialization.py",
        "repro/faults/controller.py",
    }
)

#: fully-qualified wall-clock calls banned by STA001
WALLCLOCK_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
)

#: dotted-prefixes banned by STA002 (call targets)
RNG_BANNED_PREFIXES = ("numpy.random.", "random.")

#: attributes only builders may assign (STA003)
TABLE_ATTRIBUTES = frozenset({"first_hops", "next_hops", "channel_class"})

#: modules allowed to deserialize with re-verification disabled (STA005):
#: the artifact cache, whose entry checksums substitute for it
UNVERIFIED_DESERIALIZATION_ALLOWED = frozenset(
    {"repro/experiments/artifacts.py"}
)

#: serialization loaders guarded by STA005, with the positional index
#: of their verification flag
GUARDED_LOADERS: Dict[str, int] = {
    "routing_from_json": 1,
    "load_routing": 1,
    "tree_from_json": 1,
    "load_tree": 1,
}

#: the one module allowed to import accelerator array backends (STA007)
ARRAY_BACKEND_ALLOWED = frozenset({"repro/util/xp.py"})

#: accelerator top-level modules guarded by STA007
ARRAY_BACKEND_MODULES = frozenset({"cupy", "torch", "jax", "jaxlib"})

_BUILDER_NAME = re.compile(r"^build_\w+_routing$")


@dataclass(frozen=True)
class Violation:
    """One linter finding."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the dotted modules/objects they refer to."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.asname:
                    aliases[a.asname] = a.name
                else:
                    root = a.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _dotted_name(expr: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    """Resolve *expr* to a fully-qualified dotted name, or ``None``.

    Only chains rooted in an imported module name resolve — attribute
    access on local variables (e.g. ``rng.integers``) stays opaque,
    which is exactly what keeps the rules free of false positives.
    """
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def _normalise(full: str) -> str:
    """Canonicalise aliases numpy exposes (``np`` -> ``numpy`` handled
    upstream; here we fold ``numpy.random.mtrand`` style paths)."""
    return full.replace("numpy.random.mtrand", "numpy.random")


def _is_numpy_random(full: str) -> bool:
    return full == "numpy.random" or full.startswith("numpy.random.")


def _annotation_node_ids(tree: ast.Module) -> set:
    """ids of every AST node inside a type annotation.

    Annotations are the sanctioned place to *name* ``np.random.Generator``
    (they document an injected source, they construct nothing), so
    STA006 exempts them wholesale.
    """
    roots: List[ast.expr] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            a = node.args
            for arg in [*a.posonlyargs, *a.args, *a.kwonlyargs, a.vararg, a.kwarg]:
                if arg is not None and arg.annotation is not None:
                    roots.append(arg.annotation)
            if node.returns is not None:
                roots.append(node.returns)
        elif isinstance(node, ast.AnnAssign):
            roots.append(node.annotation)
    ids: set = set()
    for root in roots:
        for sub in ast.walk(root):
            ids.add(id(sub))
    return ids


def _function_returns_routing(node: ast.FunctionDef) -> bool:
    ann = node.returns
    if ann is None:
        return False
    if isinstance(ann, ast.Name):
        return ann.id == "RoutingFunction"
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        return ann.value.strip('"') == "RoutingFunction"
    if isinstance(ann, ast.Attribute):
        return ann.attr == "RoutingFunction"
    return False


def lint_source(
    source: str, path: str = "<string>", module_rel: Optional[str] = None
) -> List[Violation]:
    """Lint one module's *source*; *module_rel* is its ``repro/...``-relative
    posix path, used to apply the per-rule allow-lists."""
    rel = module_rel if module_rel is not None else _module_rel(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Violation(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                code="STA000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    aliases = _import_aliases(tree)
    out: List[Violation] = []

    def add(node: ast.AST, code: str, message: str) -> None:
        out.append(
            Violation(
                path=path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=message,
            )
        )

    # --- STA001 / STA002: banned call targets --------------------------
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        full = _dotted_name(node.func, aliases)
        if full is None:
            continue
        full = _normalise(full)
        if full in WALLCLOCK_BANNED and rel not in WALLCLOCK_ALLOWED:
            add(
                node,
                "STA001",
                f"wall-clock call {full}() — use the engine clock, or an "
                f"injectable clock from repro.util.wallclock",
            )
        if (
            any(full.startswith(p) for p in RNG_BANNED_PREFIXES)
            and rel not in RNG_ALLOWED
        ):
            add(
                node,
                "STA002",
                f"direct RNG construction {full}() — take an explicit "
                f"seeded source via repro.util.rng instead",
            )

    # --- STA006: numpy.random references beyond call targets -----------
    if rel not in RNG_ALLOWED:
        exempt = _annotation_node_ids(tree)
        # the call targets STA002 already reports: exempt the func
        # expression so one smuggled constructor yields one finding
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                full = _dotted_name(node.func, aliases)
                if full is not None and _is_numpy_random(_normalise(full)):
                    for sub in ast.walk(node.func):
                        exempt.add(id(sub))
        # ast.walk visits parents before their children, so flagging a
        # chain's outermost node and exempting its descendants reports
        # `np.random.default_rng` once, not three times
        for node in ast.walk(tree):
            if id(node) in exempt:
                continue
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            full = _dotted_name(node, aliases)
            if full is None:
                continue
            full = _normalise(full)
            if _is_numpy_random(full):
                add(
                    node,
                    "STA006",
                    f"reference to {full} outside repro.util.rng — "
                    f"randomness must flow through an explicitly seeded "
                    f"source (type annotations are exempt)",
                )
                for sub in ast.walk(node):
                    exempt.add(id(sub))

    # --- STA005: unverified deserialization ----------------------------
    if rel not in UNVERIFIED_DESERIALIZATION_ALLOWED:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                lname = func.attr
            elif isinstance(func, ast.Name):
                lname = func.id
            else:
                continue
            flag_idx = GUARDED_LOADERS.get(lname)
            if flag_idx is None:
                continue
            disabled = any(
                kw.arg in ("verify", "validate")
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is False
                for kw in node.keywords
            ) or (
                len(node.args) > flag_idx
                and isinstance(node.args[flag_idx], ast.Constant)
                and node.args[flag_idx].value is False
            )
            if disabled:
                add(
                    node,
                    "STA005",
                    f"{lname}() with re-verification disabled outside the "
                    f"artifact cache — only checksum-guarded cache entries "
                    f"may skip the Theorem-1/Definition-2 checks",
                )

    # --- STA007: accelerator imports only through repro.util.xp --------
    if rel not in ARRAY_BACKEND_ALLOWED:
        for node in ast.walk(tree):
            roots: List[str] = []
            if isinstance(node, ast.Import):
                roots = [a.name.split(".")[0] for a in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                roots = [node.module.split(".")[0]]
            for root in roots:
                if root in ARRAY_BACKEND_MODULES:
                    add(
                        node,
                        "STA007",
                        f"direct import of {root} — accelerator array "
                        f"backends are feature-gated behind repro.util.xp "
                        f"(REPRO_ARRAY_BACKEND); numpy stays the only "
                        f"hard dependency",
                    )

    # --- STA003: routing-table writes ----------------------------------
    if rel not in TABLE_BUILDER_MODULES:
        for node in ast.walk(tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for tgt in targets:
                # unwrap subscript chains: obj.first_hops[i][j] = ...
                base = tgt
                while isinstance(base, ast.Subscript):
                    base = base.value
                if (
                    isinstance(base, ast.Attribute)
                    and base.attr in TABLE_ATTRIBUTES
                ):
                    add(
                        tgt,
                        "STA003",
                        f"write to routing table attribute "
                        f"'.{base.attr}' outside a builder module — "
                        f"tables are immutable once verified",
                    )

    # --- STA004: builders must verify ----------------------------------
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        if not _BUILDER_NAME.match(node.name):
            continue
        if not _function_returns_routing(node):
            continue
        mentions_verify = any(
            isinstance(sub, ast.Name) and sub.id == "verify_routing"
            for body_stmt in node.body
            for sub in ast.walk(body_stmt)
        )
        if not mentions_verify:
            add(
                node,
                "STA004",
                f"builder {node.name}() returns a RoutingFunction without "
                f"passing it through verify_routing()",
            )
    return out


def _module_rel(path: Path) -> str:
    """The ``repro/...`` posix path of *path* (for the allow-lists)."""
    parts = path.as_posix().split("/")
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.name


def lint_file(
    path: Path, module_rel: Optional[str] = None
) -> List[Violation]:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(
        path.read_text(encoding="utf-8"),
        path=str(path),
        module_rel=module_rel,
    )


def lint_paths(paths: Iterable[Path]) -> List[Violation]:
    """Lint every ``*.py`` file under *paths* (files or directories)."""
    out: List[Violation] = []
    for root in paths:
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for f in files:
            out.extend(lint_file(f))
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        args = [str(Path(__file__).resolve().parents[1])]
    violations = lint_paths(Path(a) for a in args)
    for v in violations:
        print(v.render())
    if violations:
        print(f"{len(violations)} invariant violation(s)")
        return 1
    print("invariant linter: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
