"""Deadlock-freedom certificates (the builder side).

A *certificate* turns ``verify_routing``'s pass/fail verdict into an
explicit, serializable witness that a trivially simple checker can
re-validate (certifying-algorithms discipline; cf. the Dally-Seitz
acyclicity condition and Duato's escape-channel condition):

* :class:`DeadlockFreedomCertificate` — a topological order of the
  turn-restricted channel dependency graph.  Acyclicity follows from
  the order's existence; the checker only has to confirm that every
  allowed dependency edge points forward in the order.
* :class:`ConnectivityCertificate` — one admissible witness path per
  ordered switch pair.  Connectivity follows from the paths existing;
  the checker only has to walk each one and confirm every turn is
  allowed.
* :class:`ProgressCertificate` — the remaining-distance table plus one
  strictly-decreasing witness hop per en-route state, ruling out
  stranding and (with acyclicity) livelock.

The bundle also embeds the raw facts the claims are *about* — the
topology's link list and the turn prohibitions (class matrices plus
per-node released turns) — and is stamped with a SHA-256 digest over
its canonical JSON, so a certificate can be archived next to results
and re-audited later by :mod:`repro.statics.check`, which shares no
traversal code with this module.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.routing.base import RoutingFunction
from repro.routing.channel_graph import dependency_adjacency
from repro.routing.verification import VerificationError

CERT_FORMAT = "repro-cert-v1"


def compute_digest(payload: Mapping[str, object]) -> str:
    """SHA-256 over the canonical JSON of *payload* (digest key excluded)."""
    body = {k: v for k, v in payload.items() if k != "digest"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return "sha256:" + hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class DeadlockFreedomCertificate:
    """A topological order of the channel dependency graph.

    ``order`` lists every channel id exactly once; the claim is that
    every allowed dependency ``a -> b`` has ``a`` before ``b``.
    ``released_turns`` echoes the per-node Phase-3 class releases
    ``(switch, cls_in, cls_out)`` and ``released_pairs`` the
    channel-pair-granular ones, so an auditor sees exactly which
    prohibitions were lifted relative to the base matrix.
    """

    order: Tuple[int, ...]
    released_turns: Tuple[Tuple[int, int, int], ...] = ()
    released_pairs: Tuple[Tuple[int, int], ...] = ()

    def payload(self) -> Dict[str, object]:
        return {
            "order": list(self.order),
            "released_turns": [list(t) for t in self.released_turns],
            "released_pairs": [list(p) for p in self.released_pairs],
        }


@dataclass(frozen=True)
class ConnectivityCertificate:
    """One admissible witness path (channel-id sequence) per ordered pair."""

    witnesses: Tuple[Tuple[int, int, Tuple[int, ...]], ...]

    def payload(self) -> Dict[str, object]:
        return {
            "witnesses": [[s, d, list(path)] for s, d, path in self.witnesses]
        }


@dataclass(frozen=True)
class ProgressCertificate:
    """Distance table + one strictly-decreasing witness hop per state.

    ``dist[d][c]`` is the remaining hop count after traversing channel
    ``c`` toward destination ``d`` (``unreachable`` when none); each
    witness ``(d, c, b)`` claims ``b`` is an allowed continuation with
    ``dist[d][b] == dist[d][c] - 1``.
    """

    unreachable: int
    dist: Tuple[Tuple[int, ...], ...]
    witnesses: Tuple[Tuple[int, int, int], ...]

    def payload(self) -> Dict[str, object]:
        return {
            "unreachable": self.unreachable,
            "dist": [list(row) for row in self.dist],
            "witnesses": [list(w) for w in self.witnesses],
        }


@dataclass(frozen=True)
class CertificateBundle:
    """Everything a checker needs: raw facts, claims, witnesses, digest."""

    algorithm: str
    n: int
    links: Tuple[Tuple[int, int], ...]
    channel_class: Tuple[int, ...]
    class_names: Tuple[str, ...]
    base_allowed: Tuple[Tuple[bool, ...], ...]
    node_overrides: Mapping[int, Tuple[Tuple[bool, ...], ...]]
    pair_exceptions: Tuple[Tuple[int, int], ...]
    deadlock: DeadlockFreedomCertificate
    connectivity: ConnectivityCertificate
    progress: ProgressCertificate
    digest: str = field(default="", compare=False)

    def payload(self) -> Dict[str, object]:
        """The JSON-able dict form (digest included when stamped)."""
        out: Dict[str, object] = {
            "format": CERT_FORMAT,
            "algorithm": self.algorithm,
            "n": self.n,
            "links": [list(l) for l in self.links],
            "channel_class": list(self.channel_class),
            "class_names": list(self.class_names),
            "base_allowed": [list(row) for row in self.base_allowed],
            "node_overrides": {
                str(v): [list(row) for row in m]
                for v, m in sorted(self.node_overrides.items())
            },
            "pair_exceptions": [list(p) for p in self.pair_exceptions],
            "deadlock": self.deadlock.payload(),
            "connectivity": self.connectivity.payload(),
            "progress": self.progress.payload(),
        }
        if self.digest:
            out["digest"] = self.digest
        return out

    def to_json(self) -> str:
        return json.dumps(self.payload(), separators=(",", ":"))

    @classmethod
    def from_payload(cls, data: Mapping[str, object]) -> "CertificateBundle":
        if data.get("format") != CERT_FORMAT:
            raise ValueError(
                f"unsupported certificate format {data.get('format')!r}"
            )
        dl = data["deadlock"]
        cn = data["connectivity"]
        pg = data["progress"]
        return cls(
            algorithm=str(data["algorithm"]),
            n=int(data["n"]),
            links=tuple((int(u), int(v)) for u, v in data["links"]),
            channel_class=tuple(int(c) for c in data["channel_class"]),
            class_names=tuple(str(s) for s in data["class_names"]),
            base_allowed=tuple(
                tuple(bool(x) for x in row) for row in data["base_allowed"]
            ),
            node_overrides={
                int(v): tuple(tuple(bool(x) for x in row) for row in m)
                for v, m in data["node_overrides"].items()
            },
            pair_exceptions=tuple(
                (int(a), int(b)) for a, b in data["pair_exceptions"]
            ),
            deadlock=DeadlockFreedomCertificate(
                order=tuple(int(c) for c in dl["order"]),
                released_turns=tuple(
                    (int(v), int(i), int(j)) for v, i, j in dl["released_turns"]
                ),
                released_pairs=tuple(
                    (int(a), int(b)) for a, b in dl["released_pairs"]
                ),
            ),
            connectivity=ConnectivityCertificate(
                witnesses=tuple(
                    (int(s), int(d), tuple(int(c) for c in path))
                    for s, d, path in cn["witnesses"]
                )
            ),
            progress=ProgressCertificate(
                unreachable=int(pg["unreachable"]),
                dist=tuple(tuple(int(x) for x in row) for row in pg["dist"]),
                witnesses=tuple(
                    (int(d), int(c), int(b)) for d, c, b in pg["witnesses"]
                ),
            ),
            digest=str(data.get("digest", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "CertificateBundle":
        return cls.from_payload(json.loads(text))


def _topological_order(adj: List[List[int]]) -> Optional[List[int]]:
    """Kahn's algorithm; ``None`` when the graph is cyclic."""
    n = len(adj)
    indeg = [0] * n
    for outs in adj:
        for b in outs:
            indeg[b] += 1
    ready = [v for v in range(n) if indeg[v] == 0]
    order: List[int] = []
    while ready:
        v = ready.pop()
        order.append(v)
        for b in adj[v]:
            indeg[b] -= 1
            if indeg[b] == 0:
                ready.append(b)
    return order if len(order) == n else None


def _witness_suffix(
    routing: RoutingFunction,
    dest: int,
    first: int,
    memo: Dict[int, Tuple[int, ...]],
) -> Tuple[int, ...]:
    """The witness path that *starts* with channel ``first`` toward *dest*.

    The certified path always continues with the first candidate row
    entry, so every source whose first hop lands on the same channel
    shares the same tail.  *memo* caches one suffix tuple per channel
    per destination: each channel's continuation is resolved once and
    the shared tuples are reused across all ``O(n)`` sources, instead
    of re-walking the table for every ordered pair.
    """
    dist = routing.dist[dest]
    nh = routing.next_hops[dest]
    chain = []
    c = first
    while c not in memo:
        if int(dist[c]) <= 0:
            memo[c] = (c,)
            break
        nxt = nh[c]
        if not nxt:
            raise VerificationError(
                f"{routing.name}: cannot certify connectivity — table "
                f"strands channel {c} toward {dest}",
                routing_name=routing.name,
                kind="stranded",
                stranded={"dest": dest, "channel": c},
            )
        chain.append(c)
        c = nxt[0]
    for c in reversed(chain):
        memo[c] = (c,) + memo[nh[c][0]]
    return memo[first]


def _witness_path(routing: RoutingFunction, src: int, dest: int) -> Tuple[int, ...]:
    """A concrete admissible path ``src -> dest``, read off the tables."""
    opts = routing.first_hops[dest][src]
    if not opts:
        raise VerificationError(
            f"{routing.name}: cannot certify connectivity — no admissible "
            f"path {src}->{dest}",
            routing_name=routing.name,
            kind="unroutable",
            unroutable=[(src, dest)],
        )
    return _witness_suffix(routing, dest, opts[0], {})


def certify_routing(
    routing: RoutingFunction, algorithm: Optional[str] = None
) -> CertificateBundle:
    """Produce the digest-stamped certificate bundle for *routing*.

    Raises :class:`~repro.routing.verification.VerificationError` when
    no certificate exists (cyclic dependency graph, unroutable pair,
    stranded state) — an invalid routing cannot be certified, only
    rejected.
    """
    tm = routing.turn_model
    topo = tm.topology
    adj = dependency_adjacency(tm)
    order = _topological_order(adj)
    if order is None:
        raise VerificationError(
            f"{routing.name}: cannot certify deadlock freedom — channel "
            f"dependency graph is cyclic",
            routing_name=routing.name,
            kind="cycle",
        )

    witnesses = []
    for d in range(topo.n):
        suffixes: Dict[int, Tuple[int, ...]] = {}
        fh = routing.first_hops[d]
        for s in range(topo.n):
            if s == d:
                continue
            opts = fh[s]
            if not opts:
                raise VerificationError(
                    f"{routing.name}: cannot certify connectivity — no "
                    f"admissible path {s}->{d}",
                    routing_name=routing.name,
                    kind="unroutable",
                    unroutable=[(s, d)],
                )
            witnesses.append((s, d, _witness_suffix(routing, d, opts[0], suffixes)))

    unreachable = int(RoutingFunction.UNREACHABLE)
    dist_rows = tuple(
        tuple(int(x) for x in routing.dist[d]) for d in range(topo.n)
    )
    hop_witnesses = []
    for d in range(topo.n):
        row = dist_rows[d]
        nh = routing.next_hops[d]
        for c in range(topo.num_channels):
            rem = row[c]
            if 0 < rem < unreachable:
                if not nh[c]:
                    raise VerificationError(
                        f"{routing.name}: cannot certify progress — dest "
                        f"{d}, channel {c} has no next hop",
                        routing_name=routing.name,
                        kind="stranded",
                        stranded={"dest": d, "channel": c, "remaining": rem},
                    )
                hop_witnesses.append((d, c, int(nh[c][0])))

    bundle = CertificateBundle(
        algorithm=algorithm if algorithm is not None else routing.name,
        n=topo.n,
        links=tuple(topo.links),
        channel_class=tuple(int(c) for c in tm.channel_class),
        class_names=tuple(tm.class_names),
        base_allowed=tuple(
            tuple(bool(x) for x in row) for row in tm.base_matrix
        ),
        node_overrides={
            v: tuple(tuple(bool(x) for x in row) for row in tm.allowed_matrix(v))
            for v in tm.overridden_switches()
        },
        pair_exceptions=tuple(tm.released_channel_pairs()),
        deadlock=DeadlockFreedomCertificate(
            order=tuple(order),
            released_turns=tuple(tm.released_turns()),
            released_pairs=tuple(tm.released_channel_pairs()),
        ),
        connectivity=ConnectivityCertificate(witnesses=tuple(witnesses)),
        progress=ProgressCertificate(
            unreachable=unreachable,
            dist=dist_rows,
            witnesses=tuple(hop_witnesses),
        ),
    )
    return replace(bundle, digest=compute_digest(bundle.payload()))
