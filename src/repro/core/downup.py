"""The DOWN/UP routing — Phases 1-3 assembled (Section 4).

``build_down_up_routing`` is the paper's headline construction:

* **Phase 1** — build the coordinated tree (M1/M2/M3) and the
  communication graph;
* **Phase 2** — apply the 18-turn prohibited set PT (the complement of
  the maximal ADDG ``ADDG_7``) at every switch;
* **Phase 3** — release the redundant ``*U_CROSS -> RD_TREE``
  prohibitions per switch via ``cycle_detection``.

The returned :class:`~repro.routing.base.RoutingFunction` routes over
shortest admissible paths and is machine-verified deadlock-free and
connected (Theorem 1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.communication_graph import CommunicationGraph
from repro.core.coordinated_tree import (
    CoordinatedTree,
    TreeMethod,
    build_coordinated_tree,
)
from repro.core.cycle_detection import release_redundant_turns
from repro.core.direction_graph import (
    DOWN_UP_PROHIBITED_TURNS,
    Turn,
)
from repro.core.directions import Direction, NUM_DIRECTIONS
from repro.routing.base import RoutingFunction, TurnModel
from repro.routing.table import build_routing_function
from repro.routing.verification import verify_routing
from repro.topology.graph import Topology
from repro.util.rng import RngLike


def down_up_turn_model(
    cg: CommunicationGraph,
    apply_phase3: bool = True,
    prohibited: frozenset = DOWN_UP_PROHIBITED_TURNS,
) -> TurnModel:
    """The DOWN/UP per-switch turn state for communication graph *cg*.

    *apply_phase3* toggles the Phase-3 release pass (ablation knob);
    *prohibited* defaults to the canonical PT and exists so tests can
    exercise alternative sets (e.g. the paper's printed erratum).
    """
    base = np.ones((NUM_DIRECTIONS, NUM_DIRECTIONS), dtype=bool)
    for t in prohibited:
        base[t.frm, t.to] = False
    tm = TurnModel(
        cg.topology,
        [int(d) for d in cg.direction],
        base,
        class_names=[d.name for d in Direction],
    )
    if apply_phase3:
        release_redundant_turns(tm)
    return tm


def build_down_up_routing(
    topology: Topology,
    method: TreeMethod = TreeMethod.M1,
    rng: RngLike = None,
    tree: Optional[CoordinatedTree] = None,
    apply_phase3: bool = True,
    verify: bool = True,
) -> RoutingFunction:
    """Construct the DOWN/UP routing function for *topology*.

    Parameters
    ----------
    method, rng:
        Coordinated-tree construction variant and its random source
        (only M2 consumes randomness).  Ignored when *tree* is given.
    tree:
        Use a pre-built coordinated tree (lets experiments share one
        tree between DOWN/UP and the baselines, as the paper does when
        comparing "under the same coordinated tree").
    apply_phase3:
        Whether to run the redundant-prohibited-turn release
        (True reproduces the paper; False is the ablation).
    verify:
        Run the Theorem-1 checks (deadlock freedom, connectivity,
        progress) before returning.  Always cheap; disable only inside
        tight benchmark loops that verify separately.
    """
    ct = tree if tree is not None else build_coordinated_tree(
        topology, method=method, rng=rng
    )
    cg = CommunicationGraph.from_tree(ct)
    tm = down_up_turn_model(cg, apply_phase3=apply_phase3)
    routing = build_routing_function(
        tm,
        name="down-up" if apply_phase3 else "down-up/no-release",
        meta={
            "tree_method": method.name if tree is None else "shared",
            "phase3": apply_phase3,
            "releases": len(tm.released_channel_pairs()),
            "tree": ct,
            "communication_graph": cg,
        },
    )
    return verify_routing(routing) if verify else routing
