"""The paper's primary contribution: the DOWN/UP routing construction.

Modules map one-to-one onto the paper's machinery:

``directions``
    The eight channel direction classes of Definition 5 and the relative
    node positions of Definition 4.
``coordinated_tree``
    BFS coordinated trees with preorder/level coordinates (Definition 2)
    and the ``M1`` / ``M2`` / ``M3`` child-ordering variants of Section 5.
``communication_graph``
    The direction-labelled channel graph (Definition 5).
``direction_graph``
    Direction graphs, DDGs/ADDGs, the paper's Phase-2 incremental
    maximal-ADDG construction, and the canonical 18-turn prohibited set.
``cycle_detection``
    Phase 3: per-node release of redundant prohibited turns.
``downup``
    Phases 1-3 glued into a verified :class:`~repro.routing.base.RoutingFunction`.
"""

from repro.core.directions import Direction, RelativePosition, relative_position
from repro.core.coordinated_tree import (
    CoordinatedTree,
    TreeMethod,
    build_coordinated_tree,
    choose_root,
)
from repro.core.communication_graph import CommunicationGraph
from repro.core.direction_graph import (
    DirectionGraph,
    Turn,
    build_maximal_addg,
    DOWN_UP_PROHIBITED_TURNS,
)
from repro.core.cycle_detection import release_redundant_turns
from repro.core.downup import build_down_up_routing

__all__ = [
    "Direction",
    "RelativePosition",
    "relative_position",
    "CoordinatedTree",
    "TreeMethod",
    "build_coordinated_tree",
    "choose_root",
    "CommunicationGraph",
    "DirectionGraph",
    "Turn",
    "build_maximal_addg",
    "DOWN_UP_PROHIBITED_TURNS",
    "release_redundant_turns",
    "build_down_up_routing",
]
