"""Channel directions of the communication graph (Definitions 4 and 5).

Given a coordinated tree, every switch carries a 2-D coordinate
``(x, y)`` — ``x`` the preorder rank, ``y`` the tree level.  The sink of
a channel then sits at one of six *relative positions* from the start
(Definition 4): left-up, left, left-down, right-up, right, right-down.
(Exactly six: preorder ranks are unique, so ``x`` never ties.)

Channel *directions* (Definition 5) refine the relative position with the
link type.  Tree links only ever connect a parent (left-up of the child)
and a child (right-down of the parent), giving ``LU_TREE`` / ``RD_TREE``;
cross links take the remaining six classes ``LU_CROSS``, ``LD_CROSS``,
``RU_CROSS``, ``RD_CROSS``, ``R_CROSS``, ``L_CROSS``.

This 8-way classification — in particular, that tree links and cross
links are *different types with different direction definitions* — is the
paper's stated advantage over the L-turn routing's L-R tree, where both
link types share one definition.
"""

from __future__ import annotations

import enum
from typing import Tuple


class RelativePosition(enum.Enum):
    """Position of a channel's sink relative to its start (Definition 4)."""

    LEFT_UP = "left-up"
    LEFT = "left"
    LEFT_DOWN = "left-down"
    RIGHT_UP = "right-up"
    RIGHT = "right"
    RIGHT_DOWN = "right-down"


class Direction(enum.IntEnum):
    """The eight channel directions of Definition 5.

    ``IntEnum`` with a dense 0..7 range so per-node allowed-turn state
    can live in flat 8x8 boolean arrays.
    """

    LU_TREE = 0
    RD_TREE = 1
    LU_CROSS = 2
    LD_CROSS = 3
    RU_CROSS = 4
    RD_CROSS = 5
    R_CROSS = 6
    L_CROSS = 7

    @property
    def is_tree(self) -> bool:
        """True for the two tree-link directions."""
        return self in (Direction.LU_TREE, Direction.RD_TREE)

    @property
    def is_cross(self) -> bool:
        """True for the six cross-link directions."""
        return not self.is_tree

    @property
    def is_upward(self) -> bool:
        """True if the sink is strictly closer to the root (smaller y)."""
        return self in (Direction.LU_TREE, Direction.LU_CROSS, Direction.RU_CROSS)

    @property
    def is_downward(self) -> bool:
        """True if the sink is strictly further from the root (larger y)."""
        return self in (Direction.RD_TREE, Direction.LD_CROSS, Direction.RD_CROSS)

    @property
    def is_horizontal(self) -> bool:
        """True if start and sink share a tree level."""
        return self in (Direction.R_CROSS, Direction.L_CROSS)


#: Number of direction classes (size of the complete direction graph).
NUM_DIRECTIONS = len(Direction)


def relative_position(
    start_xy: Tuple[int, int], sink_xy: Tuple[int, int]
) -> RelativePosition:
    """Classify *sink_xy* relative to *start_xy* (Definition 4).

    Raises ``ValueError`` on equal x coordinates: preorder ranks are
    unique, so two distinct switches can never share an x.
    """
    (x1, y1), (x2, y2) = start_xy, sink_xy
    if x2 == x1:
        raise ValueError(
            f"x coordinates must be unique, got {start_xy} and {sink_xy}"
        )
    if x2 < x1:
        if y2 < y1:
            return RelativePosition.LEFT_UP
        if y2 == y1:
            return RelativePosition.LEFT
        return RelativePosition.LEFT_DOWN
    if y2 < y1:
        return RelativePosition.RIGHT_UP
    if y2 == y1:
        return RelativePosition.RIGHT
    return RelativePosition.RIGHT_DOWN


_TREE_DIRECTION = {
    RelativePosition.LEFT_UP: Direction.LU_TREE,
    RelativePosition.RIGHT_DOWN: Direction.RD_TREE,
}

_CROSS_DIRECTION = {
    RelativePosition.LEFT_UP: Direction.LU_CROSS,
    RelativePosition.LEFT_DOWN: Direction.LD_CROSS,
    RelativePosition.RIGHT_UP: Direction.RU_CROSS,
    RelativePosition.RIGHT_DOWN: Direction.RD_CROSS,
    RelativePosition.RIGHT: Direction.R_CROSS,
    RelativePosition.LEFT: Direction.L_CROSS,
}


def classify_channel(
    start_xy: Tuple[int, int],
    sink_xy: Tuple[int, int],
    is_tree_link: bool,
) -> Direction:
    """Direction of a channel given endpoint coordinates (Definition 5).

    Tree links admit only ``LU_TREE``/``RD_TREE`` (a tree channel runs
    between a parent and a child, which are necessarily left-up /
    right-down of each other in preorder-x, level-y coordinates); any
    other relative position on a tree link indicates corrupt coordinates
    and raises ``ValueError``.
    """
    pos = relative_position(start_xy, sink_xy)
    if is_tree_link:
        try:
            return _TREE_DIRECTION[pos]
        except KeyError:
            raise ValueError(
                f"tree channel with relative position {pos.value}: "
                f"coordinates {start_xy}->{sink_xy} are not parent/child"
            ) from None
    return _CROSS_DIRECTION[pos]
