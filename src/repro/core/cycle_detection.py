"""Phase 3 — releasing redundant prohibited turns (Section 4.3).

Applying the global 18-turn prohibited set PT at every switch is overly
conservative: at many switches a prohibited turn cannot participate in
any turn cycle of the concrete communication graph (the paper's Figure 7
example).  The ``cycle_detection`` algorithm walks every switch and, for
each (input, output) channel pair whose turn is one of the *releasable*
candidates, releases the turn unless doing so would close a turn cycle.

The paper restricts the candidates to ``T(LU_CROSS -> RD_TREE)`` and
``T(RU_CROSS -> RD_TREE)`` because (a) only those help push traffic away
from the root toward the leaves and (b) nearly every switch has an
``RD_TREE`` output, so these prohibitions are the most numerous in a CG.

The paper's pseudo-code performs an explicit marked-edge DFS from the
candidate output channel looking for a walk that re-enters the switch on
the candidate input channel; that is exactly reachability of ``e_in``
from ``e_out`` in the channel dependency graph.  The engine implementing
this (shared with the baselines — the paper notes its algorithm is
"similar to that in [4]") lives in :mod:`repro.routing.release`; this
module binds it to the DOWN/UP direction classes and candidate turns.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.core.direction_graph import RELEASABLE_TURNS, Turn
from repro.routing.base import TurnModel
from repro.routing.release import (
    ClassPair,
    Release,
    count_prohibited_pairs,
    release_prohibited_turns,
)

__all__ = [
    "Release",
    "release_redundant_turns",
    "count_prohibited_pairs",
]


def release_redundant_turns(
    turn_model: TurnModel,
    candidates: Sequence[Union[Turn, ClassPair]] = RELEASABLE_TURNS,
) -> List[Release]:
    """Run ``cycle_detection`` over every switch, mutating *turn_model*.

    *turn_model* must be an 8-direction DOWN/UP model when the default
    candidates are used (``Direction`` is an ``IntEnum``, so the paper's
    :class:`~repro.core.direction_graph.Turn` objects coerce directly to
    class pairs).  Returns the accepted releases in application order.
    """
    return release_prohibited_turns(
        turn_model, [(int(a), int(b)) for a, b in candidates]
    )
