"""Direction graphs, DDGs/ADDGs and the Phase-2 construction (Section 4.2).

The *direction graph* (DG, Definition 8) has the eight channel directions
as nodes and turns ``T(d1 -> d2)`` (``d1 != d2``) as edges.  A *direction
dependency graph* (DDG, Definition 9) is any subgraph; it is *acyclic*
(ADDG, Definition 10) if restricting every switch of a communication
graph to the DDG's turns can never close a *turn cycle* (Definition 7).

The paper finds a **maximal** ADDG of the complete DG in four incremental
steps, at each step removing turns that either route traffic *up before
down* or route it *toward the root* — this preference is what pushes
traffic to the leaves and removes the opposite-direction prohibited-turn
pairs that plague up*/down*.  The complement of the final ``ADDG_7`` is
the canonical 18-turn prohibited set listed verbatim in Section 4.3
(:data:`DOWN_UP_PROHIBITED_TURNS`).

Two entry points:

* :data:`DOWN_UP_PROHIBITED_TURNS` — the paper's final PT, as data;
* :func:`build_maximal_addg` — an executable rendition of Steps 1-4 whose
  output is asserted (in tests) to equal the canonical set; each removal
  is justified by a realizability check
  (:func:`direction_cycle_realizable`) on the cycle it breaks.

The channel-level companion check (searching a concrete communication
graph for a turn cycle under per-node allowed-turn state — Lemma 1 /
Theorem 1 made executable) lives in :mod:`repro.routing.channel_graph`.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    NamedTuple,
    Sequence,
    Set,
    Tuple,
)

from repro.core.directions import Direction


class Turn(NamedTuple):
    """A turn ``T(frm -> to)`` between two channel directions (Def. 6)."""

    frm: Direction
    to: Direction

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"T({self.frm.name}->{self.to.name})"


def all_turns(nodes: Iterable[Direction]) -> Set[Turn]:
    """Every turn between *distinct* directions in *nodes* (complete DG)."""
    ns = list(nodes)
    return {Turn(a, b) for a in ns for b in ns if a is not b}


class DirectionGraph:
    """A DDG: a set of direction nodes plus a set of turn edges.

    Mutable by design — the Phase-2 construction grows/prunes one
    instance step by step.  ``complete(nodes)`` builds the DG of a node
    set; the *complete direction graph* (CDG, Definition 8) is
    ``complete(Direction)``.
    """

    __slots__ = ("nodes", "turns")

    def __init__(
        self,
        nodes: Iterable[Direction] = (),
        turns: Iterable[Turn] = (),
    ) -> None:
        self.nodes: Set[Direction] = set(nodes)
        self.turns: Set[Turn] = set()
        for t in turns:
            self.add_turn(t)

    @staticmethod
    def complete(nodes: Iterable[Direction]) -> "DirectionGraph":
        """The complete DG over *nodes*."""
        ns = set(nodes)
        return DirectionGraph(ns, all_turns(ns))

    def add_turn(self, turn: Turn) -> None:
        """Add a turn edge; both endpoints must be (or become) nodes."""
        if turn.frm is turn.to:
            raise ValueError(f"self-turn {turn} is not a DG edge (Def. 8)")
        self.nodes.add(turn.frm)
        self.nodes.add(turn.to)
        self.turns.add(turn)

    def remove_turn(self, turn: Turn) -> None:
        """Remove a turn edge (KeyError if absent)."""
        self.turns.remove(turn)

    def has_turn(self, frm: Direction, to: Direction) -> bool:
        """True if ``T(frm -> to)`` is an edge."""
        return Turn(frm, to) in self.turns

    def union(self, other: "DirectionGraph") -> "DirectionGraph":
        """New DDG with the nodes and turns of both operands."""
        return DirectionGraph(self.nodes | other.nodes, self.turns | other.turns)

    def with_all_turns_between(
        self, a: Iterable[Direction], b: Iterable[Direction]
    ) -> "DirectionGraph":
        """New DDG adding every turn between node sets *a* and *b*.

        This is the paper's "combine ADDG_i with ADDG_j by adding edges
        between nodes in ADDG_i and ADDG_j" operation.
        """
        out = DirectionGraph(self.nodes, self.turns)
        for d1 in a:
            for d2 in b:
                if d1 is not d2:
                    out.add_turn(Turn(d1, d2))
                    out.add_turn(Turn(d2, d1))
        return out

    def complement_in(self, universe: "DirectionGraph") -> Set[Turn]:
        """Turns of *universe* missing from this DDG (the prohibited set)."""
        return universe.turns - self.turns

    def digraph_cycles(self) -> List[Tuple[Direction, ...]]:
        """All elementary cycles of the DDG viewed as a plain digraph.

        Note Figure 1(f): a DDG cycle need *not* be realizable as a turn
        cycle in a CG — realizability is decided by
        :func:`direction_cycle_realizable`.
        """
        adj: Dict[Direction, List[Direction]] = {n: [] for n in self.nodes}
        for t in self.turns:
            adj[t.frm].append(t.to)
        cycles: List[Tuple[Direction, ...]] = []
        order = sorted(self.nodes)
        for start in order:
            # simple Johnson-lite enumeration restricted to cycles whose
            # minimum node is `start` (the direction graph has <= 8 nodes,
            # so exhaustive search is cheap)
            stack: List[Tuple[Direction, List[Direction]]] = [(start, [start])]
            while stack:
                v, path = stack.pop()
                for w in adj[v]:
                    if w is start and len(path) > 1:
                        cycles.append(tuple(path))
                    elif w not in path and w > start:
                        stack.append((w, path + [w]))
            # length-2 cycles with start included above when len(path)>1
        # also catch 2-cycles start->w->start where w > start handled; ok
        return cycles

    def is_realizably_acyclic(self) -> bool:
        """True if no digraph cycle of the DDG is CG-realizable.

        This is the Definition-10 acyclicity test at the direction level:
        the DDG is an ADDG iff every direction cycle it contains fails
        the displacement-balance condition of
        :func:`direction_cycle_realizable`.
        """
        return all(
            not direction_cycle_realizable(c) for c in self.digraph_cycles()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DirectionGraph(nodes={sorted(n.name for n in self.nodes)}, "
            f"turns={len(self.turns)})"
        )


# ---------------------------------------------------------------------------
# realizability of direction cycles
# ---------------------------------------------------------------------------

#: Sign of the x/y displacement each direction imposes on a channel
#: (start -> sink).  x signs are strict (preorder ranks never tie); the
#: horizontal cross directions have exactly zero y displacement and in a
#: BFS tree every non-horizontal cross link spans exactly one level.
_DX_SIGN = {
    Direction.LU_TREE: -1,
    Direction.RD_TREE: +1,
    Direction.LU_CROSS: -1,
    Direction.LD_CROSS: -1,
    Direction.RU_CROSS: +1,
    Direction.RD_CROSS: +1,
    Direction.R_CROSS: +1,
    Direction.L_CROSS: -1,
}
_DY_SIGN = {
    Direction.LU_TREE: -1,
    Direction.RD_TREE: +1,
    Direction.LU_CROSS: -1,
    Direction.LD_CROSS: +1,
    Direction.RU_CROSS: -1,
    Direction.RD_CROSS: +1,
    Direction.R_CROSS: 0,
    Direction.L_CROSS: 0,
}


def direction_cycle_realizable(cycle: Sequence[Direction]) -> bool:
    """Can *cycle* (a cyclic direction sequence) be a turn cycle in a CG?

    A turn cycle returns to its starting switch, so the channel
    displacements along it must sum to zero in both coordinates.  Since
    every direction moves strictly left or strictly right, the x sum
    cancels only if both signs occur; the y sum cancels only if both an
    upward and a downward direction occur or every direction is
    horizontal.  This necessary condition is exactly the argument the
    paper uses to dismiss DDG cycles such as Figure 1(f)'s
    ``LD_CROSS <-> RD_TREE`` (all-downward, hence unrealizable).
    """
    if not cycle:
        return False
    dx = {_DX_SIGN[d] for d in cycle}
    dy = {_DY_SIGN[d] for d in cycle}
    x_balanced = -1 in dx and +1 in dx
    y_balanced = (-1 in dy and +1 in dy) or dy == {0}
    return x_balanced and y_balanced


# ---------------------------------------------------------------------------
# the canonical Phase-2 result (Section 4.3)
# ---------------------------------------------------------------------------

D = Direction  # local alias for readability of the big literal below

#: The 18 prohibited turns of the DOWN/UP routing.
#:
#: **Erratum note.**  The paper's Section 4.3 prints a PT whose four
#: "step 3" members are ``horizontal -> up-cross`` turns
#: (``T(L->RU), T(L->LU), T(R->RU), T(R->LU)``).  That printed list
#: contradicts the paper's own Step-3 narrative ("we remove edges from
#: nodes in Region 1 [= LU_CROSS, RU_CROSS] to nodes in ADDG_3
#: [= L_CROSS, R_CROSS]", i.e. ``up-cross -> horizontal``), and it is
#: **not deadlock-free**: it leaves turn cycles such as
#: ``RU_CROSS -> L_CROSS -> LD_CROSS -> (RU_CROSS)`` entirely allowed
#: (see ``tests/test_paper_erratum.py`` for a concrete 5-switch network
#: realizing that cycle).  It is also inconsistent with Step 4, whose
#: cycles C3/C4 presuppose ``T(L->RU)`` / ``T(R->LU)`` to be *allowed*.
#: We therefore use the narrative-consistent set below, which is
#: machine-verified acyclic and maximal; the printed variant is kept as
#: :data:`PAPER_SECTION_4_3_PRINTED_PT` for the executable erratum.
DOWN_UP_PROHIBITED_TURNS: FrozenSet[Turn] = frozenset(
    {
        # -- traffic may never head back toward the root: nothing enters
        #    LU_TREE (7 turns; step 1 removed the first, step 4 the rest)
        Turn(D.RD_TREE, D.LU_TREE),
        Turn(D.RD_CROSS, D.LU_TREE),
        Turn(D.L_CROSS, D.LU_TREE),
        Turn(D.R_CROSS, D.LU_TREE),
        Turn(D.LU_CROSS, D.LU_TREE),
        Turn(D.LD_CROSS, D.LU_TREE),
        Turn(D.RU_CROSS, D.LU_TREE),
        # -- no up-cross before down-cross (steps 1 and 2): DOWN before UP
        Turn(D.RU_CROSS, D.LD_CROSS),
        Turn(D.RU_CROSS, D.RD_CROSS),
        Turn(D.LU_CROSS, D.LD_CROSS),
        Turn(D.LU_CROSS, D.RD_CROSS),
        # -- no up-cross before down-tree (step 4, cycles C3/C4; these two
        #    are the per-node releasable turns of Phase 3)
        Turn(D.LU_CROSS, D.RD_TREE),
        Turn(D.RU_CROSS, D.RD_TREE),
        # -- horizontal ordering (step 1) and no up-cross before
        #    horizontal (step 3, Observation 5: Region 1 -> ADDG_3)
        Turn(D.L_CROSS, D.R_CROSS),
        Turn(D.LU_CROSS, D.L_CROSS),
        Turn(D.LU_CROSS, D.R_CROSS),
        Turn(D.RU_CROSS, D.L_CROSS),
        Turn(D.RU_CROSS, D.R_CROSS),
    }
)

#: The prohibited-turn list exactly as printed in Section 4.3 of the
#: paper.  Differs from :data:`DOWN_UP_PROHIBITED_TURNS` in the four
#: step-3 turns (printed: horizontal -> up-cross) and is *not* deadlock
#: free — see the erratum note above.
PAPER_SECTION_4_3_PRINTED_PT: FrozenSet[Turn] = frozenset(
    (DOWN_UP_PROHIBITED_TURNS
     - {
         Turn(D.LU_CROSS, D.L_CROSS),
         Turn(D.LU_CROSS, D.R_CROSS),
         Turn(D.RU_CROSS, D.L_CROSS),
         Turn(D.RU_CROSS, D.R_CROSS),
     })
    | {
        Turn(D.L_CROSS, D.RU_CROSS),
        Turn(D.L_CROSS, D.LU_CROSS),
        Turn(D.R_CROSS, D.RU_CROSS),
        Turn(D.R_CROSS, D.LU_CROSS),
    }
)

#: The two prohibited turns Phase 3 may release per node (Section 4.3).
RELEASABLE_TURNS: Tuple[Turn, ...] = (
    Turn(D.LU_CROSS, D.RD_TREE),
    Turn(D.RU_CROSS, D.RD_TREE),
)


def down_up_addg() -> DirectionGraph:
    """``ADDG_7``: the maximal ADDG of the complete DG (allowed turns)."""
    g = DirectionGraph.complete(Direction)
    for t in DOWN_UP_PROHIBITED_TURNS:
        g.remove_turn(t)
    return g


# ---------------------------------------------------------------------------
# executable Phase-2 construction (Steps 1-4)
# ---------------------------------------------------------------------------


class Phase2Trace(NamedTuple):
    """One removal decision of the Phase-2 construction, for auditing."""

    step: str
    removed: Turn
    breaks_cycle: Tuple[Direction, ...]
    reason: str


def _remove_checked(
    g: DirectionGraph,
    turn: Turn,
    cycle: Tuple[Direction, ...],
    step: str,
    reason: str,
    trace: List[Phase2Trace],
) -> None:
    """Remove *turn*, recording that it breaks the realizable *cycle*.

    Sanity-checks the paper's narrative: the cycle being broken must be
    present in the DDG and realizable in a CG before the removal.
    """
    for a, b in zip(cycle, cycle[1:] + cycle[:1]):
        if not g.has_turn(a, b):
            raise AssertionError(
                f"{step}: cycle {[d.name for d in cycle]} not present "
                f"before removing {turn}"
            )
    if not direction_cycle_realizable(cycle):
        raise AssertionError(
            f"{step}: cycle {[d.name for d in cycle]} is not realizable; "
            "nothing to break"
        )
    g.remove_turn(turn)
    trace.append(Phase2Trace(step, turn, cycle, reason))


def build_maximal_addg() -> Tuple[DirectionGraph, List[Phase2Trace]]:
    """Execute Phase 2 (Section 4.2, Steps 1-4) and return ``ADDG_7``.

    Returns the resulting :class:`DirectionGraph` of *allowed* turns plus
    the ordered trace of removal decisions.  Tests assert that the
    complement equals :data:`DOWN_UP_PROHIBITED_TURNS` and that the
    result is maximal (re-adding any removed turn creates a realizable
    direction cycle).
    """
    trace: List[Phase2Trace] = []
    up_before_down = "push traffic downward: forbid up-before-down"
    toward_root = "prevent traffic from flowing to the root"

    # -- Step 1: the four opposite-direction node pairs -----------------
    addg1 = DirectionGraph.complete([D.LU_CROSS, D.RD_CROSS])
    _remove_checked(
        addg1, Turn(D.LU_CROSS, D.RD_CROSS), (D.LU_CROSS, D.RD_CROSS),
        "step1/ADDG1", up_before_down, trace,
    )
    addg2 = DirectionGraph.complete([D.LD_CROSS, D.RU_CROSS])
    _remove_checked(
        addg2, Turn(D.RU_CROSS, D.LD_CROSS), (D.RU_CROSS, D.LD_CROSS),
        "step1/ADDG2", up_before_down, trace,
    )
    addg3 = DirectionGraph.complete([D.L_CROSS, D.R_CROSS])
    _remove_checked(
        addg3, Turn(D.L_CROSS, D.R_CROSS), (D.L_CROSS, D.R_CROSS),
        "step1/ADDG3", "either removal equivalent; paper removes L->R", trace,
    )
    addg4 = DirectionGraph.complete([D.LU_TREE, D.RD_TREE])
    _remove_checked(
        addg4, Turn(D.RD_TREE, D.LU_TREE), (D.RD_TREE, D.LU_TREE),
        "step1/ADDG4", toward_root, trace,
    )

    # -- Step 2: ADDG1 + ADDG2 -> ADDG5 ---------------------------------
    addg5 = addg1.union(addg2).with_all_turns_between(
        addg1.nodes, addg2.nodes
    )
    _remove_checked(
        addg5, Turn(D.RU_CROSS, D.RD_CROSS),
        (D.RU_CROSS, D.RD_CROSS, D.LD_CROSS),  # cycle C1 (Figure 4(b))
        "step2", up_before_down, trace,
    )
    _remove_checked(
        addg5, Turn(D.LU_CROSS, D.LD_CROSS),
        (D.LU_CROSS, D.LD_CROSS, D.RU_CROSS),  # cycle C2 (Figure 4(c))
        "step2", up_before_down, trace,
    )

    # -- Step 3: ADDG3 + ADDG5 -> ADDG6 ---------------------------------
    # Region 1 = {LU,RU}_CROSS (Observation 2: no downward component),
    # Region 2 = {LD,RD}_CROSS (Observation 1: no upward component).
    # Observation 5: a cycle can thread Region 1 -> ADDG_3 -> Region 2
    # and back; the paper breaks it by removing the edges *from Region 1
    # to ADDG_3* (up-cross -> horizontal), keeping horizontal -> up-cross
    # (which Step 4's cycles C3/C4 presuppose to be allowed).
    addg6 = addg3.union(addg5).with_all_turns_between(
        addg3.nodes, addg5.nodes
    )
    for up, horiz, down in (
        (D.LU_CROSS, D.L_CROSS, D.RD_CROSS),
        (D.LU_CROSS, D.R_CROSS, D.RD_CROSS),
        (D.RU_CROSS, D.L_CROSS, D.LD_CROSS),
        (D.RU_CROSS, D.R_CROSS, D.LD_CROSS),
    ):
        _remove_checked(
            addg6, Turn(up, horiz), (up, horiz, down),
            "step3", up_before_down, trace,
        )

    # -- Step 4: ADDG4 + ADDG6 -> ADDG7 ---------------------------------
    addg7 = addg4.union(addg6).with_all_turns_between(
        addg4.nodes, addg6.nodes
    )
    # cycles C3/C4 (Figures 6(c)-(d)): RD_TREE -> horizontal -> up-cross
    # -> RD_TREE; break by forbidding up-cross -> RD_TREE.
    _remove_checked(
        addg7, Turn(D.RU_CROSS, D.RD_TREE),
        (D.RD_TREE, D.L_CROSS, D.RU_CROSS),  # cycle C3
        "step4", up_before_down, trace,
    )
    _remove_checked(
        addg7, Turn(D.LU_CROSS, D.RD_TREE),
        (D.RD_TREE, D.R_CROSS, D.LU_CROSS),  # cycle C4
        "step4", up_before_down, trace,
    )
    # nothing may enter LU_TREE: remove all edges from ADDG6's nodes to
    # LU_TREE (RD_TREE -> LU_TREE fell in step 1).  Each removal is
    # witnessed by the cycle frm -> LU_TREE -> RD_TREE -> frm, which is
    # realizable for every cross direction.
    for frm in sorted(addg6.nodes):
        _remove_checked(
            addg7, Turn(frm, D.LU_TREE), (frm, D.LU_TREE, D.RD_TREE),
            "step4", toward_root, trace,
        )
    return addg7, trace
