"""Coordinated trees (Definition 2) and their construction (Phase 1).

A coordinated tree is a BFS spanning tree of the topology in which every
node ``v`` carries the 2-D coordinate ``(X(v), Y(v))``: ``X`` the rank of
``v`` in a preorder traversal of the tree, ``Y`` its level (root = 0).

The paper evaluates three construction variants that differ in the order
in which sibling subtrees are visited:

``M1``
    next node = smallest node number (the paper's proposed method,
    Section 4.1 Steps 1-6 verbatim);
``M2``
    next node = uniformly random choice;
``M3``
    next node = largest node number.

The paper describes the variants as changing the *preorder traversal*
order.  The BFS phase itself (Steps 1-5) enqueues unvisited neighbours in
ascending node-number order; we apply the variant's ordering rule to both
the BFS neighbour insertion and the preorder child order (a single knob,
matching M1 exactly and giving M2/M3 genuinely different trees).  The two
orders can also be set independently for ablation studies.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.topology.graph import Topology
from repro.util.rng import RngLike, as_generator


class TreeMethod(enum.Enum):
    """Sibling-ordering variants M1 / M2 / M3 of Section 5."""

    M1 = "smallest-first"
    M2 = "random"
    M3 = "largest-first"


@dataclass(frozen=True)
class CoordinatedTree:
    """A coordinated tree ``CT = (V, E')`` with coordinates (Definition 2).

    Attributes
    ----------
    topology:
        The underlying network graph ``G``.
    root:
        Root switch id (the paper roots at the smallest node number).
    parent:
        ``parent[v]`` is v's tree parent, ``None`` for the root.
    children:
        ``children[v]``: tuple of v's children, in preorder-visit order.
    x, y:
        ``x[v] = X(v)`` (preorder rank, 0-based) and ``y[v] = Y(v)``
        (level).
    """

    topology: Topology
    root: int
    parent: Tuple[Optional[int], ...]
    children: Tuple[Tuple[int, ...], ...]
    x: Tuple[int, ...]
    y: Tuple[int, ...]
    _tree_links: Set[Tuple[int, int]] = field(repr=False, default_factory=set)

    def __post_init__(self) -> None:
        links = {
            (min(v, p), max(v, p))
            for v, p in enumerate(self.parent)
            if p is not None
        }
        object.__setattr__(self, "_tree_links", links)

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of switches."""
        return self.topology.n

    def coordinate(self, v: int) -> Tuple[int, int]:
        """``(X(v), Y(v))`` of switch *v*."""
        return (self.x[v], self.y[v])

    def is_tree_link(self, a: int, b: int) -> bool:
        """True if the (undirected) link ``(a, b)`` is in ``E'``.

        Links of ``G`` outside ``E'`` are *cross links* (Definition 3).
        """
        return (min(a, b), max(a, b)) in self._tree_links

    def tree_links(self) -> Set[Tuple[int, int]]:
        """The set ``E'`` of tree links as normalised pairs."""
        return set(self._tree_links)

    def cross_links(self) -> Set[Tuple[int, int]]:
        """The set ``E - E'`` of cross links."""
        return set(self.topology.links) - self._tree_links

    def level_nodes(self, level: int) -> List[int]:
        """Switches whose ``Y`` coordinate equals *level*."""
        return [v for v in range(self.n) if self.y[v] == level]

    @property
    def depth(self) -> int:
        """Largest level in the tree."""
        return max(self.y)

    def leaves(self) -> List[int]:
        """Switches with no children (the CT leaves; used by Table 4)."""
        return [v for v in range(self.n) if not self.children[v]]

    def path_to_root(self, v: int) -> List[int]:
        """Tree path ``[v, parent(v), ..., root]``."""
        path = [v]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])  # type: ignore[arg-type]
        return path

    def validate(self) -> None:
        """Assert all structural invariants of Definition 2.

        Checks the parent pointers form a spanning tree rooted at
        ``root``, that every tree link exists in ``G``, that ``y`` equals
        tree depth, and that ``x`` is a permutation of ``0..n-1``
        consistent with *some* preorder (parents precede children).
        """
        n = self.n
        if self.parent[self.root] is not None:
            raise ValueError("root must not have a parent")
        if sum(1 for p in self.parent if p is None) != 1:
            raise ValueError("exactly one node may lack a parent")
        for v in range(n):
            p = self.parent[v]
            if p is None:
                continue
            if not self.topology.has_link(v, p):
                raise ValueError(f"tree edge ({v},{p}) is not a link of G")
            if self.y[v] != self.y[p] + 1:
                raise ValueError(f"level of {v} is not parent level + 1")
            if self.x[p] >= self.x[v]:
                raise ValueError(
                    f"preorder violated: X({p})={self.x[p]} >= X({v})={self.x[v]}"
                )
            if v not in self.children[p]:
                raise ValueError(f"{v} missing from children of {p}")
        if sorted(self.x) != list(range(n)):
            raise ValueError("x coordinates are not a permutation of 0..n-1")
        if self.y[self.root] != 0:
            raise ValueError("root must be at level 0")


def choose_root(topology: Topology, strategy: str = "smallest-id") -> int:
    """Pick a spanning-tree root by *strategy*.

    The paper fixes "the node with the smallest node number"
    (``smallest-id``).  Two classic alternatives from the up*/down*
    literature are provided for ablation:

    ``max-degree``
        The best-connected switch (ties to the smaller id) — spreads
        the root's traffic over more ports.
    ``center``
        A switch minimising graph eccentricity (BFS from every node;
        ties to the smaller id) — minimises tree depth.
    """
    if strategy == "smallest-id":
        return 0
    if strategy == "max-degree":
        return max(range(topology.n), key=lambda v: (topology.degree(v), -v))
    if strategy == "center":
        from collections import deque

        best_v, best_ecc = 0, None
        for v in range(topology.n):
            dist = {v: 0}
            q = deque([v])
            ecc = 0
            while q:
                u = q.popleft()
                for w in topology.neighbors(u):
                    if w not in dist:
                        dist[w] = dist[u] + 1
                        ecc = max(ecc, dist[w])
                        q.append(w)
            if len(dist) != topology.n:
                raise ValueError("topology is disconnected")
            if best_ecc is None or ecc < best_ecc:
                best_v, best_ecc = v, ecc
        return best_v
    raise ValueError(
        f"unknown root strategy {strategy!r}; use smallest-id, "
        "max-degree or center"
    )


def _sibling_orderer(
    method: TreeMethod, rng: RngLike
) -> Callable[[Sequence[int]], List[int]]:
    """Return a function ordering a set of sibling candidates per *method*."""
    if method is TreeMethod.M1:
        return lambda nodes: sorted(nodes)
    if method is TreeMethod.M3:
        return lambda nodes: sorted(nodes, reverse=True)
    gen = as_generator(rng)
    return lambda nodes: [
        nodes[i] for i in gen.permutation(len(nodes))
    ]


def build_coordinated_tree(
    topology: Topology,
    method: TreeMethod = TreeMethod.M1,
    rng: RngLike = None,
    root: Optional[int] = None,
    bfs_method: Optional[TreeMethod] = None,
) -> CoordinatedTree:
    """Build a coordinated tree of *topology* (Section 4.1, Steps 1-6).

    Parameters
    ----------
    method:
        Sibling ordering used for the preorder traversal (x coordinates)
        and, unless *bfs_method* overrides it, for BFS neighbour
        insertion.
    rng:
        Random source for :data:`TreeMethod.M2`.
    root:
        Root switch; defaults to the smallest node number (paper: "we
        choose the node with the smallest node number as the root").
    bfs_method:
        Optional separate ordering for the BFS phase (ablation knob).

    Raises ``ValueError`` if the topology is disconnected (a spanning
    tree does not exist).
    """
    n = topology.n
    root = 0 if root is None else root
    if not (0 <= root < n):
        raise ValueError(f"root {root} out of range")

    order_pre = _sibling_orderer(method, rng)
    order_bfs = (
        order_pre if bfs_method is None else _sibling_orderer(bfs_method, rng)
    )

    # Steps 1-5: BFS from the root, enqueueing unvisited neighbours in
    # the chosen order; the enqueuer becomes the parent.
    parent: List[Optional[int]] = [None] * n
    children: List[List[int]] = [[] for _ in range(n)]
    visited = [False] * n
    visited[root] = True
    queue: deque[int] = deque([root])
    seen = 1
    while queue:
        v = queue.popleft()
        fresh = [w for w in topology.neighbors(v) if not visited[w]]
        for w in order_bfs(fresh):
            visited[w] = True
            seen += 1
            parent[w] = v
            children[v].append(w)
            queue.append(w)
    if seen != n:
        raise ValueError(
            f"topology is disconnected: BFS reached {seen} of {n} switches"
        )

    # Step 6: preorder traversal in the chosen sibling order assigns X;
    # Y is the BFS level.
    x = [0] * n
    y = [0] * n
    ordered_children: List[Tuple[int, ...]] = [()] * n
    counter = 0
    stack = [root]
    while stack:
        v = stack.pop()
        x[v] = counter
        counter += 1
        kids = order_pre(children[v])
        ordered_children[v] = tuple(kids)
        # reversed: stack pops the first-ordered child first
        stack.extend(reversed(kids))
    # y is computed root-down; preorder-x order guarantees parents
    # precede children.
    for v in sorted(range(n), key=lambda u: x[u]):
        p = parent[v]
        y[v] = 0 if p is None else y[p] + 1

    tree = CoordinatedTree(
        topology=topology,
        root=root,
        parent=tuple(parent),
        children=tuple(ordered_children),
        x=tuple(x),
        y=tuple(y),
    )
    tree.validate()
    return tree
