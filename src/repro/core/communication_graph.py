"""Communication graphs (Definition 5).

The communication graph ``CG = (V, E_vec)`` is the topology's directed
channel set with every channel labelled by one of the eight
:class:`~repro.core.directions.Direction` classes relative to a
coordinated tree.  It is the object on which turns, turn cycles, and the
per-node prohibited-turn state are defined, and the input both to the
Phase-3 cycle detection and to routing-table construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.core.coordinated_tree import CoordinatedTree
from repro.core.directions import Direction, classify_channel
from repro.topology.graph import Channel, Topology


@dataclass(frozen=True)
class CommunicationGraph:
    """A direction-labelled channel graph over a coordinated tree.

    ``direction[cid]`` is the :class:`Direction` of channel ``cid``.
    Construction validates the labelling (tree channels are exactly the
    LU_TREE/RD_TREE ones, opposite channels carry opposite directions).
    """

    tree: CoordinatedTree
    direction: Tuple[Direction, ...]

    # -- construction ---------------------------------------------------
    @staticmethod
    def from_tree(tree: CoordinatedTree) -> "CommunicationGraph":
        """Label every channel of ``tree.topology`` per Definition 5."""
        topo = tree.topology
        labels: List[Direction] = []
        for ch in topo.channels:
            labels.append(
                classify_channel(
                    tree.coordinate(ch.start),
                    tree.coordinate(ch.sink),
                    tree.is_tree_link(ch.start, ch.sink),
                )
            )
        cg = CommunicationGraph(tree=tree, direction=tuple(labels))
        cg.validate()
        return cg

    # -- accessors ------------------------------------------------------
    @property
    def topology(self) -> Topology:
        """The underlying network graph."""
        return self.tree.topology

    def channel(self, cid: int) -> Channel:
        """The channel record for id *cid*."""
        return self.topology.channel(cid)

    def d(self, cid: int) -> Direction:
        """``d(e)`` — the direction of channel *cid* (paper notation)."""
        return self.direction[cid]

    def channels_with_direction(self, direction: Direction) -> List[int]:
        """All channel ids labelled *direction*."""
        return [c for c, d in enumerate(self.direction) if d is direction]

    def turns_at(self, v: int) -> Iterator[Tuple[int, int]]:
        """All (input channel, output channel) pairs meeting at switch *v*.

        A pair forms a *turn* (Definition 6) labelled by the directions of
        the two channels.  U-turns (back onto the same link) are excluded:
        wormhole switches do not send a worm back out of the port it came
        in on.
        """
        for e_in in self.topology.input_channels(v):
            for e_out in self.topology.output_channels(v):
                if e_out != (e_in ^ 1):
                    yield (e_in, e_out)

    def direction_histogram(self) -> Dict[Direction, int]:
        """Channel count per direction (useful in tests and reports)."""
        hist: Dict[Direction, int] = {d: 0 for d in Direction}
        for d in self.direction:
            hist[d] += 1
        return hist

    # -- validation -----------------------------------------------------
    def validate(self) -> None:
        """Assert labelling invariants implied by Definitions 2-5.

        * a channel is a tree direction iff its link is a tree link;
        * the two channels of one link carry *opposite* directions
          (left-up vs right-down, left vs right, ...);
        * every non-root switch has exactly one ``LU_TREE`` output (to
          its parent) and one ``RD_TREE`` input (from its parent).
        """
        topo = self.topology
        opposite = {
            Direction.LU_TREE: Direction.RD_TREE,
            Direction.RD_TREE: Direction.LU_TREE,
            Direction.LU_CROSS: Direction.RD_CROSS,
            Direction.RD_CROSS: Direction.LU_CROSS,
            Direction.LD_CROSS: Direction.RU_CROSS,
            Direction.RU_CROSS: Direction.LD_CROSS,
            Direction.L_CROSS: Direction.R_CROSS,
            Direction.R_CROSS: Direction.L_CROSS,
        }
        for ch in topo.channels:
            d = self.direction[ch.cid]
            d_rev = self.direction[ch.reverse_cid]
            if opposite[d] is not d_rev:
                raise ValueError(
                    f"channels of link {ch.link} carry non-opposite "
                    f"directions {d.name} / {d_rev.name}"
                )
            if d.is_tree != self.tree.is_tree_link(ch.start, ch.sink):
                raise ValueError(
                    f"channel {ch.cid} direction {d.name} disagrees with "
                    "its link type"
                )
        for v in range(topo.n):
            if v == self.tree.root:
                continue
            ups = [
                c
                for c in topo.output_channels(v)
                if self.direction[c] is Direction.LU_TREE
            ]
            if len(ups) != 1 or topo.channel(ups[0]).sink != self.tree.parent[v]:
                raise ValueError(
                    f"switch {v} must have exactly one LU_TREE output to "
                    "its parent"
                )
