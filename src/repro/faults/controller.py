"""Online reconfiguration: rebuild routing on the survivor graph.

The routing builders (DOWN/UP, L-turn, up*/down*) require a *connected*
:class:`~repro.topology.graph.Topology`, but a degraded network is the
original one with some links and switches missing — its channel ids must
stay those of the full topology or every per-channel array in a running
engine would be invalidated.  The controller therefore:

1. extracts the *surviving sub-topology* with switches renumbered
   densely (:func:`surviving_topology`),
2. runs the configured routing builder on it and re-verifies the result
   against Theorem 1 (:func:`repro.routing.verification.verify_routing`
   — acyclic channel dependency graph, all-pairs connectivity,
   progress), and
3. remaps the verified tables back into the full topology's channel and
   switch id space (:func:`remap_routing`), with dead channels carrying
   empty candidate sets and ``UNREACHABLE`` distances.

The engine can then swap the remapped function in atomically
(``_fault_swap_routing``) without touching any in-flight state arrays.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.routing.base import RoutingFunction
from repro.routing.verification import verify_routing
from repro.topology.graph import Topology

#: A routing builder for the controller: connected topology in,
#: (builder-)verified RoutingFunction on that same topology out.
RoutingBuilder = Callable[[Topology], RoutingFunction]


def surviving_topology(
    topology: Topology,
    dead_links: Iterable[Tuple[int, int]],
    dead_switches: Iterable[int],
) -> Tuple[Topology, List[int]]:
    """The degraded network as a dense, renumbered :class:`Topology`.

    Returns ``(sub, live)`` where ``live[new_id] == old_id`` for every
    surviving switch.  Raises ``ValueError`` when nothing survives or
    the survivors are disconnected (the fault schedule's connectivity
    guard should have refused such a state upstream).
    """
    dead_l = {tuple(sorted(l)) for l in dead_links}
    dead_s = set(dead_switches)
    live = [v for v in range(topology.n) if v not in dead_s]
    if not live:
        raise ValueError("no switches survive the fault set")
    new_id = {old: new for new, old in enumerate(live)}
    links = [
        (new_id[u], new_id[v])
        for u, v in topology.links
        if (u, v) not in dead_l and u in new_id and v in new_id
    ]
    sub = Topology(len(live), links)
    if not sub.is_connected():
        raise ValueError("surviving network is disconnected")
    return sub, live


def remap_routing(
    routing: RoutingFunction,
    full_topology: Topology,
    live: List[int],
) -> RoutingFunction:
    """Lift *routing* (built on a renumbered survivor) to full-id space.

    Every sub-topology channel ``<a, b>`` maps to the full topology's
    channel ``<live[a], live[b]>`` — the underlying physical link is the
    same, only the dense ids differ.  Dead channels and dead/unreachable
    endpoints get ``UNREACHABLE`` distances and empty candidate tuples,
    so a packet can never be directed onto a failed resource.  The
    returned function reuses the survivor's (verified) turn model; the
    Theorem-1 guarantees transfer because the remapping is a channel
    renaming, not a change of paths.
    """
    sub = routing.topology
    if len(live) != sub.n:
        raise ValueError("live map does not match the survivor topology")
    # sub cid -> full cid
    cmap = [
        full_topology.channel_id(live[ch.start], live[ch.sink])
        for ch in sub.channels
    ]
    n, m = full_topology.n, full_topology.num_channels
    unreachable = RoutingFunction.UNREACHABLE
    dist = np.full((n, m), unreachable, dtype=np.int32)
    empty: Tuple[int, ...] = ()
    next_hops: List[Tuple[Tuple[int, ...], ...]] = []
    first_hops: List[Tuple[Tuple[int, ...], ...]] = []
    for d_full in range(n):
        nh_row: List[Tuple[int, ...]] = [empty] * m
        fh_row: List[Tuple[int, ...]] = [empty] * n
        next_hops.append(tuple(nh_row))
        first_hops.append(tuple(fh_row))
    next_hops_mut = [list(row) for row in next_hops]
    first_hops_mut = [list(row) for row in first_hops]
    for d_sub, d_full in enumerate(live):
        sub_dist = routing.dist[d_sub]
        sub_nh = routing.next_hops[d_sub]
        for c_sub, c_full in enumerate(cmap):
            dist[d_full, c_full] = sub_dist[c_sub]
            nh = sub_nh[c_sub]
            if nh:
                next_hops_mut[d_full][c_full] = tuple(cmap[b] for b in nh)
        sub_fh = routing.first_hops[d_sub]
        for s_sub, s_full in enumerate(live):
            fh = sub_fh[s_sub]
            if fh:
                first_hops_mut[d_full][s_full] = tuple(cmap[b] for b in fh)
    return RoutingFunction(
        topology=full_topology,
        name=routing.name,
        turn_model=routing.turn_model,
        dist=dist,
        next_hops=tuple(tuple(r) for r in next_hops_mut),
        first_hops=tuple(tuple(r) for r in first_hops_mut),
        meta={**routing.meta, "remapped": True, "live_switches": tuple(live)},
    )


class ReconfigurationController:
    """Recomputes and re-verifies routing for a degraded network.

    Parameters
    ----------
    builder:
        ``builder(sub_topology) -> RoutingFunction`` — any of the
        repository's algorithms wrapped with its tree/rng arguments
        (e.g. ``lambda t: build_down_up_routing(t, rng=7)``).  The
        builder runs on the *renumbered survivor*, so tree construction
        naturally adapts to the degraded graph, exactly as a real
        reconfiguration would recompute its spanning tree.
    drain_clocks:
        Clocks the engine waits between the fault and the table swap,
        letting in-flight worms drain before stranded ones are ejected.
    certify:
        Emit a deadlock-freedom certificate for every rebuilt table and
        re-validate it with the *independent* checker
        (:mod:`repro.statics.check`) before the swap (default).  The
        certificate's digest lands in ``meta["certificate_digest"]`` so
        the fault runtime can log exactly which certified table it
        installed.  Disable only in tight benchmark loops.
    """

    def __init__(
        self,
        builder: RoutingBuilder,
        drain_clocks: int = 64,
        certify: bool = True,
    ) -> None:
        if drain_clocks < 0:
            raise ValueError("drain_clocks must be >= 0")
        self.builder = builder
        self.drain_clocks = drain_clocks
        self.certify = certify

    def rebuild(
        self,
        topology: Topology,
        dead_links: Iterable[Tuple[int, int]],
        dead_switches: Iterable[int],
        tag: str = "",
    ) -> RoutingFunction:
        """A verified routing for the degraded *topology*, full-id space.

        Every rebuilt table passes through Theorem-1 verification
        (:func:`verify_routing`) *before* remapping — an unverified
        table never reaches a running engine.  With ``certify`` a
        deadlock-freedom certificate is additionally emitted on the
        survivor routing and re-validated by the independent checker;
        its digest is recorded in ``meta["certificate_digest"]``.
        """
        sub, live = surviving_topology(topology, dead_links, dead_switches)
        routing = verify_routing(self.builder(sub))
        cert_digest = ""
        if self.certify:
            # imported lazily: repro.statics imports this module for the
            # pre-flight sweep, so a top-level import would be circular
            from repro.statics.certificates import certify_routing
            from repro.statics.check import recheck

            bundle = certify_routing(routing)
            recheck(bundle)
            cert_digest = bundle.digest
        remapped = remap_routing(routing, topology, live)
        remapped.meta["verified"] = True
        if cert_digest:
            remapped.meta["certificate_digest"] = cert_digest
            remapped.meta["certificate_checked"] = True
        if tag:
            remapped.meta["reconfiguration"] = tag
        return remapped
