"""The live fault driver: schedules, retries and table swaps.

:class:`FaultRuntime` is the object an engine steps once per clock
(``engine.attach_faults(runtime)``).  It owns the mutable fault state —
which links and switches are currently dead, which packets are waiting
out a retry backoff, and when the next routing-table swap is due — and
drives the engine exclusively through its ``_fault_*`` hooks, so the
same runtime works for both the base wormhole engine and the
virtual-channel engine.

Per clock, in order:

1. **retries** — fault-dropped packets whose backoff expired are
   re-enqueued at their source (same logical id, same generation time,
   full original length);
2. **events** — due :class:`~repro.faults.schedule.FaultEvent` entries
   fire: links/switches die (crossing worms dropped or truncated per
   the ``policy``) or revive; every DOWN/UP transition arms a
   reconfiguration ``drain_clocks`` ahead;
3. **swap** — once the drain window closes, the
   :class:`~repro.faults.controller.ReconfigurationController` rebuilds
   and re-verifies routing on the survivor graph, the engine swaps
   tables atomically and ejects epoch-nonconforming worms (which enter
   the retry path like any other fault drop).

Every dropped packet ends in exactly one of two terminal states:
*delivered* (a later retry got through) or *lost* (retry budget
exhausted, retries disabled, or an endpoint switch died) — which is
what makes :attr:`SimulationStats.delivered_fraction` well defined.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.faults.controller import ReconfigurationController
from repro.faults.schedule import (
    LINK_DOWN,
    LINK_UP,
    SWITCH_DOWN,
    FaultSchedule,
)

#: Fault policies for worms caught crossing a dying link.
FAULT_POLICIES = ("drop", "drain")


@dataclass(frozen=True)
class RetryPolicy:
    """Source-side retry with capped exponential backoff.

    A packet's *k*-th retry is re-enqueued ``min(backoff_cap,
    backoff_base * 2**k)`` clocks after the drop — long enough for the
    post-fault reconfiguration to land before most retries re-enter,
    short enough to measure recovery latency meaningfully.
    """

    max_retries: int = 8
    backoff_base: int = 64
    backoff_cap: int = 2048

    def __post_init__(self) -> None:
        if self.max_retries < 0 or self.backoff_base <= 0 or self.backoff_cap <= 0:
            raise ValueError("retry policy parameters must be positive")

    def delay(self, attempt: int) -> int:
        """Backoff before re-injection number *attempt* (0-based)."""
        return min(self.backoff_cap, self.backoff_base * (2 ** attempt))


@dataclass(frozen=True)
class ReconfigurationRecord:
    """One completed online routing-table swap (for the run's stats).

    ``certificate_digest`` / ``certificate_checked`` record the
    deadlock-freedom certificate the controller emitted for the
    installed table and whether the *independent* checker
    (:mod:`repro.statics.check`) re-validated it — empty/False when the
    controller ran with ``certify=False``.
    """

    trigger_clock: int
    swap_clock: int
    routing_name: str
    ejected_worms: int
    cancelled_packets: int
    verified: bool
    certificate_digest: str = ""
    certificate_checked: bool = False


class FaultRuntime:
    """Live fault injection + reconfiguration state for one engine run.

    Parameters
    ----------
    schedule:
        The (validated) :class:`FaultSchedule` to execute.
    controller:
        A :class:`ReconfigurationController`, or ``None`` to inject
        faults *without* reconfiguring (the degraded-tables baseline;
        pair it with ``max_stall_clocks`` to catch the resulting
        stalls).
    retry:
        A :class:`RetryPolicy`, or ``None`` to count every fault drop
        as lost immediately.
    policy:
        ``"drop"`` (abort crossing worms instantly) or ``"drain"``
        (keep the fragment beyond the break draining; see the engine's
        ``_fault_kill_link``).
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        controller: Optional[ReconfigurationController] = None,
        retry: Optional[RetryPolicy] = RetryPolicy(),
        policy: str = "drop",
    ) -> None:
        if policy not in FAULT_POLICIES:
            raise ValueError(f"fault policy must be one of {FAULT_POLICIES}")
        self.schedule = schedule
        self.controller = controller
        self.retry = retry
        self.policy = policy
        self.dead_links: set = set()
        self.dead_switches: set = set()
        #: completed :class:`ReconfigurationRecord` entries, in order
        self.records: List[ReconfigurationRecord] = []
        self._event_idx = 0
        self._swap_due: Optional[int] = None
        self._trigger_clock: Optional[int] = None
        # (due clock, tie-break seq, (src, dst, length, logical_id,
        #  attempts, t_gen)) — a plain heap keeps retries deterministic
        self._retry_heap: List[Tuple[int, int, Tuple[int, ...]]] = []
        self._retry_seq = 0

    # ------------------------------------------------------------------
    @property
    def pending_retries(self) -> int:
        """Packets currently waiting out a retry backoff."""
        return len(self._retry_heap)

    def on_clock(self, engine) -> None:
        """Advance the fault machinery by one clock (engine hook)."""
        clock = engine.clock
        self._release_retries(engine, clock)
        self._fire_events(engine, clock)
        if self._swap_due is not None and clock >= self._swap_due:
            self._swap(engine, clock)

    def on_packet_failure(self, engine, worm) -> None:
        """A packet left the network un-delivered (engine hook).

        Called for worms dropped at a kill, fragments that finished
        draining (``drain`` policy), worms ejected at a table swap and
        queued packets cancelled there.  Routes the packet to the retry
        heap or declares it lost.
        """
        engine.stats.on_fault_drop()
        self._handle_failure(engine, worm)

    # ------------------------------------------------------------------
    def _release_retries(self, engine, clock: int) -> None:
        heap = self._retry_heap
        while heap and heap[0][0] <= clock:
            _due, _seq, (src, dst, length, logical_id, attempts, t_gen) = (
                heapq.heappop(heap)
            )
            if src in self.dead_switches or dst in self.dead_switches:
                engine.stats.on_lost()
                continue
            engine._fault_requeue(
                src, dst, length, logical_id=logical_id,
                attempts=attempts, t_gen=t_gen,
            )
            engine.stats.on_retry()

    def _fire_events(self, engine, clock: int) -> None:
        events = self.schedule.events
        fired = False
        while self._event_idx < len(events) and events[self._event_idx].cycle <= clock:
            ev = events[self._event_idx]
            self._event_idx += 1
            fired = True
            if ev.kind == LINK_DOWN:
                self.dead_links.add(ev.link)
                removed = engine._fault_kill_link(ev.link, self.policy)
            elif ev.kind == LINK_UP:
                self.dead_links.discard(ev.link)
                engine._fault_restore_link(ev.link)
                removed = []
            else:  # SWITCH_DOWN
                self.dead_switches.add(ev.switch)
                removed = engine._fault_kill_switch(ev.switch, self.policy)
            for w in removed:
                self.on_packet_failure(engine, w)
        if fired and self.controller is not None:
            # (re)arm the swap; a second fault inside the drain window
            # simply pushes the swap out so one rebuild covers both
            self._swap_due = clock + self.controller.drain_clocks
            if self._trigger_clock is None:
                self._trigger_clock = clock

    def _swap(self, engine, clock: int) -> None:
        tag = f"swap@{clock}"
        routing = self.controller.rebuild(
            self.schedule.topology, self.dead_links, self.dead_switches, tag=tag
        )
        engine._fault_swap_routing(routing)
        ejected, cancelled = engine._fault_eject_stranded()
        for w in ejected:
            self.on_packet_failure(engine, w)
        for w in cancelled:
            self.on_packet_failure(engine, w)
        self.records.append(
            ReconfigurationRecord(
                trigger_clock=(
                    self._trigger_clock if self._trigger_clock is not None else clock
                ),
                swap_clock=clock,
                routing_name=routing.name,
                ejected_worms=len(ejected),
                cancelled_packets=len(cancelled),
                verified=bool(routing.meta.get("verified", False)),
                certificate_digest=str(
                    routing.meta.get("certificate_digest", "")
                ),
                certificate_checked=bool(
                    routing.meta.get("certificate_checked", False)
                ),
            )
        )
        self._swap_due = None
        self._trigger_clock = None

    def _handle_failure(self, engine, worm) -> None:
        if (
            self.retry is None
            or worm.attempts >= self.retry.max_retries
            or worm.src in self.dead_switches
            or worm.dst in self.dead_switches
        ):
            engine.stats.on_lost()
            return
        due = engine.clock + self.retry.delay(worm.attempts)
        heapq.heappush(
            self._retry_heap,
            (
                due,
                self._retry_seq,
                (
                    worm.src,
                    worm.dst,
                    worm.full_length,
                    worm.logical_id,
                    worm.attempts + 1,
                    worm.t_gen,
                ),
            ),
        )
        self._retry_seq += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultRuntime({len(self.schedule)} events, policy={self.policy!r}, "
            f"dead_links={sorted(self.dead_links)}, "
            f"dead_switches={sorted(self.dead_switches)})"
        )
