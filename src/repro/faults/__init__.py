"""Live fault injection and online DOWN/UP reconfiguration.

The paper's resilience story (Section 6 and the static analysis in
:mod:`repro.analysis.resilience`) covers *pre-run* degradation: remove
links, rebuild routing, measure.  This package covers the live case —
links and switches failing *mid-run* under traffic:

* :class:`FaultSchedule` — deterministic, seed-driven fault plans
  (permanent link failures, transient flaps, switch failures) with a
  connectivity guard that refuses partitioning schedules;
* :class:`ReconfigurationController` — rebuilds DOWN/UP (or any other
  algorithm here) on the surviving graph, re-runs Theorem-1
  verification, and remaps the tables into the full topology's channel
  id space for an atomic swap;
* :class:`FaultRuntime` — the per-run driver an engine steps each
  clock: fires faults, manages the drain window and swap, and runs the
  source-side :class:`RetryPolicy` (capped exponential backoff).

Usage::

    schedule = FaultSchedule.random(topo, permanent_links=2, rng=42)
    controller = ReconfigurationController(
        lambda sub: build_down_up_routing(sub, rng=7), drain_clocks=64
    )
    sim = WormholeSimulator(routing, config, traffic, rng=3)
    sim.attach_faults(FaultRuntime(schedule, controller, RetryPolicy()))
    stats = sim.run()   # stats.delivered_fraction, stats.reconfigurations
"""

from repro.faults.controller import (
    ReconfigurationController,
    remap_routing,
    surviving_topology,
)
from repro.faults.runtime import (
    FaultRuntime,
    ReconfigurationRecord,
    RetryPolicy,
)
from repro.faults.schedule import (
    FaultEvent,
    FaultSchedule,
    PartitionError,
)

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "PartitionError",
    "ReconfigurationController",
    "surviving_topology",
    "remap_routing",
    "FaultRuntime",
    "ReconfigurationRecord",
    "RetryPolicy",
]
