"""Deterministic fault schedules with a connectivity guard.

A :class:`FaultSchedule` is a sorted sequence of :class:`FaultEvent`
entries — permanent link failures, transient link flaps (a DOWN edge
later matched by an UP edge), and switch failures — pinned to absolute
simulator clocks.  Two properties make schedules safe to hand to the
cycle-accurate engine:

* **determinism** — :meth:`FaultSchedule.random` derives everything
  from one seed, so the same seed reproduces the same faults down to
  the clock, which keeps fault campaigns paired across algorithms and
  byte-reproducible across runs;
* **the connectivity guard** — :meth:`FaultSchedule.validate` replays
  the events against the topology and raises :class:`PartitionError`
  for any schedule that would disconnect the surviving switches.  Link
  checks reuse the single-pass Tarjan bridge finder
  (:func:`repro.topology.validation.find_bridges`) shared with
  :mod:`repro.analysis.resilience`; switch checks BFS the survivor
  graph.  Tree-based routing recovers from *any* irregularity, but no
  routing recovers from a partition — such schedules are user errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.topology.graph import Topology
from repro.topology.validation import find_bridges
from repro.util.rng import RngLike, as_generator

LINK_DOWN = "link_down"
LINK_UP = "link_up"
SWITCH_DOWN = "switch_down"
KINDS = (LINK_DOWN, LINK_UP, SWITCH_DOWN)


class PartitionError(ValueError):
    """A fault schedule would disconnect the surviving network."""


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault transition at an absolute simulator clock."""

    cycle: int
    kind: str
    link: Optional[Tuple[int, int]] = None
    switch: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.cycle < 0:
            raise ValueError("fault cycle must be >= 0")
        if self.kind in (LINK_DOWN, LINK_UP):
            if self.link is None or self.switch is not None:
                raise ValueError(f"{self.kind} events need a link (only)")
            a, b = self.link
            object.__setattr__(
                self, "link", (a, b) if a < b else (b, a)
            )
        else:
            if self.switch is None or self.link is not None:
                raise ValueError(f"{self.kind} events need a switch (only)")

    def describe(self) -> str:
        """One-line human description ("clock 3000: link (2,7) DOWN")."""
        what = (
            f"switch {self.switch}"
            if self.kind == SWITCH_DOWN
            else f"link {self.link}"
        )
        edge = "UP" if self.kind == LINK_UP else "DOWN"
        return f"clock {self.cycle}: {what} {edge}"


def _surviving_links(
    topology: Topology,
    dead_links: Set[Tuple[int, int]],
    dead_switches: Set[int],
) -> List[Tuple[int, int]]:
    return [
        (u, v)
        for u, v in topology.links
        if (u, v) not in dead_links
        and u not in dead_switches
        and v not in dead_switches
    ]


def _live_connected(
    topology: Topology,
    dead_links: Set[Tuple[int, int]],
    dead_switches: Set[int],
) -> bool:
    """Are all surviving switches mutually reachable over surviving links?"""
    live = [v for v in range(topology.n) if v not in dead_switches]
    if len(live) <= 1:
        return True
    adj: List[List[int]] = [[] for _ in range(topology.n)]
    for u, v in _surviving_links(topology, dead_links, dead_switches):
        adj[u].append(v)
        adj[v].append(u)
    seen = {live[0]}
    stack = [live[0]]
    while stack:
        x = stack.pop()
        for w in adj[x]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    return len(seen) == len(live)


class FaultSchedule:
    """An ordered, connectivity-checked fault plan for one topology.

    Parameters
    ----------
    topology:
        The (pristine) network the schedule applies to.
    events:
        Any iterable of :class:`FaultEvent`; stored sorted by cycle
        (UP edges before DOWN edges at equal cycles, so a same-clock
        flap hand-over never transiently partitions).
    check:
        Run :meth:`validate` on construction (default).  Disable only
        for deliberately partitioning schedules in tests.
    """

    def __init__(
        self,
        topology: Topology,
        events: Iterable[FaultEvent],
        check: bool = True,
    ) -> None:
        self.topology = topology
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.cycle, KINDS.index(e.kind) != 1))
        )
        if check:
            self.validate()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def describe(self) -> str:
        """Multi-line human rendering of the whole schedule."""
        if not self.events:
            return "(empty fault schedule)"
        return "\n".join(e.describe() for e in self.events)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Replay the schedule; raise on malformed or partitioning plans.

        Checks, per event: the link/switch exists and is in the right
        state for the transition, and — for DOWN events — the surviving
        switches stay mutually connected.  Link removals are screened
        with the Tarjan bridge finder on the survivor graph; switch
        removals with a BFS.
        """
        topo = self.topology
        link_set = set(topo.links)
        dead_links: Set[Tuple[int, int]] = set()
        dead_switches: Set[int] = set()
        for ev in self.events:
            if ev.kind == LINK_DOWN:
                if ev.link not in link_set:
                    raise ValueError(f"{ev.describe()}: no such link")
                if ev.link in dead_links:
                    raise ValueError(f"{ev.describe()}: link already down")
                u, v = ev.link
                if u in dead_switches or v in dead_switches:
                    raise ValueError(
                        f"{ev.describe()}: an endpoint switch is down"
                    )
                survivor = Topology(
                    topo.n, _surviving_links(topo, dead_links, dead_switches)
                )
                if ev.link in find_bridges(survivor):
                    raise PartitionError(
                        f"{ev.describe()}: removing a bridge link would "
                        f"partition the surviving network"
                    )
                dead_links.add(ev.link)
            elif ev.kind == LINK_UP:
                if ev.link not in dead_links:
                    raise ValueError(f"{ev.describe()}: link is not down")
                u, v = ev.link
                if u in dead_switches or v in dead_switches:
                    raise ValueError(
                        f"{ev.describe()}: an endpoint switch is down"
                    )
                dead_links.discard(ev.link)
            else:  # SWITCH_DOWN
                if not (0 <= ev.switch < topo.n):
                    raise ValueError(f"{ev.describe()}: no such switch")
                if ev.switch in dead_switches:
                    raise ValueError(f"{ev.describe()}: switch already down")
                if not _live_connected(
                    topo, dead_links, dead_switches | {ev.switch}
                ):
                    raise PartitionError(
                        f"{ev.describe()}: removing the switch would "
                        f"partition the surviving network"
                    )
                dead_switches.add(ev.switch)

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        topology: Topology,
        *,
        permanent_links: int = 2,
        link_flaps: int = 0,
        switch_failures: int = 0,
        window: Tuple[int, int] = (0, 10_000),
        flap_duration: int = 1_000,
        rng: RngLike = 0,
    ) -> "FaultSchedule":
        """Draw a seed-deterministic schedule that never partitions.

        Victims are chosen chronologically against the already-degraded
        survivor graph: candidate links exclude current bridges (Tarjan
        pass per event) and candidate switches are screened by BFS, so
        the guard holds by construction.  Raises ``ValueError`` when
        the topology cannot absorb the requested fault count.
        """
        gen = as_generator(rng)
        lo, hi = window
        if hi <= lo:
            raise ValueError("need a non-empty fault window")
        downs = (
            [LINK_DOWN] * permanent_links
            + ["flap"] * link_flaps
            + [SWITCH_DOWN] * switch_failures
        )
        if not downs:
            return cls(topology, [])
        cycles = sorted(
            int(c) for c in gen.integers(lo, hi, size=len(downs))
        )
        order = gen.permutation(len(downs))
        plan = [(cycles[i], downs[order[i]]) for i in range(len(downs))]
        plan.sort(key=lambda p: p[0])

        events: List[FaultEvent] = []
        dead_links: Set[Tuple[int, int]] = set()
        dead_switches: Set[int] = set()
        pending_ups: List[Tuple[int, Tuple[int, int]]] = []
        for cycle, kind in plan:
            # apply flap UP edges that precede this DOWN event
            for up_cycle, link in sorted(pending_ups):
                if up_cycle <= cycle:
                    dead_links.discard(link)
            pending_ups = [
                (c, l) for c, l in pending_ups if c > cycle
            ]
            if kind == SWITCH_DOWN:
                candidates = [
                    v
                    for v in range(topology.n)
                    if v not in dead_switches
                    and _live_connected(
                        topology, dead_links, dead_switches | {v}
                    )
                ]
                if not candidates:
                    raise ValueError(
                        "no switch can fail without partitioning the network"
                    )
                victim = candidates[int(gen.integers(len(candidates)))]
                dead_switches.add(victim)
                events.append(
                    FaultEvent(cycle=cycle, kind=SWITCH_DOWN, switch=victim)
                )
            else:
                survivor = Topology(
                    topology.n,
                    _surviving_links(topology, dead_links, dead_switches),
                )
                removable = sorted(
                    set(survivor.links) - find_bridges(survivor)
                )
                if not removable:
                    raise ValueError(
                        "no link can fail without partitioning the network"
                    )
                link = removable[int(gen.integers(len(removable)))]
                dead_links.add(link)
                events.append(
                    FaultEvent(cycle=cycle, kind=LINK_DOWN, link=link)
                )
                if kind == "flap":
                    up_cycle = cycle + flap_duration
                    events.append(
                        FaultEvent(cycle=up_cycle, kind=LINK_UP, link=link)
                    )
                    pending_ups.append((up_cycle, link))
        return cls(topology, events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSchedule({len(self.events)} events on {self.topology})"
