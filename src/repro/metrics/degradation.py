"""Degradation metrics for live-fault runs.

Three views of how gracefully a routing algorithm absorbs mid-run
faults, all computed from :class:`~repro.simulator.stats.SimulationStats`
produced by a fault-injected run:

* **delivered fraction** — of the packets the faults forced to a
  terminal outcome, how many ultimately arrived (retries included);
* **reconfiguration latency** — clocks between a fault firing and the
  reconfigured, re-verified tables being swapped in (the drain window
  plus any coalesced follow-on faults);
* **recovery latency** — clocks from the first fault until the
  throughput timeline returns to (a tolerance band around) its
  pre-fault level;
* **saturation shift** — the relative loss of maximal accepted traffic
  between a fault-free sweep and a degraded one (the price of the
  post-fault topology, not of the transient).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.simulator.stats import SimulationStats, discrete_percentile


def delivered_fraction(stats: SimulationStats) -> float:
    """Fraction of fault-resolved packets that were delivered.

    Convenience re-export of
    :attr:`SimulationStats.delivered_fraction`; 1.0 for fault-free
    runs.
    """
    return stats.delivered_fraction


def reconfiguration_latencies(stats: SimulationStats) -> list:
    """Trigger-to-swap clocks for every online reconfiguration."""
    return [
        r.swap_clock - r.trigger_clock for r in stats.reconfigurations
    ]


def recovery_latency(
    stats: SimulationStats,
    fault_clock: int,
    warmup_clocks: int = 0,
    tolerance: float = 0.2,
) -> Optional[float]:
    """Clocks from *fault_clock* until throughput recovers, or ``None``.

    Uses the run's throughput timeline (enable it by setting the stats
    collector's ``timeline_interval``).  The pre-fault level is the
    mean windowed accepted traffic strictly before the fault; recovery
    is the first post-fault window whose throughput is within
    *tolerance* (relative) of that level.  *fault_clock* and the
    timeline are both in *window* clocks (i.e. measured from the end of
    the warmup) — pass ``fault_clock = absolute_clock - warmup_clocks``
    for a fault scheduled on the absolute clock axis.

    Returns ``None`` when there is no usable pre-fault baseline or the
    run never recovers inside the window.
    """
    fault_window_clock = fault_clock - warmup_clocks
    series = stats.throughput_series()
    before = [v for t, v in series if t <= fault_window_clock]
    if not before:
        return None
    baseline = sum(before) / len(before)
    if baseline <= 0:
        return None
    floor = (1.0 - tolerance) * baseline
    for t, v in series:
        if t > fault_window_clock and v >= floor:
            return float(t - fault_window_clock)
    return None


def saturation_shift(
    baseline_points: Sequence, degraded_points: Sequence
) -> float:
    """Relative maximal-throughput loss of a degraded sweep.

    Both arguments are :class:`~repro.metrics.saturation.RatePoint`
    sequences (fault-free vs post-fault topology).  Returns
    ``1 - degraded_max / baseline_max`` — 0.0 means the faults cost no
    capacity, 0.25 means a quarter of the saturation throughput is
    gone.
    """
    if not baseline_points or not degraded_points:
        raise ValueError("both sweeps must be non-empty")
    base = max(p.accepted for p in baseline_points)
    if base <= 0:
        raise ValueError("baseline sweep never accepted traffic")
    degraded = max(p.accepted for p in degraded_points)
    return 1.0 - degraded / base


def degradation_report(stats: SimulationStats) -> dict:
    """Compact dict of the per-run degradation numbers.

    Total-loss runs are legal inputs: under an aggressive enough fault
    schedule *zero* packets are delivered, and every ratio here
    degrades to its sentinel (``delivered_fraction`` from the resolved
    count only, latency means to ``nan``) instead of raising — campaign
    code must be able to record such a run and move on.
    """
    lat = reconfiguration_latencies(stats)
    return {
        "delivered_fraction": stats.delivered_fraction,
        "fault_drops": stats.fault_drops,
        "retries": stats.retries,
        "lost_packets": stats.lost_packets,
        "reconfigurations": len(stats.reconfigurations),
        "mean_reconfiguration_latency": (
            sum(lat) / len(lat) if lat else float("nan")
        ),
        # the same discrete quantile stats.p99_latency reports — both go
        # through discrete_percentile, so a fault report and a summary
        # row can never disagree on the interpolation method
        "p99_latency": discrete_percentile(stats.latencies, 99),
        "p99_reconfiguration_latency": discrete_percentile(lat, 99),
    }
