"""Evaluation metrics (Section 5 definitions, executable).

The paper characterises the algorithms at their maximal throughput with
four channel-utilization statistics plus the latency/throughput curves:

* **node utilization** — per switch, the summed utilization of its
  inter-switch output channels divided by its degree (Table 1);
* **traffic load** — the standard deviation of node utilization over
  all switches (Table 2; smaller = better balanced);
* **degree of hot spots** — the percentage of total node utilization
  held by switches in levels 0 and 1 of the coordinated tree (Table 3);
* **leaves utilization** — mean node utilization over the coordinated
  tree's leaves (Table 4);
* **message latency / accepted traffic** — Figure 8.

All functions work from a per-channel utilization vector, so they apply
equally to simulator output (:class:`repro.simulator.SimulationStats`)
and to the static path analysis (:mod:`repro.analysis`).
"""

from repro.metrics.utilization import (
    degree_of_hot_spots,
    leaves_utilization,
    node_utilization,
    traffic_load,
    utilization_report,
)
from repro.metrics.degradation import (
    degradation_report,
    delivered_fraction,
    reconfiguration_latencies,
    recovery_latency,
    saturation_shift,
)
from repro.metrics.direction_flow import direction_flow_shares, tree_link_share
from repro.metrics.profile import (
    level_share_profile,
    level_utilization_profile,
    render_level_profile,
)
from repro.metrics.saturation import (
    RatePoint,
    find_saturation_point,
    measure_at_saturation,
    saturation_throughput,
    sweep_injection_rates,
)

__all__ = [
    "node_utilization",
    "traffic_load",
    "degree_of_hot_spots",
    "leaves_utilization",
    "utilization_report",
    "level_share_profile",
    "level_utilization_profile",
    "render_level_profile",
    "direction_flow_shares",
    "tree_link_share",
    "find_saturation_point",
    "RatePoint",
    "sweep_injection_rates",
    "measure_at_saturation",
    "saturation_throughput",
    "delivered_fraction",
    "reconfiguration_latencies",
    "recovery_latency",
    "saturation_shift",
    "degradation_report",
]
