"""Traffic decomposition by direction class.

The DOWN/UP design goal is literal: *push traffic down the tree and off
the tree links near the root*.  This module measures that directly by
attributing channel utilization (simulated or static) to the turn
model's direction classes — e.g. what fraction of all flit-hops used
``LU_TREE`` channels?  A successful DOWN/UP run shows a smaller
``LU_TREE``/``RD_TREE`` share and a larger down-cross share than
up*/down* on the same network.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.routing.base import RoutingFunction


def direction_flow_shares(
    routing: RoutingFunction, channel_util: np.ndarray
) -> Dict[str, float]:
    """Fraction of total channel utilization per direction class.

    Uses the routing's own classification (8 classes for DOWN/UP, 4 for
    L-turn, 2 for up*/down*), keyed by class name; values sum to 1 for
    non-zero traffic.
    """
    tm = routing.turn_model
    util = np.asarray(channel_util, dtype=float)
    if len(util) != routing.topology.num_channels:
        raise ValueError(
            f"expected {routing.topology.num_channels} utilizations, got "
            f"{len(util)}"
        )
    total = float(util.sum())
    shares: Dict[str, float] = {name: 0.0 for name in tm.class_names}
    if total <= 0:
        return shares
    for cid, value in enumerate(util):
        shares[tm.class_names[tm.channel_class[cid]]] += float(value) / total
    return shares


def tree_link_share(
    routing: RoutingFunction, channel_util: np.ndarray, tree
) -> float:
    """Fraction of utilization carried by tree links (vs cross links).

    Classification-independent (uses the coordinated tree directly), so
    it compares across algorithms with different direction classes.
    """
    topo = routing.topology
    util = np.asarray(channel_util, dtype=float)
    total = float(util.sum())
    if total <= 0:
        return 0.0
    on_tree = sum(
        float(util[ch.cid])
        for ch in topo.channels
        if tree.is_tree_link(ch.start, ch.sink)
    )
    return on_tree / total
