"""Injection-rate sweeps and saturation measurement.

Figure 8 plots average message latency against *accepted* traffic for a
range of offered loads; Tables 1-4 are measured "when both routing
algorithms reach their maximal throughputs".  Two entry points:

* :func:`sweep_injection_rates` — run the simulator across a list of
  offered loads and return the (offered, accepted, latency) points;
* :func:`measure_at_saturation` — run once with a saturated source
  (offered load far above capacity, so the injection queues never
  drain); the accepted traffic then *is* the maximal throughput, and
  the channel-utilization statistics are taken in that regime, exactly
  as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.routing.base import RoutingFunction
from repro.simulator.config import SimulationConfig
from repro.simulator.engine import simulate
from repro.simulator.stats import SimulationStats
from repro.simulator.traffic import TrafficPattern


@dataclass(frozen=True)
class RatePoint:
    """One Figure-8 sample: offered vs accepted load and mean latency."""

    offered: float
    accepted: float
    latency: float
    stats: SimulationStats

    def as_row(self) -> tuple:
        """(offered, accepted, latency) for tables/CSV."""
        return (self.offered, self.accepted, self.latency)


def sweep_injection_rates(
    routing: RoutingFunction,
    base_config: SimulationConfig,
    rates: Sequence[float],
    traffic: Optional[TrafficPattern] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> List[RatePoint]:
    """Simulate *routing* at each offered load in *rates*.

    Rates are flits/clock/node; each point reuses *base_config* with the
    rate (and a rate-derived seed twist is **not** applied — identical
    seeds keep the comparison paired across algorithms, which reduces
    sample variance exactly like the paper's "same test sample" setup).
    """
    points: List[RatePoint] = []
    for rate in rates:
        cfg = base_config.with_rate(rate)
        stats = simulate(routing, cfg, traffic)
        points.append(
            RatePoint(
                offered=rate,
                accepted=stats.accepted_traffic,
                latency=stats.average_latency,
                stats=stats,
            )
        )
        if progress is not None:
            progress(
                f"{routing.name}: rate={rate:.4f} -> "
                f"accepted={stats.accepted_traffic:.4f}, "
                f"latency={stats.average_latency:.1f}"
            )
    return points


def saturation_throughput(points: Sequence[RatePoint]) -> float:
    """Maximal accepted traffic over a sweep (the paper's throughput)."""
    if not points:
        raise ValueError("empty sweep")
    return max(p.accepted for p in points)


def measure_at_saturation(
    routing: RoutingFunction,
    base_config: SimulationConfig,
    traffic: Optional[TrafficPattern] = None,
    saturation_rate: Optional[float] = None,
) -> SimulationStats:
    """One run with a saturated source; stats reflect maximal throughput.

    *saturation_rate* defaults to 1.0 flits/clock/node — the physical
    ceiling of the single consumption port, far above the capacity of
    any irregular network here, so accepted traffic plateaus at the
    true maximum while the excess piles up in the source queues.
    """
    rate = 1.0 if saturation_rate is None else saturation_rate
    return simulate(routing, base_config.with_rate(rate), traffic)


def find_saturation_point(
    routing: RoutingFunction,
    base_config: SimulationConfig,
    traffic: Optional[TrafficPattern] = None,
    tolerance: float = 0.05,
    max_iterations: int = 8,
    lo: float = 0.0,
    hi: float = 1.0,
) -> RatePoint:
    """Binary-search the offered load where the network saturates.

    Saturation is declared when accepted traffic falls more than
    *tolerance* (relative) below the offered load — i.e. the injection
    queues start growing without bound.  Returns the last point that
    still kept up, which is the knee of the Figure-8 curve; more precise
    (and cheaper near the knee) than a fixed rate grid.
    """
    best: Optional[RatePoint] = None
    for _ in range(max_iterations):
        mid = (lo + hi) / 2.0
        if mid <= 0:
            break
        stats = simulate(routing, base_config.with_rate(mid), traffic)
        point = RatePoint(
            offered=mid,
            accepted=stats.accepted_traffic,
            latency=stats.average_latency,
            stats=stats,
        )
        if stats.accepted_traffic >= (1.0 - tolerance) * mid:
            best = point  # still keeping up: knee is above mid
            lo = mid
        else:
            hi = mid
    if best is None:
        # even the smallest probed load saturated; report the hi probe
        stats = simulate(routing, base_config.with_rate(hi), traffic)
        best = RatePoint(hi, stats.accepted_traffic, stats.average_latency, stats)
    return best
