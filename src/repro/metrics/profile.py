"""Per-level utilization profiles.

The paper's "degree of hot spots" compresses the spatial traffic
distribution into one number (the levels-0-and-1 share).  The profile
below keeps the whole distribution — mean node utilization per
coordinated-tree level — which is where the difference between DOWN/UP
and the baselines is most visible: up*/down* piles utilization onto the
top levels, DOWN/UP shifts it toward the leaves.

``render_level_profile`` draws the profile as an ASCII bar chart for
reports and examples.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.coordinated_tree import CoordinatedTree
from repro.metrics.utilization import node_utilization


def level_utilization_profile(
    channel_util: np.ndarray, tree: CoordinatedTree
) -> Dict[int, float]:
    """Mean node utilization per tree level (level -> mean utilization)."""
    nu = node_utilization(channel_util, tree.topology)
    out: Dict[int, float] = {}
    for level in range(tree.depth + 1):
        nodes = tree.level_nodes(level)
        out[level] = float(np.mean([nu[v] for v in nodes])) if nodes else 0.0
    return out


def level_share_profile(
    channel_util: np.ndarray, tree: CoordinatedTree
) -> Dict[int, float]:
    """Share (%) of total node utilization per level.

    Sums to 100 for non-zero traffic; the sum of levels 0 and 1 is
    exactly the paper's Table-3 "degree of hot spots".
    """
    nu = node_utilization(channel_util, tree.topology)
    total = float(nu.sum())
    out: Dict[int, float] = {}
    for level in range(tree.depth + 1):
        nodes = tree.level_nodes(level)
        share = sum(float(nu[v]) for v in nodes)
        out[level] = 100.0 * share / total if total > 0 else 0.0
    return out


def render_level_profile(
    profiles: Dict[str, Dict[int, float]],
    width: int = 46,
    unit: str = "",
) -> str:
    """ASCII bar chart of one or more level profiles, side by side.

    *profiles* maps a series name (algorithm) to its level -> value
    dict; bars are normalised to the global maximum.
    """
    if not profiles:
        return "(no profiles)"
    levels = sorted({lv for p in profiles.values() for lv in p})
    peak = max((v for p in profiles.values() for v in p.values()), default=0.0)
    lines: List[str] = []
    for name, prof in profiles.items():
        lines.append(f"{name}:")
        for lv in levels:
            value = prof.get(lv, 0.0)
            bar = "#" * (int(round(value / peak * width)) if peak > 0 else 0)
            lines.append(f"  level {lv:2d} |{bar:<{width}}| {value:.4g}{unit}")
    return "\n".join(lines)
