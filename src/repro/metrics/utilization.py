"""Channel-utilization statistics (Tables 1-4 definitions).

Every function takes the per-channel utilization vector (flits per clock
per channel — :meth:`repro.simulator.SimulationStats.channel_utilization`
or the static estimate from :mod:`repro.analysis.static_load`) plus the
structural objects the definition references (topology, coordinated
tree).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.coordinated_tree import CoordinatedTree
from repro.topology.graph import Topology


def node_utilization(
    channel_util: np.ndarray, topology: Topology
) -> np.ndarray:
    """Per-switch node utilization (Table 1 definition).

    "The node utilization of a node is defined as the sum of utilization
    of all output channels of the node divided by the number of ports
    connecting to other switches."  Only inter-switch channels exist in
    ``channel_util``; injection/consumption ports are excluded by
    construction.
    """
    if len(channel_util) != topology.num_channels:
        raise ValueError(
            f"expected {topology.num_channels} channel utilizations, got "
            f"{len(channel_util)}"
        )
    out = np.zeros(topology.n, dtype=float)
    for v in range(topology.n):
        outs = topology.output_channels(v)
        if outs:
            out[v] = float(sum(channel_util[c] for c in outs)) / len(outs)
    return out


def traffic_load(node_util: np.ndarray) -> float:
    """Traffic load (Table 2): population stddev of node utilization.

    Smaller means a better-balanced load.
    """
    return float(np.std(np.asarray(node_util, dtype=float)))


def degree_of_hot_spots(
    node_util: np.ndarray, tree: CoordinatedTree
) -> float:
    """Degree of hot spots (Table 3), in percent.

    "The percentage of the node utilization of nodes in levels 0 and 1
    of a coordinated tree" — i.e. the share of total node utilization
    concentrated at the root and its children.  Returns 0 when the
    network carries no traffic at all.
    """
    util = np.asarray(node_util, dtype=float)
    total = float(util.sum())
    if total == 0.0:
        return 0.0
    top = sum(float(util[v]) for v in range(tree.n) if tree.y[v] <= 1)
    return 100.0 * top / total


def leaves_utilization(
    node_util: np.ndarray, tree: CoordinatedTree
) -> float:
    """Leaves utilization (Table 4): mean node utilization over CT leaves.

    Higher means more traffic flows via the leaves, away from the root.
    """
    leaves = tree.leaves()
    if not leaves:
        return 0.0
    util = np.asarray(node_util, dtype=float)
    return float(np.mean([util[v] for v in leaves]))


def utilization_report(
    channel_util: np.ndarray, tree: CoordinatedTree
) -> Dict[str, float]:
    """All four table metrics for one run, as a dict.

    Keys: ``node_utilization`` (mean over switches — the Table 1
    aggregate), ``traffic_load``, ``hot_spot_degree`` (percent),
    ``leaves_utilization``.
    """
    nu = node_utilization(channel_util, tree.topology)
    return {
        "node_utilization": float(np.mean(nu)),
        "traffic_load": traffic_load(nu),
        "hot_spot_degree": degree_of_hot_spots(nu, tree),
        "leaves_utilization": leaves_utilization(nu, tree),
    }
