"""Benchmarks: adaptive output-selection policies and traffic patterns.

Ablations over the engine's selection policy (the paper specifies
random selection among free minimal candidates) and over the traffic
patterns the extension studies use.
"""

import pytest

from repro.core.downup import build_down_up_routing
from repro.simulator import (
    BitComplementTraffic,
    HotspotTraffic,
    LocalTraffic,
    SimulationConfig,
    TornadoTraffic,
    UniformTraffic,
    simulate,
)
from repro.topology.generator import random_irregular_topology


@pytest.fixture(scope="module")
def setup32():
    topo = random_irregular_topology(32, 4, rng=23)
    return topo, build_down_up_routing(topo)


@pytest.mark.parametrize("policy", ["random", "first", "least-congested"])
def test_selection_policy(benchmark, setup32, policy):
    _topo, routing = setup32
    cfg = SimulationConfig(
        packet_length=16, injection_rate=1.0,
        warmup_clocks=500, measure_clocks=2_000, seed=3,
        selection_policy=policy,
    )
    stats = benchmark.pedantic(
        lambda: simulate(routing, cfg), rounds=1, iterations=1
    )
    assert stats.accepted_traffic > 0


@pytest.mark.parametrize(
    "pattern",
    ["uniform", "hotspot", "tornado", "local", "bitcomp"],
)
def test_traffic_pattern(benchmark, setup32, pattern):
    topo, routing = setup32
    traffic = {
        "uniform": lambda: UniformTraffic(topo.n),
        "hotspot": lambda: HotspotTraffic(topo.n, hotspots=[0], fraction=0.2),
        "tornado": lambda: TornadoTraffic(topo.n),
        "local": lambda: LocalTraffic(topo.n, radius=3),
        "bitcomp": lambda: BitComplementTraffic(topo.n),
    }[pattern]()
    cfg = SimulationConfig(
        packet_length=16, injection_rate=0.3,
        warmup_clocks=500, measure_clocks=2_000, seed=4,
    )
    stats = benchmark.pedantic(
        lambda: simulate(routing, cfg, traffic), rounds=1, iterations=1
    )
    assert stats.accepted_traffic > 0
