"""Benchmark: regenerate Figure 8 (latency vs accepted traffic).

``test_figure8a`` regenerates Figure 8(a) (4-port) and
``test_figure8b`` Figure 8(b) (8-port) at the ``tiny`` preset — the
same sweep/aggregation code the ``paper`` preset runs for the archival
numbers.  Each bench asserts the curves have the paper's qualitative
shape (latency grows with accepted traffic; DOWN/UP saturates at or
above L-turn under M1) before reporting the timing.
"""

from repro.experiments.figure8 import run_figure8


def _check(result):
    for name, pts in result.series.items():
        assert pts, f"empty series {name}"
        # latency at the highest load >= latency at the lowest load
        assert pts[-1][1] >= pts[0][1] * 0.8
    du = result.saturation_throughput("down-up/M1")
    lt = result.saturation_throughput("l-turn/M1")
    assert du >= 0.8 * lt  # qualitative: DOWN/UP >= L-turn (noise margin)


def test_figure8a_4port(benchmark, tiny_preset):
    result = benchmark.pedantic(
        lambda: run_figure8(tiny_preset, ports=4),
        rounds=1,
        iterations=1,
    )
    _check(result)


def test_figure8b_8port(benchmark, tiny_preset):
    preset = tiny_preset.scaled(ports=(8,))
    result = benchmark.pedantic(
        lambda: run_figure8(preset, ports=8),
        rounds=1,
        iterations=1,
    )
    _check(result)
