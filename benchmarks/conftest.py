"""Benchmark fixtures.

Benchmarks regenerate the paper's tables and figures at the ``tiny``
or ``quick`` preset (identical code paths to the full-scale runs; see
``python -m repro.experiments`` for archival-scale regeneration) and
measure the cost of the library's construction and simulation stages.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.experiments.configs import get_preset
from repro.topology.generator import random_irregular_topology


@pytest.fixture(scope="session")
def tiny_preset():
    return get_preset("tiny")


@pytest.fixture(scope="session")
def quick_preset():
    # trimmed quick preset: 4-port only, M1-M3, 1 sample per bench round
    return get_preset("quick").scaled(samples=1)


@pytest.fixture(scope="session")
def topo64():
    return random_irregular_topology(64, 4, rng=64)


@pytest.fixture(scope="session")
def topo128():
    return random_irregular_topology(128, 4, rng=128)


@pytest.fixture(scope="session")
def topo128_8p():
    return random_irregular_topology(128, 8, rng=128)
