"""Fast-path engine benchmark and perf-regression gate.

Measures the clock-loop speedup of the active-set / decision-cache fast
path over the seed reference step implementations on the standard
scenario (64 switches, 4 ports, 128-flit packets, 0.3 injection rate)
and asserts bit-identity of the results while doing so — a speedup
measured against a diverging simulation would be meaningless.

Timing methodology: CPU time (``time.process_time``) over paired
adjacent reference/fast runs, reporting the median of the per-pair
ratios.  Pairing bounds the impact of machine noise: both runs of a
pair see roughly the same interference, and the median discards
outlier pairs entirely.

Usage::

    python benchmarks/bench_engine_fastpath.py            # measure, print
    python benchmarks/bench_engine_fastpath.py --write    # refresh baseline
    python benchmarks/bench_engine_fastpath.py --check    # CI gate: fail on
                                                          # >20% regression
    python benchmarks/bench_engine_fastpath.py --quick    # fewer/shorter runs

The committed baseline lives next to this script in
``BENCH_engine_fastpath.json``.  The CI gate compares *speedup ratios*
(dimensionless, per-pair), not wall/CPU times, so it is portable across
machines of different absolute speed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.downup import build_down_up_routing  # noqa: E402
from repro.simulator import (  # noqa: E402
    SimulationConfig,
    VirtualChannelSimulator,
    WormholeSimulator,
)
from repro.topology.generator import random_irregular_topology  # noqa: E402

BASELINE = Path(__file__).resolve().parent / "BENCH_engine_fastpath.json"
REGRESSION_TOLERANCE = 0.20  # CI fails if speedup drops >20% below baseline


def standard_scenario(quick: bool = False):
    """The acceptance scenario: 64 switches, 0.3 load, 128-flit worms."""
    topo = random_irregular_topology(64, 4, rng=64)
    routing = build_down_up_routing(topo, rng=7)
    cfg = SimulationConfig(
        packet_length=128,
        injection_rate=0.3,
        warmup_clocks=500 if quick else 1_000,
        measure_clocks=2_000 if quick else 5_000,
        seed=7,
    )
    return topo, routing, cfg


def _timed_run(make_sim, cfg):
    sim = make_sim(cfg)
    t0 = time.process_time()
    stats = sim.run()
    return time.process_time() - t0, stats.canonical_digest()


def measure(make_sim, cfg, pairs: int):
    """Median per-pair speedup of fast over reference; asserts identity."""
    ratios = []
    for _ in range(pairs):
        t_ref, d_ref = _timed_run(make_sim, cfg.with_fast_path(False))
        t_fast, d_fast = _timed_run(make_sim, cfg.with_fast_path(True))
        if d_ref != d_fast:
            raise AssertionError(
                "fast path diverged from the reference engine — "
                "run tests/test_engine_equivalence.py for a minimal repro"
            )
        ratios.append(t_ref / t_fast)
    return {
        "speedup_median": round(statistics.median(ratios), 3),
        "speedup_min": round(min(ratios), 3),
        "speedup_max": round(max(ratios), 3),
        "pairs": pairs,
    }


def run_benchmarks(quick: bool = False) -> dict:
    _topo, routing, cfg = standard_scenario(quick)
    pairs = 3 if quick else 8
    results = {
        "mode": "quick" if quick else "full",
        "scenario": {
            "switches": 64,
            "ports": 4,
            "packet_length": cfg.packet_length,
            "injection_rate": cfg.injection_rate,
            "measure_clocks": cfg.measure_clocks,
            "seed": cfg.seed,
        },
        "engines": {},
    }
    print(f"scenario: 64sw/4p, load 0.3, {cfg.measure_clocks} clocks, "
          f"{pairs} paired runs per engine", flush=True)
    r = measure(lambda c: WormholeSimulator(routing, c), cfg, pairs)
    results["engines"]["base"] = r
    print(f"  base engine: median {r['speedup_median']}x "
          f"(min {r['speedup_min']}, max {r['speedup_max']})", flush=True)
    r = measure(
        lambda c: VirtualChannelSimulator(routing, c, num_vcs=2), cfg, pairs
    )
    results["engines"]["vc"] = r
    print(f"  vc engine (V=2): median {r['speedup_median']}x "
          f"(min {r['speedup_min']}, max {r['speedup_max']})", flush=True)
    return results


def check(results: dict) -> int:
    """Compare measured speedups against the committed baseline.

    Quick runs are gated against the quick baseline section (shorter
    runs measure systematically lower speedups — setup is amortized
    over fewer clocks — so they need their own reference point)."""
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; run with --write first")
        return 2
    baseline = json.loads(BASELINE.read_text())
    section = "engines_quick" if results["mode"] == "quick" else "engines"
    if section not in baseline:
        print(f"baseline has no {section!r} section; "
              f"run --write {'--quick' if section.endswith('quick') else ''}")
        return 2
    failed = False
    for engine, base in baseline[section].items():
        got = results["engines"][engine]["speedup_median"]
        floor = base["speedup_median"] * (1 - REGRESSION_TOLERANCE)
        status = "ok" if got >= floor else "REGRESSION"
        failed |= got < floor
        print(f"  {engine}: measured {got}x vs baseline "
              f"{base['speedup_median']}x (floor {floor:.2f}x) -> {status}")
    return 1 if failed else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--write", action="store_true",
                    help="write results as the new committed baseline")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero if speedup regressed >20%% vs baseline")
    ap.add_argument("--quick", action="store_true",
                    help="shorter runs (CI smoke; noisier)")
    args = ap.parse_args(argv)
    results = run_benchmarks(quick=args.quick)
    if args.write:
        merged = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        merged.setdefault("scenario", results["scenario"])
        key = "engines_quick" if args.quick else "engines"
        merged[key] = results["engines"]
        BASELINE.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"baseline ({key}) written to {BASELINE}")
        return 0
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
