"""Replica-batched driver benchmark and perf-regression gate.

Measures the aggregate-throughput speedup of the fused replica driver
(:func:`repro.simulator.replica_batch.run_replicated`) over R
*sequential* ``engine="batch"`` runs of the same seeds, on the
acceptance scenario the PR contract names: 64 switches / 8 ports,
R = 16 seed replicas.

The matrix has two sections:

* **design regime** (gated): packet length 512 at offered loads
  {0.02, 0.03, 0.05} — the light-load/long-packet operating points a
  many-seed certification sweep actually runs at, where the per-clock
  dispatch wall the driver amortizes dominates and per-replica event
  work (grants, drains, arbitration — identical work in both drivers)
  is sparse.  The acceptance number is the median of these cells
  (``speedup_median_design``); the PR contract requires it >= 4x.
* **informational**: heavier points (packet length 128, loads up to
  0.45) committed so the baseline documents the full shape.  As load
  rises, scalar per-event arbitration — which the fused driver shares
  with the sequential one — grows toward an Amdahl ceiling near 2.5x;
  see ``docs/simulator.md`` for the breakdown.  These cells gate only
  on regression (ratio vs committed baseline), not on an absolute
  floor.

Every timed pair *also* asserts the determinism contract inline: the
R per-replica ``statistical_fingerprint``s from the fused run must be
identical, seed for seed, to the R sequential runs that provide the
timing baseline.  A speedup over diverging replicas would be
meaningless, so the packing-invariance check rides in the benchmark
itself rather than only in the test suite.

Timing methodology: CPU time (``time.process_time``) over adjacent
fused/sequential pairs, interleaved so both see the same machine
interference, reporting the median of per-pair ratios.  The CI gate
compares speedup ratios (dimensionless), not absolute times, so it is
portable across machines of different absolute speed.

Usage::

    python benchmarks/bench_replica_batch.py            # measure, print
    python benchmarks/bench_replica_batch.py --write    # refresh baseline
    python benchmarks/bench_replica_batch.py --check    # CI gate: fail on
                                                        # >20% regression
    python benchmarks/bench_replica_batch.py --quick    # fewer/shorter runs

The committed baseline lives next to this script in
``BENCH_replica_batch.json``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.downup import build_down_up_routing  # noqa: E402
from repro.simulator import SimulationConfig, WormholeSimulator  # noqa: E402
from repro.simulator.replica_batch import (  # noqa: E402
    replica_seeds,
    run_replicated,
)
from repro.topology.generator import random_irregular_topology  # noqa: E402

BASELINE = Path(__file__).resolve().parent / "BENCH_replica_batch.json"
REGRESSION_TOLERANCE = 0.20  # CI fails if speedup drops >20% below baseline
CONTRACT_MIN_SPEEDUP = 4.0  # design-regime acceptance floor (full mode)

#: the acceptance scenario: 64sw/8p, 16 seed replicas
SWITCHES, PORTS, REPLICAS = 64, 8, 16
#: design-regime cells (gated on the >= 4x contract median)
DESIGN_MATRIX = ((0.02, 512), (0.03, 512), (0.05, 512))
#: heavier cells committed for shape documentation (regression-gated only)
INFO_MATRIX = ((0.05, 128), (0.15, 128), (0.15, 512), (0.45, 512))


def _config(rate: float, pl: int, clocks: int) -> SimulationConfig:
    return SimulationConfig(
        packet_length=pl,
        injection_rate=rate,
        warmup_clocks=clocks // 3,
        measure_clocks=clocks,
        seed=42,
        engine="batch",
        replicas=REPLICAS,
    )


def measure(routing, rate: float, pl: int, clocks: int, pairs: int) -> dict:
    """Median fused-over-sequential speedup for one scenario cell.

    Each pair times one fused ``run_replicated`` against the R
    sequential batch runs of the same seeds, and asserts the
    per-replica fingerprints agree seed for seed (the packing
    invariance the determinism contract promises).
    """
    cfg = _config(rate, pl, clocks)
    seeds = replica_seeds(cfg)
    ratios = []
    for _ in range(pairs):
        t0 = time.process_time()
        fused = run_replicated(routing, cfg)
        t_fused = time.process_time() - t0
        t0 = time.process_time()
        sequential = [
            WormholeSimulator(routing, cfg.with_seed(s)).run() for s in seeds
        ]
        t_seq = time.process_time() - t0
        for r, (a, b) in enumerate(zip(fused, sequential)):
            if a.statistical_fingerprint() != b.statistical_fingerprint():
                raise AssertionError(
                    f"replica packing changed replica {r}'s result at "
                    f"rate={rate} pl={pl} (seed {seeds[r]}): fused and "
                    "sequential fingerprints differ"
                )
        ratios.append(t_seq / t_fused)
    return {
        "rate": rate,
        "packet_length": pl,
        "replicas": REPLICAS,
        "speedup_median": round(statistics.median(ratios), 3),
        "speedup_min": round(min(ratios), 3),
        "speedup_max": round(max(ratios), 3),
        "pairs": pairs,
    }


def run_benchmarks(quick: bool = False) -> dict:
    pairs = 2 if quick else 3
    clocks = 1_500 if quick else 4_500
    design = DESIGN_MATRIX[:1] if quick else DESIGN_MATRIX
    info = INFO_MATRIX[1:2] if quick else INFO_MATRIX
    results = {
        "mode": "quick" if quick else "full",
        "scenario": {
            "switches": SWITCHES,
            "ports": PORTS,
            "replicas": REPLICAS,
            "design_matrix": [list(m) for m in DESIGN_MATRIX],
            "info_matrix": [list(m) for m in INFO_MATRIX],
            "seed": 42,
        },
        "engines": {},
    }
    topo = random_irregular_topology(SWITCHES, PORTS, rng=7)
    routing = build_down_up_routing(topo)
    # prime the shared per-destination row cache (untimed) so the timed
    # pairs measure the steady state a certification sweep runs in
    t0 = time.process_time()
    WormholeSimulator(routing, _config(0.45, 128, clocks // 3)).run()
    results["prime_seconds"] = round(time.process_time() - t0, 3)
    print(
        f"{SWITCHES}sw/{PORTS}p, R={REPLICAS}, {clocks} measured clocks, "
        f"{pairs} paired runs per cell (fused vs {REPLICAS} sequential), "
        f"rows primed in {results['prime_seconds']}s",
        flush=True,
    )
    medians = []
    for rate, pl in design:
        r = measure(routing, rate, pl, clocks, pairs)
        results["engines"][f"design_rate{rate}_pl{pl}"] = r
        medians.append(r["speedup_median"])
        print(f"  [design] rate={rate} pl={pl}: median {r['speedup_median']}x "
              f"(min {r['speedup_min']}, max {r['speedup_max']})", flush=True)
    for rate, pl in info:
        r = measure(routing, rate, pl, clocks, pairs)
        results["engines"][f"info_rate{rate}_pl{pl}"] = r
        print(f"  [info]   rate={rate} pl={pl}: median {r['speedup_median']}x "
              f"(min {r['speedup_min']}, max {r['speedup_max']})", flush=True)
    results["speedup_median_design"] = round(statistics.median(medians), 3)
    print(f"  design-regime acceptance median: "
          f"{results['speedup_median_design']}x", flush=True)
    return results


def check(results: dict) -> int:
    """Gate measured speedups against the committed baseline.

    Quick runs gate against the quick baseline section (shorter runs
    amortize setup over fewer clocks and are noisier, so they need
    their own reference).  Full runs additionally enforce the absolute
    >= 4x design-regime contract.
    """
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; run with --write first")
        return 2
    baseline = json.loads(BASELINE.read_text())
    section = "engines_quick" if results["mode"] == "quick" else "engines"
    if section not in baseline:
        print(f"baseline has no {section!r} section; "
              f"run --write {'--quick' if section.endswith('quick') else ''}")
        return 2
    failed = False
    for scenario, base in baseline[section].items():
        if scenario not in results["engines"]:
            continue
        got = results["engines"][scenario]["speedup_median"]
        floor = base["speedup_median"] * (1 - REGRESSION_TOLERANCE)
        status = "ok" if got >= floor else "REGRESSION"
        failed |= got < floor
        print(f"  {scenario}: measured {got}x vs baseline "
              f"{base['speedup_median']}x (floor {floor:.2f}x) -> {status}")
    if results["mode"] == "full":
        got = results["speedup_median_design"]
        status = "ok" if got >= CONTRACT_MIN_SPEEDUP else "BELOW CONTRACT"
        failed |= got < CONTRACT_MIN_SPEEDUP
        print(f"  design-regime median: {got}x vs contract "
              f"{CONTRACT_MIN_SPEEDUP}x -> {status}")
    return 1 if failed else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--write", action="store_true",
                    help="write results as the new committed baseline")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero if speedup regressed >20%% vs baseline")
    ap.add_argument("--quick", action="store_true",
                    help="shorter runs (CI smoke; noisier)")
    args = ap.parse_args(argv)
    results = run_benchmarks(quick=args.quick)
    if args.write:
        merged = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        merged.setdefault("scenario", results["scenario"])
        key = "engines_quick" if args.quick else "engines"
        merged[key] = results["engines"]
        merged[f"prime_seconds_{results['mode']}"] = results["prime_seconds"]
        if not args.quick:
            merged["speedup_median_design"] = results["speedup_median_design"]
        BASELINE.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"baseline ({key}) written to {BASELINE}")
        return 0
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
