"""Benchmarks: wormhole-engine throughput.

Reports simulated clocks/second (and flit-events implicitly) across
network sizes and loads, the number that determines how expensive the
``paper`` preset is.  These are the profiling targets the optimization
guides say to watch before tuning anything.
"""

import pytest

from repro.core.downup import build_down_up_routing
from repro.simulator import SimulationConfig, WormholeSimulator
from repro.topology.generator import random_irregular_topology


def _run(routing, rate, clocks, length=16):
    cfg = SimulationConfig(
        packet_length=length,
        injection_rate=rate,
        warmup_clocks=0,
        measure_clocks=clocks,
        seed=1,
    )
    sim = WormholeSimulator(routing, cfg)
    sim.stats.active = True
    for _ in range(clocks):
        sim.step()
        sim.stats.window_clocks += 1
    return sim.stats.finalize(0)


@pytest.mark.parametrize("n", [16, 32, 64], ids=lambda n: f"{n}sw")
def test_engine_light_load(benchmark, n):
    topo = random_irregular_topology(n, 4, rng=n)
    routing = build_down_up_routing(topo)
    stats = benchmark.pedantic(
        lambda: _run(routing, rate=0.05, clocks=2_000), rounds=2, iterations=1
    )
    assert stats.accepted_traffic > 0


@pytest.mark.parametrize("n", [16, 32, 64], ids=lambda n: f"{n}sw")
def test_engine_saturated(benchmark, n):
    topo = random_irregular_topology(n, 4, rng=n)
    routing = build_down_up_routing(topo)
    stats = benchmark.pedantic(
        lambda: _run(routing, rate=1.0, clocks=2_000), rounds=2, iterations=1
    )
    assert stats.accepted_traffic > 0


def test_engine_paper_scale_slice(benchmark):
    """A short slice of the paper configuration (128 switches, 8 ports,
    128-flit packets) — the per-clock cost that dominates archival runs."""
    topo = random_irregular_topology(128, 8, rng=0)
    routing = build_down_up_routing(topo)
    stats = benchmark.pedantic(
        lambda: _run(routing, rate=0.3, clocks=1_000, length=128),
        rounds=1,
        iterations=1,
    )
    assert stats.offered_traffic > 0
