"""Vectorized-core benchmark and perf-regression gate.

Measures the clock-loop speedup of the struct-of-arrays vectorized
engine (``engine: vectorized``) over the active-set fast path on the
standard scenario (64 switches, 4 ports, 128-flit packets, 0.3
injection rate) plus a larger 256-switch scale point, asserting
bit-identity of the results while doing so — a speedup measured
against a diverging simulation would be meaningless.

Honest numbers: the fast path already reduced per-clock work to
``O(occupied channels)`` with memoized header requests, so the
vectorized core's win at 64 switches is bounded by what batching can
shave off the remaining per-clock constant.  The per-clock RNG
protocol alone (``rng.permutation`` over the request list, drawn
identically in every engine to keep digests bit-equal) costs ~3.5µs of
the fast path's ~35µs clock, and the request-list rebuild on
grant-dirty clocks is shared by both engines, so the reachable ceiling
at this scale is a low single-digit multiple, not an order of
magnitude.  The committed baseline records the measured median (~1.1x
at 64sw, growing with topology size as the batched body phase
amortizes); the CI gate protects against *regressions from that
baseline*, same as the fast-path gate.

Timing methodology: CPU time (``time.process_time``) over paired
adjacent fast/vectorized runs, reporting the median of the per-pair
ratios.  Pairing bounds the impact of machine noise: both runs of a
pair see roughly the same interference, and the median discards
outlier pairs entirely.

Usage::

    python benchmarks/bench_vectorized_core.py            # measure, print
    python benchmarks/bench_vectorized_core.py --write    # refresh baseline
    python benchmarks/bench_vectorized_core.py --check    # CI gate: fail on
                                                          # >20% regression
    python benchmarks/bench_vectorized_core.py --quick    # fewer/shorter runs

The committed baseline lives next to this script in
``BENCH_vectorized_core.json``.  The CI gate compares *speedup ratios*
(dimensionless, per-pair), not wall/CPU times, so it is portable across
machines of different absolute speed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.downup import build_down_up_routing  # noqa: E402
from repro.simulator import SimulationConfig, WormholeSimulator  # noqa: E402
from repro.topology.generator import random_irregular_topology  # noqa: E402

BASELINE = Path(__file__).resolve().parent / "BENCH_vectorized_core.json"
REGRESSION_TOLERANCE = 0.20  # CI fails if speedup drops >20% below baseline


def standard_scenario(quick: bool = False):
    """The acceptance scenario: 64 switches, 0.3 load, 128-flit worms."""
    topo = random_irregular_topology(64, 4, rng=64)
    routing = build_down_up_routing(topo, rng=7)
    cfg = SimulationConfig(
        packet_length=128,
        injection_rate=0.3,
        warmup_clocks=500 if quick else 1_000,
        measure_clocks=2_000 if quick else 5_000,
        seed=7,
    )
    return topo, routing, cfg


def scale_scenario(quick: bool = False):
    """The amortization scale point: 256 switches, same load profile."""
    topo = random_irregular_topology(256, 4, rng=13)
    routing = build_down_up_routing(topo, rng=7)
    cfg = SimulationConfig(
        packet_length=128,
        injection_rate=0.3,
        warmup_clocks=300 if quick else 600,
        measure_clocks=1_000 if quick else 2_500,
        seed=7,
    )
    return topo, routing, cfg


def _timed_run(routing, cfg):
    sim = WormholeSimulator(routing, cfg)
    t0 = time.process_time()
    stats = sim.run()
    return time.process_time() - t0, stats.canonical_digest()


def measure(routing, cfg, pairs: int):
    """Median per-pair speedup of vectorized over fast; asserts identity."""
    ratios = []
    for _ in range(pairs):
        t_fast, d_fast = _timed_run(routing, cfg.with_engine("fast"))
        t_vec, d_vec = _timed_run(routing, cfg.with_engine("vectorized"))
        if d_fast != d_vec:
            raise AssertionError(
                "vectorized engine diverged from the fast path — "
                "run tests/test_engine_equivalence.py for a minimal repro"
            )
        ratios.append(t_fast / t_vec)
    return {
        "speedup_median": round(statistics.median(ratios), 3),
        "speedup_min": round(min(ratios), 3),
        "speedup_max": round(max(ratios), 3),
        "pairs": pairs,
    }


def run_benchmarks(quick: bool = False) -> dict:
    pairs = 3 if quick else 8
    results = {
        "mode": "quick" if quick else "full",
        "scenario": {
            "switches": 64,
            "ports": 4,
            "packet_length": 128,
            "injection_rate": 0.3,
            "seed": 7,
            "scale_point_switches": 256,
        },
        "engines": {},
    }
    _topo, routing, cfg = standard_scenario(quick)
    print(f"scenario: 64sw/4p, load 0.3, {cfg.measure_clocks} clocks, "
          f"{pairs} paired runs (vectorized vs fast)", flush=True)
    r = measure(routing, cfg, pairs)
    results["engines"]["standard_64sw"] = r
    print(f"  64sw: median {r['speedup_median']}x "
          f"(min {r['speedup_min']}, max {r['speedup_max']})", flush=True)
    _topo, routing, cfg = scale_scenario(quick)
    r = measure(routing, cfg, pairs)
    results["engines"]["scale_256sw"] = r
    print(f"  256sw: median {r['speedup_median']}x "
          f"(min {r['speedup_min']}, max {r['speedup_max']})", flush=True)
    return results


def check(results: dict) -> int:
    """Compare measured speedups against the committed baseline.

    Quick runs are gated against the quick baseline section (shorter
    runs measure systematically different speedups — setup is amortized
    over fewer clocks — so they need their own reference point)."""
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; run with --write first")
        return 2
    baseline = json.loads(BASELINE.read_text())
    section = "engines_quick" if results["mode"] == "quick" else "engines"
    if section not in baseline:
        print(f"baseline has no {section!r} section; "
              f"run --write {'--quick' if section.endswith('quick') else ''}")
        return 2
    failed = False
    for scenario, base in baseline[section].items():
        got = results["engines"][scenario]["speedup_median"]
        floor = base["speedup_median"] * (1 - REGRESSION_TOLERANCE)
        status = "ok" if got >= floor else "REGRESSION"
        failed |= got < floor
        print(f"  {scenario}: measured {got}x vs baseline "
              f"{base['speedup_median']}x (floor {floor:.2f}x) -> {status}")
    return 1 if failed else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--write", action="store_true",
                    help="write results as the new committed baseline")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero if speedup regressed >20%% vs baseline")
    ap.add_argument("--quick", action="store_true",
                    help="shorter runs (CI smoke; noisier)")
    args = ap.parse_args(argv)
    results = run_benchmarks(quick=args.quick)
    if args.write:
        merged = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        merged.setdefault("scenario", results["scenario"])
        key = "engines_quick" if args.quick else "engines"
        merged[key] = results["engines"]
        BASELINE.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"baseline ({key}) written to {BASELINE}")
        return 0
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
