"""Batch-engine benchmark and perf-regression gate.

Measures the clock-loop speedup of the relaxed-contract batch engine
(``engine: batch``) over the active-set fast path on a 256-switch
scenario matrix — offered loads {0.3, 0.6, 0.9} crossed with packet
lengths {128, 512} — plus a 1024-switch end-to-end scale point.  The
acceptance number is the **median of the per-scenario median speedups
at 256 switches** (committed as ``speedup_median_256sw``); the PR
contract requires it to be >= 3x.

Unlike the bit-exact benchmarks this one cannot assert digest
equality — the batch engine's whole point is dropping the sequential
RNG-replay arbitration that digest equality requires.  Instead it
asserts the relaxed contract's two invariants inline:

* **determinism**: repeated batch runs of one (config, seed) must
  produce the same ``statistical_fingerprint``;
* **certification**: distributional equality against the bit-exact
  oracles is the equivalence gate's job
  (``repro-experiments equivalence``), run separately in CI — a
  speedup over a *diverging* simulation would be meaningless, so CI
  runs the gate next to this benchmark.

Speedups grow with packet length (fewer header decisions per flit
moved, so the vectorized body phase dominates) and with topology size
(wider numpy batches per clock); both axes are in the matrix so the
committed baseline documents the shape, not just one flattering point.
The deadlock watchdog is disabled (``deadlock_interval=0``) to time
the engine loops themselves, not the shared periodic analysis.

The batch engine encodes per-destination candidate rows once per
*routing* (cached on the routing object, shared by every later run —
the same amortization the construction artifact cache gives topologies
and tables).  That one-time cost is paid by an untimed priming run per
routing and reported separately (``prime_seconds``), so the timed
pairs measure the steady state a campaign actually runs in, and the
setup cost is documented rather than smeared into one arbitrary pair.
Both modes (quick CI smoke included) also assert the priming stays
*sub-linear in scenario count*: the row cache may grow only marginally
while the matrix runs, proving its cost is O(destinations) and paid
once, not O(scenarios).

Timing methodology: CPU time (``time.process_time``) over paired
adjacent fast/batch runs, interleaved so both see the same machine
interference, reporting the median of per-pair ratios.

Usage::

    python benchmarks/bench_batch_engine.py            # measure, print
    python benchmarks/bench_batch_engine.py --write    # refresh baseline
    python benchmarks/bench_batch_engine.py --check    # CI gate: fail on
                                                       # >20% regression
    python benchmarks/bench_batch_engine.py --quick    # fewer/shorter runs

The committed baseline lives next to this script in
``BENCH_batch_engine.json``.  The CI gate compares *speedup ratios*
(dimensionless, per-pair), not absolute times, so it is portable
across machines of different absolute speed.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.downup import build_down_up_routing  # noqa: E402
from repro.simulator import SimulationConfig, WormholeSimulator  # noqa: E402
from repro.topology.generator import random_irregular_topology  # noqa: E402

BASELINE = Path(__file__).resolve().parent / "BENCH_batch_engine.json"
REGRESSION_TOLERANCE = 0.20  # CI fails if speedup drops >20% below baseline

#: the 256-switch acceptance matrix: load x packet length
MATRIX = (
    (0.3, 128), (0.6, 128), (0.9, 128),
    (0.3, 512), (0.6, 512), (0.9, 512),
)


def _config(rate: float, pl: int, clocks: int, seed: int) -> SimulationConfig:
    return SimulationConfig(
        packet_length=pl,
        injection_rate=rate,
        warmup_clocks=clocks // 5,
        measure_clocks=clocks,
        seed=seed,
        deadlock_interval=0,
    )


def _timed_run(routing, cfg):
    sim = WormholeSimulator(routing, cfg)
    t0 = time.process_time()
    stats = sim.run()
    return time.process_time() - t0, stats


def _prime_rows(routing, clocks: int) -> float:
    """One untimed high-load batch run to populate the shared row cache.

    Rate 0.9 over the full run length touches essentially every
    destination, so later timed runs find their candidate rows already
    encoded on the routing object.  Returns the priming CPU time
    (row encoding plus one full run) for the report.
    """
    t, _ = _timed_run(
        routing, _config(0.9, 128, clocks, seed=0).with_engine("batch")
    )
    return round(t, 3)


def measure(routing, rate: float, pl: int, clocks: int, pairs: int) -> dict:
    """Median per-pair batch-over-fast speedup for one scenario.

    Also asserts batch determinism: every pair reruns seed 0, and all
    seed-0 fingerprints must agree.
    """
    ratios = []
    fingerprints = set()
    for _ in range(pairs):
        cfg = _config(rate, pl, clocks, seed=0)
        t_fast, _ = _timed_run(routing, cfg.with_engine("fast"))
        t_batch, stats = _timed_run(routing, cfg.with_engine("batch"))
        fingerprints.add(stats.statistical_fingerprint())
        ratios.append(t_fast / t_batch)
    if len(fingerprints) != 1:
        raise AssertionError(
            "batch engine is not deterministic: one (config, seed) "
            f"produced {len(fingerprints)} distinct fingerprints"
        )
    return {
        "rate": rate,
        "packet_length": pl,
        "speedup_median": round(statistics.median(ratios), 3),
        "speedup_min": round(min(ratios), 3),
        "speedup_max": round(max(ratios), 3),
        "pairs": pairs,
    }


def run_benchmarks(quick: bool = False) -> dict:
    pairs = 2 if quick else 3
    clocks = 1_500 if quick else 3_000
    results = {
        "mode": "quick" if quick else "full",
        "scenario": {
            "switches": 256,
            "ports": 6,
            "matrix": [list(m) for m in MATRIX],
            "scale_point_switches": 1024,
            "seed": 0,
        },
        "engines": {},
    }
    topo = random_irregular_topology(256, 6, rng=11)
    routing = build_down_up_routing(topo)
    results["prime_seconds_256sw"] = _prime_rows(routing, clocks)
    rows_after_prime = len(getattr(routing, "_batch_rows", {}))
    medians = []
    print(f"256sw/6p matrix, {clocks} measured clocks, {pairs} paired runs "
          "per cell (batch vs fast), rows primed in "
          f"{results['prime_seconds_256sw']}s", flush=True)
    for rate, pl in MATRIX:
        r = measure(routing, rate, pl, clocks, pairs)
        results["engines"][f"rate{rate}_pl{pl}"] = r
        medians.append(r["speedup_median"])
        print(f"  rate={rate} pl={pl}: median {r['speedup_median']}x "
              f"(min {r['speedup_min']}, max {r['speedup_max']})", flush=True)
    results["speedup_median_256sw"] = round(statistics.median(medians), 3)
    print(f"  256sw acceptance median: {results['speedup_median_256sw']}x",
          flush=True)

    # priming sub-linearity gate: candidate rows are encoded once per
    # *destination* and cached on the routing object, so the single
    # untimed priming run must already cover (nearly) every row the
    # whole matrix needs — priming cost is O(destinations), not
    # O(scenarios).  If row encoding regressed to per-scenario work,
    # the cache would grow by roughly its primed size for every cell;
    # allow the full matrix at most one matrix-th of that.
    rows_after_matrix = len(getattr(routing, "_batch_rows", {}))
    extra = rows_after_matrix - rows_after_prime
    results["row_cache"] = {
        "rows_after_prime": rows_after_prime,
        "rows_after_matrix": rows_after_matrix,
        "scenarios": len(MATRIX),
    }
    if extra * len(MATRIX) > rows_after_prime:
        raise AssertionError(
            "row-cache priming is no longer sub-linear in scenario "
            f"count: {rows_after_prime} rows after priming grew by "
            f"{extra} over {len(MATRIX)} scenarios"
        )
    print(f"  row cache: {rows_after_prime} rows primed, +{extra} across "
          f"{len(MATRIX)} scenarios (sub-linear gate ok)", flush=True)

    if not quick:
        # end-to-end scale point, same load profile and pairing
        topo = random_irregular_topology(1024, 6, rng=11)
        routing = build_down_up_routing(topo)
        results["prime_seconds_1024sw"] = _prime_rows(routing, clocks // 2)
        r = measure(routing, 0.3, 128, clocks // 2, pairs=pairs)
        results["engines"]["scale_1024sw"] = r
        print(f"  1024sw: median {r['speedup_median']}x end-to-end "
              f"(min {r['speedup_min']}, max {r['speedup_max']})", flush=True)
    return results


def check(results: dict) -> int:
    """Compare measured speedups against the committed baseline.

    Quick runs gate against the quick baseline section (shorter runs
    amortize setup over fewer clocks, so they measure systematically
    different — and noisier — speedups and need their own reference).
    """
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; run with --write first")
        return 2
    baseline = json.loads(BASELINE.read_text())
    section = "engines_quick" if results["mode"] == "quick" else "engines"
    if section not in baseline:
        print(f"baseline has no {section!r} section; "
              f"run --write {'--quick' if section.endswith('quick') else ''}")
        return 2
    failed = False
    for scenario, base in baseline[section].items():
        if scenario not in results["engines"]:
            continue
        got = results["engines"][scenario]["speedup_median"]
        floor = base["speedup_median"] * (1 - REGRESSION_TOLERANCE)
        status = "ok" if got >= floor else "REGRESSION"
        failed |= got < floor
        print(f"  {scenario}: measured {got}x vs baseline "
              f"{base['speedup_median']}x (floor {floor:.2f}x) -> {status}")
    return 1 if failed else 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--write", action="store_true",
                    help="write results as the new committed baseline")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero if speedup regressed >20%% vs baseline")
    ap.add_argument("--quick", action="store_true",
                    help="shorter runs (CI smoke; noisier)")
    args = ap.parse_args(argv)
    results = run_benchmarks(quick=args.quick)
    if args.write:
        merged = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        merged.setdefault("scenario", results["scenario"])
        key = "engines_quick" if args.quick else "engines"
        merged[key] = results["engines"]
        if not args.quick:
            merged["speedup_median_256sw"] = results["speedup_median_256sw"]
        BASELINE.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"baseline ({key}) written to {BASELINE}")
        return 0
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
