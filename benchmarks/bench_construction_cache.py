"""Construction-cache benchmark and perf-regression gate.

Measures what the content-addressed artifact cache
(:mod:`repro.experiments.artifacts`) eliminates: before it, every work
unit of a parallel campaign rebuilt its (topology, tree, routing) tuple
from the preset seed — once per offered load, per algorithm, per
method, per sample.  The benchmark replays exactly that unit schedule
for a Figure-8 port configuration, cold (no cache: every replay
rebuilds, the pre-cache behaviour) versus warm (one shared cache: the
first replay builds and publishes, the rest are checksum-verified disk
loads and in-process LRU hits), asserting byte-identical routing tables
while doing so — a speedup against diverging constructions would be
meaningless.

Timing methodology: CPU time (``time.process_time``) over paired
adjacent cold/warm replays of the full unit schedule, reporting the
median of the per-pair ratios (median of >=5 reps in full mode).
Pairing bounds machine-noise impact; the ratio is dimensionless, so
the committed baseline is portable across machines of different
absolute speed.

Usage::

    python benchmarks/bench_construction_cache.py            # measure, print
    python benchmarks/bench_construction_cache.py --write    # refresh baseline
    python benchmarks/bench_construction_cache.py --check    # CI gate: fail on
                                                             # >20% regression
    python benchmarks/bench_construction_cache.py --quick    # smaller preset

The committed baseline lives next to this script in
``BENCH_construction_cache.json``.  Full mode runs the paper-lite
Figure-8 4-port schedule (128 switches, 3 samples, 8 offered loads);
quick mode (CI smoke) runs the ``quick`` preset.
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.artifacts import ArtifactCache  # noqa: E402
from repro.experiments.configs import get_preset  # noqa: E402
from repro.experiments.harness import (  # noqa: E402
    PAPER_ALGORITHMS,
    PAPER_METHODS,
    build_routings,
    make_topology,
)
from repro.routing.serialization import routing_to_json  # noqa: E402

BASELINE = Path(__file__).resolve().parent / "BENCH_construction_cache.json"
REGRESSION_TOLERANCE = 0.20  # CI fails if ratio drops >20% below baseline


def replay_schedule(preset, ports: int, cache):
    """Replay the construction work of every Figure-8 work unit.

    Mirrors :func:`repro.experiments.parallel.figure8_units` order
    (sample-major, one (method, algorithm) pair per unit, one unit per
    offered load) and :func:`~repro.experiments.parallel.run_unit`'s
    per-unit construction calls exactly.
    """
    last = {}
    for sample in range(preset.samples):
        for method in PAPER_METHODS:
            for alg in PAPER_ALGORITHMS:
                for _rate in preset.rates_for(ports):
                    topo = make_topology(preset, ports, sample, cache=cache)
                    built = build_routings(
                        topo,
                        preset,
                        sample,
                        methods=(method,),
                        algorithms=(alg,),
                        cache=cache,
                    )
                    last[(sample, alg, method)] = built[(alg, method)][0]
    return last


def one_pair(preset, ports: int):
    """One paired cold/warm replay of the Figure-8 unit schedule.

    Returns ``(t_cold, t_warm)`` CPU seconds.  Raises when any
    cache-served routing differs from its freshly built twin.
    """
    t0 = time.process_time()
    ref = replay_schedule(preset, ports, cache=None)
    t_cold = time.process_time() - t0

    store = Path(tempfile.mkdtemp(prefix="bench_construction_cache_"))
    try:
        t0 = time.process_time()
        got = replay_schedule(preset, ports, ArtifactCache(store))
        t_warm = time.process_time() - t0
        for key, routing in ref.items():
            if routing_to_json(got[key]) != routing_to_json(routing):
                raise AssertionError(
                    f"cache-served routing diverged from built one: {key} "
                    f"— run tests/test_artifacts.py for a minimal repro"
                )
    finally:
        shutil.rmtree(store)
    return t_cold, t_warm


def run_benchmarks(quick: bool = False) -> dict:
    preset = get_preset("quick" if quick else "paperlite")
    ports = 4
    reps = 3 if quick else 5
    rates = preset.rates_for(ports)
    print(
        f"scenario: {preset.name} ({preset.n_switches}sw/{ports}p, "
        f"{preset.samples} sample(s), {len(rates)} offered loads), "
        f"{reps} paired cold/warm replays",
        flush=True,
    )
    ratios, colds, warms = [], [], []
    for i in range(reps):
        t_cold, t_warm = one_pair(preset, ports)
        ratios.append(t_cold / t_warm)
        colds.append(t_cold)
        warms.append(t_warm)
        print(
            f"  rep {i + 1}: cold {t_cold:.3f}s, warm {t_warm:.3f}s "
            f"-> {t_cold / t_warm:.2f}x",
            flush=True,
        )
    result = {
        "mode": "quick" if quick else "full",
        "scenario": {
            "preset": preset.name,
            "switches": preset.n_switches,
            "ports": ports,
            "samples": preset.samples,
            "unit_replays": len(rates),
        },
        "construction": {
            "ratio_median": round(statistics.median(ratios), 3),
            "ratio_min": round(min(ratios), 3),
            "ratio_max": round(max(ratios), 3),
            "cold_median_s": round(statistics.median(colds), 3),
            "warm_median_s": round(statistics.median(warms), 3),
            "reps": reps,
        },
    }
    c = result["construction"]
    print(
        f"  median: {c['ratio_median']}x lower construction time "
        f"(cold {c['cold_median_s']}s vs warm {c['warm_median_s']}s)",
        flush=True,
    )
    return result


def check(results: dict) -> int:
    """Compare the measured ratio against the committed baseline.

    Quick runs gate against the quick baseline section: the smaller
    preset amortizes per-entry overhead over less construction work and
    measures a systematically different ratio."""
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; run with --write first")
        return 2
    baseline = json.loads(BASELINE.read_text())
    section = (
        "construction_quick" if results["mode"] == "quick" else "construction"
    )
    if section not in baseline:
        print(
            f"baseline has no {section!r} section; run --write "
            f"{'--quick' if section.endswith('quick') else ''}"
        )
        return 2
    base = baseline[section]["ratio_median"]
    got = results["construction"]["ratio_median"]
    floor = base * (1 - REGRESSION_TOLERANCE)
    status = "ok" if got >= floor else "REGRESSION"
    print(
        f"  cache speedup: measured {got}x vs baseline {base}x "
        f"(floor {floor:.2f}x) -> {status}"
    )
    return 0 if got >= floor else 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--write", action="store_true",
                    help="write results as the new committed baseline")
    ap.add_argument("--check", action="store_true",
                    help="exit non-zero if the cache speedup regressed "
                    ">20%% vs baseline")
    ap.add_argument("--quick", action="store_true",
                    help="smaller preset (CI smoke; noisier)")
    args = ap.parse_args(argv)
    results = run_benchmarks(quick=args.quick)
    if args.write:
        merged = json.loads(BASELINE.read_text()) if BASELINE.exists() else {}
        key = "construction_quick" if args.quick else "construction"
        merged[key] = results["construction"]
        merged[f"{key}_scenario"] = results["scenario"]
        BASELINE.write_text(json.dumps(merged, indent=2) + "\n")
        print(f"baseline ({key}) written to {BASELINE}")
        return 0
    if args.check:
        return check(results)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
